//! A chunk-level single-torrent simulator for measuring the sharing
//! efficiency η.
//!
//! The fluid models treat η — the usefulness of a downloader's upload
//! relative to a seed's — as a constant. Qiu–Srikant prove it approaches 1
//! when files have many chunks; the paper argues from the Izal et al.
//! measurement (seeds serve ~2× the downloader bytes despite being fewer)
//! that 0.5 is more realistic, and adopts `η = 0.5`. This module settles
//! the question *within the model's own assumptions* by simulating actual
//! chunk exchange:
//!
//! * one file of `C` chunks; peers arrive Poisson(λ), leave `Exp(γ)` after
//!   completing;
//! * every uploader (downloader or seed) serves one connection at a time at
//!   rate μ (one chunk takes `1/(Cμ)` time units);
//! * matching: a free uploader picks a random peer that *needs* at least
//!   one of its chunks not already in flight to it (receivers accept any
//!   number of parallel inbound transfers — download capacity is not the
//!   constraint, matching the fluid model's regime); the chunk transferred
//!   is rarest-first among the candidates;
//! * a downloader whose chunks are useful to nobody idles — that idleness
//!   is exactly the `1 − η` the fluid model prices in.
//!
//! The estimator reports downloader upload **utilization** (busy time over
//! downloading time) and the seed/downloader byte split, so both the
//! theoretical (`P[useful]`) and the measurement-based (byte-ratio) notions
//! of η can be read off. See `EXPERIMENTS.md` X9 for results: utilization
//! is near 1 with many chunks (vindicating Qiu–Srikant *given* the
//! protocol assumptions), while the byte split reproduces Izal-style
//! seed-heavy ratios whenever seeds linger long — supporting the paper's
//! point that *effective* η in the wild is lower.

use btfluid_numkit::dist::Exponential;
use btfluid_numkit::rng::{RngCore, Xoshiro256StarStar};
use btfluid_numkit::NumError;

/// Configuration of the chunk-level run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkLevelConfig {
    /// Number of chunks `C` in the file.
    pub chunks: usize,
    /// Upload bandwidth μ (files per time unit; a chunk takes `1/(Cμ)`).
    pub mu: f64,
    /// Peer arrival rate λ.
    pub lambda: f64,
    /// Seed departure rate γ.
    pub gamma: f64,
    /// Arrivals stop here.
    pub horizon: f64,
    /// Measurements start here.
    pub warmup: f64,
    /// RNG seed.
    pub seed: u64,
    /// Permanent origin seeds.
    pub origin_seeds: usize,
}

impl Default for ChunkLevelConfig {
    fn default() -> Self {
        Self {
            chunks: 100,
            mu: 0.02,
            lambda: 0.5,
            gamma: 0.05,
            horizon: 3000.0,
            warmup: 800.0,
            seed: 1,
            origin_seeds: 1,
        }
    }
}

/// What the run measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtaEstimate {
    /// Downloader upload utilization: busy time / downloading time — the
    /// theoretical η (probability a downloader's upload is useful).
    pub utilization: f64,
    /// Chunks served by downloaders in the measurement window.
    pub downloader_chunks: u64,
    /// Chunks served by seeds (incl. origin) in the window.
    pub seed_chunks: u64,
    /// Mean download time of counted users.
    pub mean_download_time: f64,
    /// Counted (completed, post-warm-up) users.
    pub completed: usize,
}

impl EtaEstimate {
    /// Seed-to-downloader byte ratio (the Izal et al. metric; ∞ when
    /// downloaders served nothing).
    pub fn seed_byte_ratio(&self) -> f64 {
        self.seed_chunks as f64 / self.downloader_chunks.max(1) as f64
    }
}

#[derive(Debug, Clone)]
struct ChunkPeer {
    have: Vec<u64>,
    have_count: usize,
    arrival: f64,
    /// Busy transfer: (receiver index, chunk, completion time).
    transfer: Option<(usize, usize, f64)>,
    /// Seed departure deadline once complete.
    depart_at: f64,
    /// Set for permanent origin seeds.
    origin: bool,
    /// Accumulated busy upload time while downloading.
    busy_while_downloading: f64,
    /// Time spent in the downloading phase.
    downloading_time: f64,
    /// Time the current phase segment started.
    completed_at: f64,
}

impl ChunkPeer {
    fn new(chunks: usize, arrival: f64, full: bool, origin: bool) -> Self {
        let words = chunks.div_ceil(64);
        let mut have = vec![0u64; words];
        if full {
            for (w, slot) in have.iter_mut().enumerate() {
                let bits = (chunks - w * 64).min(64);
                *slot = if bits == 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                };
            }
        }
        Self {
            have,
            have_count: if full { chunks } else { 0 },
            arrival,
            transfer: None,
            depart_at: f64::INFINITY,
            origin,
            busy_while_downloading: 0.0,
            downloading_time: 0.0,
            completed_at: f64::NAN,
        }
    }

    fn has(&self, c: usize) -> bool {
        self.have[c / 64] >> (c % 64) & 1 == 1
    }

    fn set(&mut self, c: usize) {
        if !self.has(c) {
            self.have[c / 64] |= 1 << (c % 64);
            self.have_count += 1;
        }
    }

    fn complete(&self, chunks: usize) -> bool {
        self.have_count >= chunks
    }
}

/// Runs the chunk-level simulation and estimates η.
///
/// # Errors
/// Returns [`NumError::InvalidInput`] for nonsensical parameters.
pub fn estimate_eta(cfg: &ChunkLevelConfig) -> Result<EtaEstimate, NumError> {
    if cfg.chunks == 0 {
        return Err(NumError::InvalidInput {
            what: "estimate_eta",
            detail: "need at least one chunk".into(),
        });
    }
    if !(cfg.mu > 0.0) || !(cfg.lambda > 0.0) || !(cfg.gamma > 0.0) {
        return Err(NumError::InvalidInput {
            what: "estimate_eta",
            detail: "μ, λ and γ must all be > 0".into(),
        });
    }
    if !(cfg.horizon > 0.0) || !(cfg.warmup >= 0.0) || cfg.warmup >= cfg.horizon {
        return Err(NumError::InvalidInput {
            what: "estimate_eta",
            detail: "need 0 <= warmup < horizon".into(),
        });
    }
    let chunk_time = 1.0 / (cfg.chunks as f64 * cfg.mu);
    let mut rng = Xoshiro256StarStar::stream(cfg.seed, 2);
    let gap = Exponential::new(cfg.lambda)?;
    let gamma = Exponential::new(cfg.gamma)?;

    let mut peers: Vec<ChunkPeer> = (0..cfg.origin_seeds)
        .map(|_| ChunkPeer::new(cfg.chunks, 0.0, true, true))
        .collect();
    let mut rarity = vec![cfg.origin_seeds as u32; cfg.chunks];
    let mut t: f64 = 0.0;
    let mut next_arrival = gap.sample(&mut rng);
    let end = cfg.horizon * 2.0;

    let mut downloader_chunks = 0u64;
    let mut seed_chunks = 0u64;
    let mut total_dl_time = 0.0;
    let mut completed = 0usize;
    let mut busy_total = 0.0;
    let mut phase_total = 0.0;

    // Matches a free uploader to a receiver; returns the transfer.
    // Receivers take any number of parallel inbound transfers, but the same
    // chunk is never sent to the same receiver twice concurrently.
    let rematch = |peers: &[ChunkPeer],
                   rarity: &[u32],
                   up: usize,
                   rng: &mut Xoshiro256StarStar,
                   chunks: usize,
                   t: f64|
     -> Option<(usize, usize, f64)> {
        // In-flight (receiver, chunk) pairs.
        let inflight: Vec<(usize, usize)> = peers
            .iter()
            .filter_map(|p| p.transfer.map(|(rx, c, _)| (rx, c)))
            .collect();
        // Candidate receivers with at least one needed, not-in-flight chunk
        // the uploader holds; remember the rarest such chunk per receiver.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for (i, p) in peers.iter().enumerate() {
            if i == up || p.complete(chunks) {
                continue;
            }
            let mut best_chunk = None;
            let mut best_rarity = u32::MAX;
            for (c, &r) in rarity.iter().enumerate().take(chunks) {
                if peers[up].has(c) && !p.has(c) && r < best_rarity && !inflight.contains(&(i, c)) {
                    best_rarity = r;
                    best_chunk = Some(c);
                }
            }
            if let Some(c) = best_chunk {
                candidates.push((i, c));
            }
        }
        if candidates.is_empty() {
            return None;
        }
        let (rx, c) = candidates[rng.next_below(candidates.len() as u64) as usize];
        Some((rx, c, t))
    };

    loop {
        // Next event: arrival, earliest transfer completion, seed departure.
        let mut t_next = end;
        enum Ev {
            End,
            Arrival,
            Done(usize),
            Depart(usize),
        }
        let mut ev = Ev::End;
        if next_arrival < cfg.horizon && next_arrival < t_next {
            t_next = next_arrival;
            ev = Ev::Arrival;
        }
        for (i, p) in peers.iter().enumerate() {
            if let Some((_, _, done_at)) = p.transfer {
                if done_at < t_next {
                    t_next = done_at;
                    ev = Ev::Done(i);
                }
            }
            if p.depart_at < t_next {
                t_next = p.depart_at;
                ev = Ev::Depart(i);
            }
        }

        // Accumulate busy/downloading time inside the measurement window.
        let dt = (t_next.min(end) - t.max(cfg.warmup)).max(0.0);
        if dt > 0.0 {
            for p in peers.iter_mut() {
                if !p.complete(cfg.chunks) && !p.origin {
                    p.downloading_time += dt;
                    if p.transfer.is_some() {
                        p.busy_while_downloading += dt;
                    }
                }
            }
        }
        t = t_next;

        match ev {
            Ev::End => break,
            Ev::Arrival => {
                peers.push(ChunkPeer::new(cfg.chunks, t, false, false));
                next_arrival = t + gap.sample(&mut rng);
            }
            Ev::Done(up) => {
                let (rx, chunk, _) = peers[up].transfer.take().expect("transfer done");
                let was_seed = peers[up].complete(cfg.chunks);
                if t >= cfg.warmup {
                    if was_seed {
                        seed_chunks += 1;
                    } else {
                        downloader_chunks += 1;
                    }
                }
                if !peers[rx].has(chunk) {
                    peers[rx].set(chunk);
                    rarity[chunk] += 1;
                }
                if peers[rx].complete(cfg.chunks) && peers[rx].depart_at.is_infinite() {
                    peers[rx].completed_at = t;
                    peers[rx].depart_at = t + gamma.sample(&mut rng);
                    if peers[rx].arrival >= cfg.warmup {
                        total_dl_time += t - peers[rx].arrival;
                        completed += 1;
                    }
                }
            }
            Ev::Depart(i) => {
                // Remove from rarity counts.
                for (c, r) in rarity.iter_mut().enumerate().take(cfg.chunks) {
                    if peers[i].has(c) {
                        *r -= 1;
                    }
                }
                busy_total += peers[i].busy_while_downloading;
                phase_total += peers[i].downloading_time;
                // Fix up transfer receiver indices: transfers *to* the
                // departing peer abort, and transfers to the last peer
                // (about to be swapped into slot i) are re-pointed.
                let last = peers.len() - 1;
                for p in peers.iter_mut() {
                    if let Some((rx, ch, done)) = p.transfer {
                        if rx == i {
                            p.transfer = None;
                        } else if rx == last {
                            p.transfer = Some((i, ch, done));
                        }
                    }
                }
                peers.swap_remove(i);
            }
        }
        // Re-match every free uploader (cheap: candidates only at events).
        for up in 0..peers.len() {
            if peers[up].transfer.is_none() && peers[up].have_count > 0 {
                if let Some((rx, c, _)) = rematch(&peers, &rarity, up, &mut rng, cfg.chunks, t) {
                    peers[up].transfer = Some((rx, c, t + chunk_time));
                }
            }
        }
    }

    // Utilization over departed peers plus whoever is still present.
    let mut busy = busy_total;
    let mut phase = phase_total;
    for p in &peers {
        busy += p.busy_while_downloading;
        phase += p.downloading_time;
    }
    Ok(EtaEstimate {
        utilization: if phase > 0.0 { busy / phase } else { 0.0 },
        downloader_chunks,
        seed_chunks,
        mean_download_time: if completed > 0 {
            total_dl_time / completed as f64
        } else {
            f64::NAN
        },
        completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let c = ChunkLevelConfig {
            chunks: 0,
            ..Default::default()
        };
        assert!(estimate_eta(&c).is_err());
        let c = ChunkLevelConfig {
            mu: 0.0,
            ..Default::default()
        };
        assert!(estimate_eta(&c).is_err());
        let base = ChunkLevelConfig::default();
        let c = ChunkLevelConfig {
            warmup: base.horizon,
            ..base
        };
        assert!(estimate_eta(&c).is_err());
    }

    #[test]
    fn downloads_complete_and_eta_in_range() {
        let cfg = ChunkLevelConfig {
            horizon: 1500.0,
            warmup: 400.0,
            ..Default::default()
        };
        let e = estimate_eta(&cfg).unwrap();
        assert!(e.completed > 100, "completed = {}", e.completed);
        assert!(
            e.utilization > 0.3 && e.utilization <= 1.0,
            "utilization = {}",
            e.utilization
        );
        assert!(e.downloader_chunks + e.seed_chunks > 0);
        assert!(e.mean_download_time.is_finite());
    }

    #[test]
    fn more_chunks_raise_utilization() {
        // The Qiu–Srikant argument: with many chunks a downloader almost
        // always holds something useful.
        let run = |chunks: usize| {
            estimate_eta(&ChunkLevelConfig {
                chunks,
                horizon: 1200.0,
                warmup: 300.0,
                seed: 3,
                ..Default::default()
            })
            .unwrap()
            .utilization
        };
        let coarse = run(4);
        let fine = run(128);
        assert!(
            fine > coarse,
            "η should grow with chunk count: {coarse} vs {fine}"
        );
        assert!(fine > 0.8, "many-chunk η should be high, got {fine}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ChunkLevelConfig {
            horizon: 600.0,
            warmup: 150.0,
            ..Default::default()
        };
        let a = estimate_eta(&cfg).unwrap();
        let b = estimate_eta(&cfg).unwrap();
        assert_eq!(a.utilization, b.utilization);
        assert_eq!(a.completed, b.completed);
    }

    #[test]
    fn seed_ratio_reported() {
        let cfg = ChunkLevelConfig {
            horizon: 1000.0,
            warmup: 250.0,
            seed: 9,
            ..Default::default()
        };
        let e = estimate_eta(&cfg).unwrap();
        assert!(e.seed_byte_ratio() > 0.0);
    }
}
