//! Class-aggregated completion scheduling: one exponential completion
//! process per (subtorrent, class) group instead of one heap deadline per
//! peer.
//!
//! The paper's fluid service model makes every downloader within a
//! (subtorrent, class) rate-homogeneous: each member of the group receives
//! the same instantaneous rate `η·u + (w/W_f)·(P_real + P_virt)`. The
//! class-level description is therefore lossless for the *total* completion
//! intensity — the sum of member rates — and the scaling-limit literature
//! (Kesidis et al.) shows the class-level Markov chain is the correct
//! large-swarm description. [`AggCache`] maintains that class-total rate as
//! the first-class quantity:
//!
//! * **Groups** are keyed `gid = (f·K + (class−1))·2 + band`. The band bit
//!   separates CMFSD downloaders that already finished a file (TFT upload
//!   `ρμ`, plus a virtual-seed donation) from those that have not (full
//!   `μ`); for the other schemes band 1 is always empty. Members of one
//!   group share `(u, w)` exactly, so the group rate is
//!   `n·η·u + (n·w/W_f)·(P_real + P_virt)`.
//! * **Member lists** are SoA (parallel `peers`/`slots` vectors) with
//!   `swap_remove` deletion; a [`SlotArena`] maps `(peer, slot)` back to
//!   `(group, position)` for O(1) deregistration. List order is
//!   sampling-relevant (the engine draws the completing member uniformly
//!   by position), so snapshots serialize it verbatim.
//! * **Seed pools** are kept as *integer* aggregates: per-(file, class)
//!   single-file seed counts and per-file-set real/virtual source counts
//!   (bitmask-keyed, K ≤ 64 enforced by config validation). Pools are
//!   recomputed from those counts in a canonical order (classes ascending,
//!   set masks ascending, mask bits ascending), so a from-scratch rebuild
//!   reproduces every cached float bit-for-bit — the property snapshot
//!   restore and the checked-mode audit rely on.
//!
//! ## Scheduling (hazard accumulation)
//!
//! Each group carries an Exp(1) `target` and an integrated hazard
//! `acc = ∫ R_g dt` since the last completion. While the rate is constant
//! the next completion fires at `anchor + (target − acc)/R_g`; when the
//! rate changes the hazard is settled at the old rate first, so the
//! schedule is exact for the inhomogeneous exponential — one RNG draw per
//! completion regardless of how many rate changes happen in between
//! (identical in spirit to the per-peer engine's lazy completion-deadline
//! correction). A rate increase pushes a fresh stamped heap entry; a
//! decrease only records the later deadline and lets the engine's pop loop
//! reinsert lazily.
//!
//! ## What aggregate mode gives up
//!
//! Per-peer mode integrates each download's *deterministic* unit of work at
//! its exact rate; aggregate mode replaces that with a memoryless
//! completion process at the identical total intensity. Event interleaving
//! therefore differs between the modes — equivalence is distributional
//! (same per-class mean populations and sojourn times; the drift of the
//! downloader population is the same `λ − Σ rates` in both), which the
//! oracle's aggregate-equivalence checks assert statistically. Within the
//! mode, runs are fully deterministic per seed and snapshot/resume is
//! bit-identical.

use crate::config::SchemeKind;
use crate::peer::{Peer, Phase, SlotArena};
use btfluid_core::FluidParams;
use std::collections::HashMap;

/// One (subtorrent, class, band) completion group.
#[derive(Debug, Default)]
pub(crate) struct Group {
    /// Member peer slab indices (parallel to `slots`).
    pub(crate) peers: Vec<u32>,
    /// Member slot indices (parallel to `peers`).
    pub(crate) slots: Vec<u32>,
    /// Class-total service rate `Σ member rates`, maintained canonically.
    pub(crate) rate: f64,
    /// Exp(1) hazard target of the pending completion.
    pub(crate) target: f64,
    /// Integrated hazard `∫ rate dt` since the last completion.
    pub(crate) acc: f64,
    /// Time the hazard was last settled at.
    pub(crate) anchor: f64,
    /// Scheduled completion time while armed (`stamp != 0`), else ∞.
    pub(crate) deadline: f64,
    /// Queue-entry validity stamp (0 = disarmed).
    pub(crate) stamp: u64,
}

/// One collaborative source set: peers serving exactly the files in
/// `mask`, split real (seeds) / virtual (CMFSD donations). Entries whose
/// counts drop to zero stay as tombstones (they contribute nothing and
/// keep `file_masks` indices stable).
#[derive(Debug, Clone, Copy)]
struct SetEntry {
    mask: u64,
    n_real: u32,
    n_virt: u32,
}

/// What one peer registered, for O(1) deregistration without re-deriving
/// memberships from (possibly since-mutated) peer state. Downloads are
/// tracked by the arena instead.
#[derive(Debug, Clone, Copy)]
enum SrcReg {
    /// One single-file seed: `n_seed[file·K + class−1]` holds a unit.
    Seed { file: u32, class: u32 },
    /// One unit in `sets[set]` (real or virtual).
    Set { set: u32, is_virtual: bool },
}

/// Class-aggregated rate/scheduling cache (aggregate mode's counterpart of
/// [`crate::rate_cache::RateCache`]).
///
/// Protocol, mirrored from the per-peer cache: the engine deregisters a
/// peer before mutating it, re-registers it after, and calls
/// [`AggCache::refresh`] once per event; `refresh` reports every group
/// whose rate bit-changed (plus groups reset by [`AggCache::on_pop`]) so
/// the engine can rearm their heap entries.
#[derive(Debug)]
pub struct AggCache {
    k: usize,
    scheme: SchemeKind,
    mu: f64,
    eta: f64,
    /// CMFSD ρ (0 for other schemes); all peers share it — aggregate mode
    /// rejects Adapt, so no per-peer ρ drift exists.
    rho: f64,
    /// Per-peer virtual-seed donation `(1−ρ)μ` (CMFSD only).
    virt_bw: f64,
    origin_bw: f64,
    origin_demand_aware: bool,
    weight: Vec<f64>,
    pool_real: Vec<f64>,
    pool_virtual: Vec<f64>,
    /// `2·K²` groups, indexed by [`AggCache::gid`].
    groups: Vec<Group>,
    /// `(peer, slot) → (group, position)` for member removal.
    arena: SlotArena,
    /// Single-file seed counts per `file·K + class−1`.
    n_seed: Vec<u32>,
    sets: Vec<SetEntry>,
    set_index: HashMap<u64, u32>,
    /// Per file: indices into `sets` of every set containing it, kept
    /// sorted by mask (canonical pool summation order).
    file_masks: Vec<Vec<u32>>,
    /// Per peer: registered sources (seeds / set units).
    reg_src: Vec<Vec<SrcReg>>,
    // Dirty tracking (list + flag idiom of the per-peer cache).
    dirty_w: Vec<usize>,
    dirty_w_flag: Vec<bool>,
    dirty_p: Vec<usize>,
    dirty_p_flag: Vec<bool>,
    /// Groups whose hazard was reset at pop time; always rescheduled by
    /// the next refresh even if their rate bits did not change.
    rearm: Vec<u32>,
    rearm_flag: Vec<bool>,
    // Scratch reused across refreshes.
    wc: Vec<usize>,
    pd: Vec<usize>,
    pd_flag: Vec<bool>,
    rate_files: Vec<usize>,
    rate_flag: Vec<bool>,
    changed_flag: Vec<bool>,
    /// Group-rate recomputations since the last [`AggCache::take_stats`].
    stat_updates: u64,
    /// Clean refreshes (nothing dirty) since the last drain.
    stat_clean: u64,
}

/// Ascending file indices of a set-membership bitmask.
fn mask_files(mask: u64) -> impl Iterator<Item = usize> {
    // `wrapping_sub`: `successors` calls the closure on the final 0 before
    // `take_while` can stop the chain.
    std::iter::successors(Some(mask), |&m| Some(m & m.wrapping_sub(1)))
        .take_while(|&m| m != 0)
        .map(|m| m.trailing_zeros() as usize)
}

impl AggCache {
    /// Creates an empty aggregate cache for `k` subtorrents (requires
    /// `k ≤ 64`, enforced by [`crate::DesConfig::validate`]).
    pub fn new(k: usize, scheme: SchemeKind, params: &FluidParams, origin_seeds: usize) -> Self {
        assert!(k <= 64, "aggregate mode needs file bitmasks: K = {k} > 64");
        let rho = match scheme {
            SchemeKind::Cmfsd { rho } => rho,
            _ => 0.0,
        };
        let mu = params.mu();
        AggCache {
            k,
            scheme,
            mu,
            eta: params.eta(),
            rho,
            virt_bw: match scheme {
                SchemeKind::Cmfsd { .. } => (1.0 - rho) * mu,
                _ => 0.0,
            },
            origin_bw: if origin_seeds > 0 {
                origin_seeds as f64 * mu
            } else {
                0.0
            },
            origin_demand_aware: matches!(scheme, SchemeKind::Mfcd | SchemeKind::Cmfsd { .. }),
            weight: vec![0.0; k],
            pool_real: vec![0.0; k],
            pool_virtual: vec![0.0; k],
            groups: (0..2 * k * k).map(|_| Group::default()).collect(),
            arena: SlotArena::new(k),
            n_seed: vec![0; k * k],
            sets: Vec::new(),
            set_index: HashMap::new(),
            file_masks: vec![Vec::new(); k],
            reg_src: Vec::new(),
            dirty_w: Vec::new(),
            dirty_w_flag: vec![false; k],
            // Every pool starts dirty: the origin publisher contributes
            // even to files with no downloaders yet (non-demand-aware
            // schemes), and the from-scratch audit/restore rebuild expects
            // fully computed pools, not lazily-zero ones.
            dirty_p: (0..k).collect(),
            dirty_p_flag: vec![true; k],
            rearm: Vec::new(),
            rearm_flag: vec![false; 2 * k * k],
            wc: Vec::new(),
            pd: Vec::new(),
            pd_flag: vec![false; k],
            rate_files: Vec::new(),
            rate_flag: vec![false; k],
            changed_flag: vec![false; 2 * k * k],
            stat_updates: 0,
            stat_clean: 0,
        }
    }

    /// Group id of `(file, class, band)`; classes are 1-based.
    pub fn gid(&self, file: usize, class: usize, band: u8) -> u32 {
        debug_assert!(file < self.k && (1..=self.k).contains(&class) && band < 2);
        ((file * self.k + (class - 1)) * 2 + band as usize) as u32
    }

    /// Subtorrent a group belongs to.
    pub fn group_file(&self, g: u32) -> usize {
        g as usize / 2 / self.k
    }

    /// 1-based class of a group.
    pub fn group_class(&self, g: u32) -> usize {
        (g as usize / 2) % self.k + 1
    }

    /// Band bit of a group (CMFSD done≥1 downloaders are band 1).
    pub fn group_band(&self, g: u32) -> u8 {
        (g % 2) as u8
    }

    /// Total number of groups (`2·K²`).
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Live member count of a group.
    pub fn group_len(&self, g: u32) -> usize {
        self.groups[g as usize].peers.len()
    }

    /// The `i`-th member `(peer, slot)` of a group, in sampling order.
    pub fn group_member(&self, g: u32, i: usize) -> (u32, u32) {
        let grp = &self.groups[g as usize];
        (grp.peers[i], grp.slots[i])
    }

    /// Current class-total rate of a group.
    pub fn group_rate(&self, g: u32) -> f64 {
        self.groups[g as usize].rate
    }

    /// Queue-entry stamp of a group (0 = disarmed).
    pub fn group_stamp(&self, g: u32) -> u64 {
        self.groups[g as usize].stamp
    }

    /// Scheduled completion time of an armed group (∞ when disarmed).
    pub fn group_deadline(&self, g: u32) -> f64 {
        self.groups[g as usize].deadline
    }

    /// Hazard state `(target, acc, anchor)` of a group.
    pub fn group_hazard(&self, g: u32) -> (f64, f64, f64) {
        let grp = &self.groups[g as usize];
        (grp.target, grp.acc, grp.anchor)
    }

    pub(crate) fn group_mut(&mut self, g: u32) -> &mut Group {
        &mut self.groups[g as usize]
    }

    /// Current downloader weight per subtorrent.
    pub fn weight(&self) -> &[f64] {
        &self.weight
    }

    /// Current real-seed pool per subtorrent.
    pub fn pool_real(&self) -> &[f64] {
        &self.pool_real
    }

    /// Current virtual-seed pool per subtorrent.
    pub fn pool_virtual(&self) -> &[f64] {
        &self.pool_virtual
    }

    /// Drains `(group-rate recomputations, clean refresh hits)`.
    pub fn take_stats(&mut self) -> (u64, u64) {
        let stats = (self.stat_updates, self.stat_clean);
        self.stat_updates = 0;
        self.stat_clean = 0;
        stats
    }

    /// Grows per-peer bookkeeping to cover `n` slab slots.
    pub fn grow(&mut self, n: usize) {
        self.arena.ensure_peers(n);
        while self.reg_src.len() < n {
            self.reg_src.push(Vec::new());
        }
    }

    /// Changes the origin-publisher count mid-run; marks every pool dirty
    /// (same policy as the per-peer cache).
    pub fn set_origin_seeds(&mut self, origin_seeds: usize) {
        let bw = if origin_seeds > 0 {
            origin_seeds as f64 * self.mu
        } else {
            0.0
        };
        if bw.to_bits() == self.origin_bw.to_bits() {
            return;
        }
        self.origin_bw = bw;
        for f in 0..self.k {
            self.mark_p(f);
        }
    }

    /// Installs a freshly drawn Exp(1) hazard target (engine init and
    /// post-pop redraw both go through [`AggCache::on_pop`]; this one is
    /// for the eager draws at simulation start, before any arming).
    pub fn set_initial_target(&mut self, g: u32, target: f64) {
        debug_assert!(target > 0.0);
        let grp = &mut self.groups[g as usize];
        grp.target = target;
        grp.acc = 0.0;
        grp.anchor = 0.0;
        grp.deadline = f64::INFINITY;
        grp.stamp = 0;
    }

    /// A group's completion was accepted at time `t`: resets the hazard
    /// with a fresh Exp(1) `new_target`, disarms the entry, and queues the
    /// group for rescheduling by the next [`AggCache::refresh`].
    pub fn on_pop(&mut self, g: u32, new_target: f64, t: f64) {
        debug_assert!(new_target > 0.0);
        let grp = &mut self.groups[g as usize];
        grp.target = new_target;
        grp.acc = 0.0;
        grp.anchor = t;
        grp.deadline = f64::INFINITY;
        grp.stamp = 0;
        if !self.rearm_flag[g as usize] {
            self.rearm_flag[g as usize] = true;
            self.rearm.push(g);
        }
    }

    fn mark_w(&mut self, f: usize) {
        if !self.dirty_w_flag[f] {
            self.dirty_w_flag[f] = true;
            self.dirty_w.push(f);
        }
    }

    fn mark_p(&mut self, f: usize) {
        if !self.dirty_p_flag[f] {
            self.dirty_p_flag[f] = true;
            self.dirty_p.push(f);
        }
    }

    fn mark_pd(&mut self, f: usize) {
        if !self.pd_flag[f] {
            self.pd_flag[f] = true;
            self.pd.push(f);
        }
    }

    /// TFT upload `u` shared by every member of a `(class, band)` group.
    fn member_u(&self, class: usize, band: u8) -> f64 {
        match self.scheme {
            SchemeKind::Mtsd => self.mu,
            SchemeKind::Mtcd | SchemeKind::Mfcd => self.mu / class as f64,
            SchemeKind::Cmfsd { .. } => {
                if band == 1 {
                    self.rho * self.mu
                } else {
                    self.mu
                }
            }
        }
    }

    /// Downloader weight `w` shared by every member of a class.
    fn member_w(&self, class: usize) -> f64 {
        match self.scheme {
            SchemeKind::Mtsd | SchemeKind::Cmfsd { .. } => 1.0,
            SchemeKind::Mtcd | SchemeKind::Mfcd => 1.0 / class as f64,
        }
    }

    /// Bandwidth of one single-file seed of `class` (never called for
    /// CMFSD, which has no single-file seeds).
    fn seed_bw(&self, class: usize) -> f64 {
        match self.scheme {
            SchemeKind::Mtsd => self.mu,
            SchemeKind::Mtcd | SchemeKind::Mfcd => self.mu / class as f64,
            SchemeKind::Cmfsd { .. } => unreachable!("CMFSD has no single-file seeds"),
        }
    }

    fn add_member(&mut self, f: usize, class: usize, band: u8, peer: usize, slot: usize) {
        let g = self.gid(f, class, band);
        let grp = &mut self.groups[g as usize];
        let pos = grp.peers.len() as u32;
        grp.peers.push(peer as u32);
        grp.slots.push(slot as u32);
        self.arena.set(peer, slot, g, pos);
        self.mark_w(f);
    }

    fn remove_member(&mut self, g: u32, pos: u32) {
        let grp = &mut self.groups[g as usize];
        let pos = pos as usize;
        grp.peers.swap_remove(pos);
        grp.slots.swap_remove(pos);
        if pos < grp.peers.len() {
            let (mp, ms) = (grp.peers[pos] as usize, grp.slots[pos] as usize);
            self.arena.set(mp, ms, g, pos as u32);
        }
        let f = self.group_file(g);
        self.mark_w(f);
    }

    fn add_seed(&mut self, idx: usize, file: usize, class: usize) {
        self.n_seed[file * self.k + class - 1] += 1;
        self.reg_src[idx].push(SrcReg::Seed {
            file: file as u32,
            class: class as u32,
        });
        self.mark_p(file);
    }

    fn add_set(&mut self, idx: usize, mask: u64, is_virtual: bool) {
        debug_assert!(mask != 0);
        let si = match self.set_index.get(&mask) {
            Some(&si) => si,
            None => {
                let si = self.sets.len() as u32;
                self.sets.push(SetEntry {
                    mask,
                    n_real: 0,
                    n_virt: 0,
                });
                self.set_index.insert(mask, si);
                let sets = &self.sets;
                for f in mask_files(mask) {
                    let list = &mut self.file_masks[f];
                    let pos = list.partition_point(|&o| sets[o as usize].mask < mask);
                    list.insert(pos, si);
                }
                si
            }
        };
        let e = &mut self.sets[si as usize];
        if is_virtual {
            e.n_virt += 1;
        } else {
            e.n_real += 1;
        }
        self.reg_src[idx].push(SrcReg::Set {
            set: si,
            is_virtual,
        });
        for f in mask_files(mask) {
            self.mark_p(f);
        }
    }

    /// Computes the peer's memberships (mirroring the per-peer cache's
    /// `fill_membership`) and inserts them, marking dirt.
    pub fn register(&mut self, idx: usize, peers: &[Peer]) {
        let peer = &peers[idx];
        debug_assert!(self.reg_src[idx].is_empty(), "double registration");
        let class = peer.class();
        match self.scheme {
            SchemeKind::Mtsd => match peer.phase {
                Phase::Downloading => {
                    let slot = peer.current_slot();
                    self.add_member(peer.files[slot] as usize, class, 0, idx, slot);
                }
                Phase::SeedingFile(slot) => {
                    self.add_seed(idx, peer.files[slot] as usize, class);
                }
                Phase::SeedingAll | Phase::Departed => {}
            },
            SchemeKind::Mtcd | SchemeKind::Mfcd => {
                if peer.phase == Phase::Departed {
                    return;
                }
                for slot in 0..class {
                    if !peer.finished(slot) {
                        self.add_member(peer.files[slot] as usize, class, 0, idx, slot);
                    } else if peer.seed_until[slot].is_some() {
                        self.add_seed(idx, peer.files[slot] as usize, class);
                    }
                }
            }
            SchemeKind::Cmfsd { .. } => match peer.phase {
                Phase::Downloading => {
                    let slot = peer.current_slot();
                    let f = peer.files[slot] as usize;
                    if peer.done_count() >= 1 {
                        debug_assert_eq!(
                            peer.rho.to_bits(),
                            self.rho.to_bits(),
                            "aggregate mode requires a homogeneous ρ (Adapt is rejected)"
                        );
                        self.add_member(f, class, 1, idx, slot);
                        if self.virt_bw > 0.0 {
                            let mut mask = 0u64;
                            for s in peer.finished_slots() {
                                mask |= 1 << peer.files[s];
                            }
                            self.add_set(idx, mask, true);
                        }
                    } else {
                        self.add_member(f, class, 0, idx, slot);
                    }
                }
                Phase::SeedingAll => {
                    let mut mask = 0u64;
                    for &f in &peer.files {
                        mask |= 1 << f;
                    }
                    self.add_set(idx, mask, false);
                }
                Phase::SeedingFile(_) | Phase::Departed => {}
            },
        }
    }

    /// Removes a peer's current memberships: downloads via the arena,
    /// sources via the explicit registration record.
    pub fn deregister(&mut self, idx: usize, peers: &[Peer]) {
        let class = peers[idx].class();
        for slot in 0..class {
            if let Some((g, pos)) = self.arena.clear(idx, slot) {
                self.remove_member(g, pos);
            }
        }
        let srcs = std::mem::take(&mut self.reg_src[idx]);
        for src in &srcs {
            match *src {
                SrcReg::Seed { file, class } => {
                    let cell = &mut self.n_seed[file as usize * self.k + class as usize - 1];
                    debug_assert!(*cell > 0);
                    *cell -= 1;
                    self.mark_p(file as usize);
                }
                SrcReg::Set { set, is_virtual } => {
                    let e = &mut self.sets[set as usize];
                    let mask = e.mask;
                    if is_virtual {
                        debug_assert!(e.n_virt > 0);
                        e.n_virt -= 1;
                    } else {
                        debug_assert!(e.n_real > 0);
                        e.n_real -= 1;
                    }
                    for f in mask_files(mask) {
                        self.mark_p(f);
                    }
                }
            }
        }
        let mut srcs = srcs;
        srcs.clear();
        self.reg_src[idx] = srcs;
    }

    /// Canonical weight resummation: `Σ n·w` over classes ascending, bands
    /// ascending, skipping empty groups. Depends only on integer counts,
    /// so a rebuild reproduces the bits.
    fn recompute_weight(&mut self, f: usize) {
        let mut s = 0.0;
        for class in 1..=self.k {
            let w = self.member_w(class);
            for band in 0..2u8 {
                let n = self.groups[self.gid(f, class, band) as usize].peers.len();
                if n > 0 {
                    s += n as f64 * w;
                }
            }
        }
        if s.to_bits() != self.weight[f].to_bits() {
            self.weight[f] = s;
            self.wc.push(f);
        }
    }

    /// Canonical pool resummation for `f`: origin first, then single-file
    /// seeds (classes ascending), then sets in mask-ascending order with
    /// demand summed over mask bits ascending.
    fn recompute_pools(&mut self, f: usize) {
        let mut pr = 0.0;
        let mut pv = 0.0;
        if self.origin_bw > 0.0 {
            if self.origin_demand_aware {
                let demand: f64 = self.weight.iter().sum();
                if demand > 0.0 && self.weight[f] > 0.0 {
                    pr += self.origin_bw * self.weight[f] / demand;
                }
            } else {
                pr += self.origin_bw;
            }
        }
        if self.weight[f] > 0.0 {
            for class in 1..=self.k {
                let n = self.n_seed[f * self.k + class - 1];
                if n > 0 {
                    pr += n as f64 * self.seed_bw(class);
                }
            }
        }
        for i in 0..self.file_masks[f].len() {
            let si = self.file_masks[f][i] as usize;
            let e = self.sets[si];
            if e.n_real == 0 && e.n_virt == 0 {
                continue; // tombstone
            }
            let demand: f64 = mask_files(e.mask).map(|g| self.weight[g]).sum();
            if demand <= 0.0 || !(self.weight[f] > 0.0) {
                continue;
            }
            if e.n_real > 0 {
                pr += (e.n_real as f64 * self.mu) * self.weight[f] / demand;
            }
            if e.n_virt > 0 {
                pv += (e.n_virt as f64 * self.virt_bw) * self.weight[f] / demand;
            }
        }
        if pr.to_bits() != self.pool_real[f].to_bits()
            || pv.to_bits() != self.pool_virtual[f].to_bits()
        {
            self.pool_real[f] = pr;
            self.pool_virtual[f] = pv;
            if !self.rate_flag[f] {
                self.rate_flag[f] = true;
                self.rate_files.push(f);
            }
        }
    }

    /// Settles a group's hazard at `t` with its *current* (old) rate, then
    /// moves the anchor. Must run before a new rate is stored.
    fn settle_group(grp: &mut Group, t: f64) {
        let dt = t - grp.anchor;
        debug_assert!(dt >= 0.0, "hazard settled backwards: dt = {dt}");
        if dt > 0.0 && grp.rate > 0.0 {
            grp.acc += grp.rate * dt;
        }
        grp.anchor = t;
    }

    /// Canonical group-rate recomputation for every group of `f`:
    /// `n·η·u + (n·w/W_f)·(P_real + P_virt)`, share 0 when `W_f ≤ 0`.
    /// Bit-changed groups are settled (old rate) and appended to `changed`.
    fn recompute_group_rates(&mut self, f: usize, t: f64, changed: &mut Vec<u32>) {
        for class in 1..=self.k {
            for band in 0..2u8 {
                let g = self.gid(f, class, band);
                let n = self.groups[g as usize].peers.len();
                self.stat_updates += 1;
                let r = if n == 0 {
                    0.0
                } else {
                    let nf = n as f64;
                    let share = if self.weight[f] > 0.0 {
                        nf * self.member_w(class) / self.weight[f]
                    } else {
                        0.0
                    };
                    nf * (self.eta * self.member_u(class, band))
                        + share * self.pool_real[f]
                        + share * self.pool_virtual[f]
                };
                let grp = &mut self.groups[g as usize];
                if r.to_bits() != grp.rate.to_bits() {
                    Self::settle_group(grp, t);
                    grp.rate = r;
                    if !self.changed_flag[g as usize] {
                        self.changed_flag[g as usize] = true;
                        changed.push(g);
                    }
                }
            }
        }
    }

    /// Recomputes dirty aggregates at time `t` and reports every group
    /// that needs (re)scheduling: rate bit-changed this refresh, or hazard
    /// reset by [`AggCache::on_pop`] since the last one. With `force`,
    /// every weight, pool, and group rate is recomputed (unchanged ones
    /// are bitwise no-ops, the same contract as the per-peer cache).
    pub fn refresh(&mut self, t: f64, force: bool, changed: &mut Vec<u32>) {
        changed.clear();
        if !force && self.dirty_w.is_empty() && self.dirty_p.is_empty() && self.rearm.is_empty() {
            self.stat_clean += 1;
            return;
        }

        // Pass 1: weights (`wc` collects bit changes).
        self.wc.clear();
        if force {
            for f in 0..self.k {
                self.recompute_weight(f);
            }
        } else {
            let dirty = std::mem::take(&mut self.dirty_w);
            for &f in &dirty {
                self.recompute_weight(f);
            }
            self.dirty_w = dirty;
        }

        // Pass 2: the pool-dirty set.
        self.pd.clear();
        if force {
            for f in 0..self.k {
                self.pd_flag[f] = true;
                self.pd.push(f);
            }
        } else {
            let dirty = std::mem::take(&mut self.dirty_p);
            for &f in &dirty {
                self.mark_pd(f);
            }
            self.dirty_p = dirty;
            let wc = std::mem::take(&mut self.wc);
            for &f in &wc {
                self.mark_pd(f);
                // Sets serving a weight-changed file redistribute over all
                // their files.
                for i in 0..self.file_masks[f].len() {
                    let si = self.file_masks[f][i] as usize;
                    let e = self.sets[si];
                    if e.n_real == 0 && e.n_virt == 0 {
                        continue;
                    }
                    for g in mask_files(e.mask) {
                        self.mark_pd(g);
                    }
                }
            }
            if self.origin_demand_aware && self.origin_bw > 0.0 && !wc.is_empty() {
                for f in 0..self.k {
                    self.mark_pd(f);
                }
            }
            self.wc = wc;
        }

        // Pass 3: pools (bit changes feed `rate_files`).
        for i in 0..self.pd.len() {
            let f = self.pd[i];
            self.recompute_pools(f);
        }

        // Pass 4: group rates. Rate-dirty = membership-changed files
        // (`dirty_w`, not just `wc` — two leaves plus a join can collide
        // on the same weight bits while the member counts changed) ∪
        // pool-changed files; everything under force.
        if force {
            for f in 0..self.k {
                if !self.rate_flag[f] {
                    self.rate_flag[f] = true;
                    self.rate_files.push(f);
                }
            }
        } else {
            let dirty = std::mem::take(&mut self.dirty_w);
            for &f in &dirty {
                if !self.rate_flag[f] {
                    self.rate_flag[f] = true;
                    self.rate_files.push(f);
                }
            }
            self.dirty_w = dirty;
        }
        let mut i = 0;
        while i < self.rate_files.len() {
            let f = self.rate_files[i];
            self.recompute_group_rates(f, t, changed);
            i += 1;
        }

        // Merge the rearm list: a popped group must be rescheduled even if
        // its recomputed rate happens to reproduce the old bits.
        let rearm = std::mem::take(&mut self.rearm);
        for &g in &rearm {
            self.rearm_flag[g as usize] = false;
            if !self.changed_flag[g as usize] {
                self.changed_flag[g as usize] = true;
                changed.push(g);
            }
        }
        let mut rearm = rearm;
        rearm.clear();
        self.rearm = rearm;

        // Reset dirty/scratch state.
        for &f in &self.dirty_w {
            self.dirty_w_flag[f] = false;
        }
        self.dirty_w.clear();
        for &f in &self.dirty_p {
            self.dirty_p_flag[f] = false;
        }
        self.dirty_p.clear();
        for &f in &self.pd {
            self.pd_flag[f] = false;
        }
        self.pd.clear();
        for &f in &self.rate_files {
            self.rate_flag[f] = false;
        }
        self.rate_files.clear();
        for &g in changed.iter() {
            self.changed_flag[g as usize] = false;
        }
        self.wc.clear();
    }

    /// Restore support: overwrites a group's member order with the
    /// serialized one after verifying it is a permutation of the rebuilt
    /// list, and fixes the arena positions.
    pub(crate) fn install_members(&mut self, g: u32, members: &[(u32, u32)]) -> Result<(), String> {
        let grp = &self.groups[g as usize];
        let mut have: Vec<(u32, u32)> = grp
            .peers
            .iter()
            .copied()
            .zip(grp.slots.iter().copied())
            .collect();
        let mut want: Vec<(u32, u32)> = members.to_vec();
        have.sort_unstable();
        want.sort_unstable();
        if have != want {
            return Err(format!(
                "group {g}: serialized member list is not a permutation of the rebuilt one \
                 ({} vs {} members)",
                members.len(),
                have.len()
            ));
        }
        let grp = &mut self.groups[g as usize];
        grp.peers.clear();
        grp.slots.clear();
        for &(p, s) in members {
            grp.peers.push(p);
            grp.slots.push(s);
        }
        for (pos, &(p, s)) in members.iter().enumerate() {
            self.arena.set(p as usize, s as usize, g, pos as u32);
        }
        Ok(())
    }

    /// Restore support: installs serialized hazard/scheduling state.
    pub(crate) fn install_hazard(
        &mut self,
        g: u32,
        target: f64,
        acc: f64,
        anchor: f64,
        deadline: f64,
        stamp: u64,
    ) {
        let grp = &mut self.groups[g as usize];
        grp.target = target;
        grp.acc = acc;
        grp.anchor = anchor;
        grp.deadline = deadline;
        grp.stamp = stamp;
    }

    /// From-scratch audit: rebuilds a fresh cache from the slab and checks
    /// the incrementally maintained state against it — weights, pools, and
    /// group rates bitwise; member lists as multisets; arena consistency.
    /// O(peers + K²); driven by checked mode and the property tests.
    pub fn audit(&self, peers: &[Peer]) -> Result<(), String> {
        let origin_seeds = if self.origin_bw > 0.0 {
            (self.origin_bw / self.mu).round() as usize
        } else {
            0
        };
        let params = FluidParams::new(self.mu, self.eta, 1.0)
            .map_err(|e| format!("audit: cannot rebuild params: {e}"))?;
        let mut fresh = AggCache::new(self.k, self.scheme, &params, origin_seeds);
        fresh.grow(peers.len());
        for idx in 0..peers.len() {
            if peers[idx].phase != Phase::Departed {
                fresh.register(idx, peers);
            }
        }
        let mut changed = Vec::new();
        fresh.refresh(0.0, true, &mut changed);
        for f in 0..self.k {
            if self.weight[f].to_bits() != fresh.weight[f].to_bits() {
                return Err(format!(
                    "weight[{f}] drift: cached {} vs rebuilt {}",
                    self.weight[f], fresh.weight[f]
                ));
            }
            if self.pool_real[f].to_bits() != fresh.pool_real[f].to_bits()
                || self.pool_virtual[f].to_bits() != fresh.pool_virtual[f].to_bits()
            {
                return Err(format!(
                    "pool[{f}] drift: cached ({}, {}) vs rebuilt ({}, {})",
                    self.pool_real[f],
                    self.pool_virtual[f],
                    fresh.pool_real[f],
                    fresh.pool_virtual[f]
                ));
            }
        }
        for g in 0..self.groups.len() {
            let a = &self.groups[g];
            let b = &fresh.groups[g];
            if a.rate.to_bits() != b.rate.to_bits() {
                return Err(format!(
                    "group {g} rate drift: cached {} vs rebuilt {}",
                    a.rate, b.rate
                ));
            }
            let mut am: Vec<(u32, u32)> = a
                .peers
                .iter()
                .copied()
                .zip(a.slots.iter().copied())
                .collect();
            let mut bm: Vec<(u32, u32)> = b
                .peers
                .iter()
                .copied()
                .zip(b.slots.iter().copied())
                .collect();
            am.sort_unstable();
            bm.sort_unstable();
            if am != bm {
                return Err(format!(
                    "group {g} member drift: cached {} vs rebuilt {} members",
                    a.peers.len(),
                    b.peers.len()
                ));
            }
            // Arena back-references must agree with positions.
            for (pos, (&p, &s)) in a.peers.iter().zip(&a.slots).enumerate() {
                if self.arena.get(p as usize, s as usize) != Some((g as u32, pos as u32)) {
                    return Err(format!(
                        "arena drift: group {g} pos {pos} holds ({p}, {s}) but the arena \
                         maps it to {:?}",
                        self.arena.get(p as usize, s as usize)
                    ));
                }
            }
        }
        // Integer aggregates must agree exactly.
        if self.n_seed != fresh.n_seed {
            return Err("single-file seed counts drifted from the slab".into());
        }
        let mut have: Vec<(u64, u32, u32)> = self
            .sets
            .iter()
            .filter(|e| e.n_real > 0 || e.n_virt > 0)
            .map(|e| (e.mask, e.n_real, e.n_virt))
            .collect();
        let mut want: Vec<(u64, u32, u32)> = fresh
            .sets
            .iter()
            .filter(|e| e.n_real > 0 || e.n_virt > 0)
            .map(|e| (e.mask, e.n_real, e.n_virt))
            .collect();
        have.sort_unstable();
        want.sort_unstable();
        if have != want {
            return Err("source-set counts drifted from the slab".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_workload::requests::FileId;

    fn params() -> FluidParams {
        FluidParams::new(1.0, 0.8, 1.0 / 20.0).unwrap()
    }

    fn downloader(k: usize, files: Vec<FileId>) -> Peer {
        let n = files.len();
        let order: Vec<usize> = (0..n).collect();
        let _ = k;
        Peer::new(0, 0.0, files, order, 1.0)
    }

    #[test]
    fn gid_roundtrip() {
        let a = AggCache::new(6, SchemeKind::Mtsd, &params(), 1);
        for f in 0..6 {
            for class in 1..=6 {
                for band in 0..2u8 {
                    let g = a.gid(f, class, band);
                    assert_eq!(a.group_file(g), f);
                    assert_eq!(a.group_class(g), class);
                    assert_eq!(a.group_band(g), band);
                }
            }
        }
        assert_eq!(a.n_groups(), 72);
    }

    #[test]
    fn mtsd_group_rate_matches_per_member_formula() {
        let k = 4;
        let mut a = AggCache::new(k, SchemeKind::Mtsd, &params(), 1);
        let peers: Vec<Peer> = (0..3).map(|_| downloader(k, vec![2])).collect();
        a.grow(peers.len());
        for idx in 0..peers.len() {
            a.register(idx, &peers);
        }
        let mut changed = Vec::new();
        a.refresh(0.0, false, &mut changed);
        let g = a.gid(2, 1, 0);
        assert_eq!(a.group_len(g), 3);
        assert_eq!(a.weight()[2], 3.0);
        // pool = origin μ; share = 3·1/3 = 1; rate = 3·η·μ + 1·pool.
        let expect: f64 = 3.0 * (0.8 * 1.0) + (3.0 / 3.0) * 1.0;
        assert_eq!(a.group_rate(g).to_bits(), expect.to_bits());
        assert!(changed.contains(&g));
        // Every other group stays silent.
        assert!(changed.iter().all(|&c| c == g));
    }

    #[test]
    fn deregister_restores_empty_state() {
        let k = 3;
        let mut a = AggCache::new(k, SchemeKind::Cmfsd { rho: 0.25 }, &params(), 1);
        let mut p = downloader(k, vec![0, 2]);
        p.rho = 0.25;
        let peers = vec![p];
        a.grow(1);
        a.register(0, &peers);
        let mut changed = Vec::new();
        a.refresh(0.0, false, &mut changed);
        assert_eq!(a.group_len(a.gid(0, 2, 0)), 1);
        a.deregister(0, &peers);
        a.refresh(1.0, false, &mut changed);
        assert_eq!(a.group_len(a.gid(0, 2, 0)), 0);
        assert!(a.weight().iter().all(|&w| w == 0.0));
        a.audit(&[]).unwrap();
    }

    #[test]
    fn cmfsd_finished_peer_moves_to_band_one_with_virtual_set() {
        let k = 3;
        let mut a = AggCache::new(k, SchemeKind::Cmfsd { rho: 0.25 }, &params(), 1);
        let mut p = downloader(k, vec![0, 2]);
        p.rho = 0.25;
        // First file finished, cursor on the second.
        p.remaining[0] = 0.0;
        p.completed_at[0] = Some(1.0);
        p.cursor = 1;
        let peers = vec![p];
        a.grow(1);
        a.register(0, &peers);
        let mut changed = Vec::new();
        a.refresh(2.0, false, &mut changed);
        let g1 = a.gid(2, 2, 1);
        assert_eq!(a.group_len(g1), 1);
        assert_eq!(a.group_len(a.gid(2, 2, 0)), 0);
        // The virtual set over file 0 serves nothing (weight[0] = 0) but
        // is registered with the right mask.
        assert_eq!(a.sets.len(), 1);
        assert_eq!(a.sets[0].mask, 0b001);
        assert_eq!(a.sets[0].n_virt, 1);
        a.audit(&peers).unwrap();
    }

    #[test]
    fn hazard_settles_at_old_rate_before_storing_new() {
        let k = 2;
        let mut a = AggCache::new(k, SchemeKind::Mtsd, &params(), 0);
        let peers: Vec<Peer> = (0..2).map(|_| downloader(k, vec![1])).collect();
        a.grow(peers.len());
        a.register(0, &peers);
        let mut changed = Vec::new();
        a.refresh(0.0, false, &mut changed);
        let g = a.gid(1, 1, 0);
        let r1 = a.group_rate(g);
        assert!(r1 > 0.0);
        a.set_initial_target(g, 100.0);
        // Second member joins at t = 5: hazard must accrue r1·5 first.
        a.register(1, &peers);
        a.refresh(5.0, false, &mut changed);
        let (target, acc, anchor) = a.group_hazard(g);
        assert_eq!(target, 100.0);
        assert_eq!(acc.to_bits(), (r1 * 5.0).to_bits());
        assert_eq!(anchor, 5.0);
        assert!(a.group_rate(g) > r1);
    }

    #[test]
    fn on_pop_rearms_even_when_rate_bits_survive() {
        let k = 2;
        let mut a = AggCache::new(k, SchemeKind::Mtsd, &params(), 1);
        let peers = vec![downloader(k, vec![0])];
        a.grow(1);
        a.register(0, &peers);
        let mut changed = Vec::new();
        a.refresh(0.0, false, &mut changed);
        let g = a.gid(0, 1, 0);
        a.on_pop(g, 1.5, 3.0);
        // Nothing dirty except the rearm: refresh must still report g.
        a.refresh(3.0, false, &mut changed);
        assert_eq!(changed, vec![g]);
        let (target, acc, anchor) = a.group_hazard(g);
        assert_eq!((target, acc, anchor), (1.5, 0.0, 3.0));
    }

    #[test]
    fn set_tombstones_are_reused() {
        let k = 3;
        let mut a = AggCache::new(k, SchemeKind::Cmfsd { rho: 0.5 }, &params(), 0);
        let mut p = downloader(k, vec![0, 1]);
        p.rho = 0.5;
        p.phase = Phase::SeedingAll;
        let peers = vec![p];
        a.grow(1);
        a.register(0, &peers);
        a.deregister(0, &peers);
        assert_eq!(a.sets.len(), 1);
        assert_eq!((a.sets[0].n_real, a.sets[0].n_virt), (0, 0));
        a.register(0, &peers);
        assert_eq!(a.sets.len(), 1, "tombstone must be reused, not duplicated");
        assert_eq!(a.sets[0].n_real, 1);
    }
}
