//! Incremental rate maintenance: per-subtorrent aggregates kept up to date
//! event-by-event instead of rebuilt from scratch.
//!
//! [`crate::rate::compute_rates`] rebuilds `weight`, `pool_real`,
//! `pool_virtual` and every download rate from the whole population on
//! every call — O(peers) per event. [`RateCache`] maintains the same
//! aggregates incrementally: when a peer's membership changes (arrival,
//! completion, expiry, ρ update) the engine deregisters and re-registers
//! that one peer, which marks the affected subtorrents dirty; the
//! subsequent [`RateCache::refresh`] recomputes only dirty aggregates and
//! the downloads they feed.
//!
//! ## Bit-exactness contract
//!
//! Every aggregate is recomputed by re-summing an ordered member list that
//! reproduces `compute_rates`' accumulation order (peers ascending by slab
//! index, slots in view order within a peer, the origin publisher first in
//! every pool). A recompute of an *unchanged* aggregate therefore yields
//! the identical bit pattern, which is what makes the engine's
//! `exact_rates` mode (forced full recompute every event) and the default
//! incremental mode produce bit-identical trajectories: the only
//! difference between the modes is how much provably-unchanged work is
//! redone.
//!
//! Change detection is by `f64::to_bits` comparison, and a changed rate
//! triggers lazy settlement of the affected download
//! ([`crate::peer::Peer::settle_slot`]) before the new rate is stored, so
//! progress accrual is exact piecewise-linear integration in both modes.
//!
//! ## Dirty propagation
//!
//! * A membership change on subtorrent `f` marks `weight[f]` dirty.
//! * A bit-changed `weight[f]` invalidates: `f`'s own pools, the pools of
//!   every file served by any source that also serves `f` (their
//!   demand-aware split changed), and — when a demand-aware origin
//!   publisher exists (MFCD/CMFSD) — every pool (the global demand
//!   changed).
//! * Download rates are recomputed for every member of a subtorrent whose
//!   weight or pools bit-changed, plus every active slot of a peer touched
//!   this round (its TFT upload `u` can change with no weight change,
//!   e.g. a CMFSD peer finishing its first file at unchanged weight 1).
//! * Donation rates are recomputed for touched peers and for owners of
//!   sources serving a pool-dirty file.

use crate::config::SchemeKind;
use crate::peer::{Peer, Phase};
use crate::rate::{ActiveDownload, RateSnapshot};
use btfluid_core::FluidParams;

/// One downloader membership in a subtorrent's member list.
#[derive(Debug, Clone, Copy)]
struct Member {
    peer: u32,
    slot: u32,
    /// TFT upload bandwidth `u` of this download.
    u: f64,
    /// Downloader weight `w` of this download.
    w: f64,
}

/// Reference to one seed source in a subtorrent's source list:
/// `reg[peer].sources[ord]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SourceRef {
    peer: u32,
    ord: u32,
}

/// A seed capacity source owned by one peer.
#[derive(Debug, Clone)]
struct PeerSource {
    files: Vec<usize>,
    bandwidth: f64,
    is_virtual: bool,
}

/// What one peer currently has registered in the cache.
#[derive(Debug, Default)]
struct PeerReg {
    /// Active downloads `(slot, file, u, w)` in view order.
    active: Vec<(u32, u32, f64, f64)>,
    /// Seed sources in view order.
    sources: Vec<PeerSource>,
    registered: bool,
}

/// Incrementally maintained per-subtorrent rate aggregates.
///
/// Protocol (driven by the engine around every event):
/// 1. [`RateCache::deregister`] each peer whose state the event mutates;
/// 2. mutate the peer;
/// 3. [`RateCache::register`] it again;
/// 4. call [`RateCache::refresh`] once, which settles and updates every
///    download whose rate actually changed.
#[derive(Debug)]
pub struct RateCache {
    k: usize,
    scheme: SchemeKind,
    mu: f64,
    eta: f64,
    /// Aggregate origin-publisher bandwidth (0 when there are none).
    origin_bw: f64,
    /// Whether the origin splits demand-aware over subtorrents
    /// (MFCD/CMFSD) rather than pinning μ per torrent (MTSD/MTCD).
    origin_demand_aware: bool,
    weight: Vec<f64>,
    pool_real: Vec<f64>,
    pool_virtual: Vec<f64>,
    /// Per file: downloader members sorted by (peer, slot).
    downloaders: Vec<Vec<Member>>,
    /// Per file: seed sources serving it, sorted by (peer, ord).
    sources: Vec<Vec<SourceRef>>,
    reg: Vec<PeerReg>,
    // Dirty tracking (list + flag pairs so marking is O(1) amortized).
    dirty_w: Vec<usize>,
    dirty_w_flag: Vec<bool>,
    dirty_p: Vec<usize>,
    dirty_p_flag: Vec<bool>,
    touched: Vec<usize>,
    touched_flag: Vec<bool>,
    // Scratch reused across refreshes.
    wc: Vec<usize>,
    pd: Vec<usize>,
    pd_flag: Vec<bool>,
    rate_files: Vec<usize>,
    rate_flag: Vec<bool>,
    owners: Vec<usize>,
    owner_flag: Vec<bool>,
    // Telemetry (drained via `take_stats`, never read by the cache).
    /// Download-rate recomputations performed since the last drain.
    stat_recomputes: u64,
    /// Refreshes satisfied by the early return (nothing dirty).
    stat_clean: u64,
}

impl RateCache {
    /// Creates an empty cache for `k` subtorrents.
    ///
    /// `origin_seeds` has the same meaning as in
    /// [`crate::rate::compute_rates`].
    pub fn new(k: usize, scheme: SchemeKind, params: &FluidParams, origin_seeds: usize) -> Self {
        let origin_bw = if origin_seeds > 0 {
            origin_seeds as f64 * params.mu()
        } else {
            0.0
        };
        RateCache {
            k,
            scheme,
            mu: params.mu(),
            eta: params.eta(),
            origin_bw,
            origin_demand_aware: matches!(scheme, SchemeKind::Mfcd | SchemeKind::Cmfsd { .. }),
            weight: vec![0.0; k],
            pool_real: vec![0.0; k],
            pool_virtual: vec![0.0; k],
            downloaders: vec![Vec::new(); k],
            sources: vec![Vec::new(); k],
            reg: Vec::new(),
            dirty_w: Vec::new(),
            dirty_w_flag: vec![false; k],
            dirty_p: Vec::new(),
            dirty_p_flag: vec![false; k],
            touched: Vec::new(),
            touched_flag: Vec::new(),
            wc: Vec::new(),
            pd: Vec::new(),
            pd_flag: vec![false; k],
            rate_files: Vec::new(),
            rate_flag: vec![false; k],
            owners: Vec::new(),
            owner_flag: Vec::new(),
            stat_recomputes: 0,
            stat_clean: 0,
        }
    }

    /// Drains the telemetry accumulated since the last call:
    /// `(download-rate recomputations, clean refresh hits)`.
    pub fn take_stats(&mut self) -> (u64, u64) {
        let stats = (self.stat_recomputes, self.stat_clean);
        self.stat_recomputes = 0;
        self.stat_clean = 0;
        stats
    }

    /// Changes the origin-publisher count mid-run (scenario seed crash /
    /// recovery) and marks every pool dirty so the next [`Self::refresh`]
    /// redistributes the new bandwidth.
    ///
    /// Marking all pools (rather than diffing) keeps the bit-exactness
    /// contract trivially: the forced-recompute mode recomputes every pool
    /// anyway, and an incremental recompute of an unchanged pool is a
    /// bitwise no-op.
    pub fn set_origin_seeds(&mut self, origin_seeds: usize) {
        let bw = if origin_seeds > 0 {
            origin_seeds as f64 * self.mu
        } else {
            0.0
        };
        if bw.to_bits() == self.origin_bw.to_bits() {
            return;
        }
        self.origin_bw = bw;
        for f in 0..self.k {
            self.mark_p(f);
        }
    }

    /// Grows per-peer bookkeeping to cover `n` peer slab slots.
    pub fn grow(&mut self, n: usize) {
        while self.reg.len() < n {
            self.reg.push(PeerReg::default());
        }
        if self.touched_flag.len() < n {
            self.touched_flag.resize(n, false);
        }
        if self.owner_flag.len() < n {
            self.owner_flag.resize(n, false);
        }
    }

    fn mark_w(&mut self, f: usize) {
        if !self.dirty_w_flag[f] {
            self.dirty_w_flag[f] = true;
            self.dirty_w.push(f);
        }
    }

    fn mark_p(&mut self, f: usize) {
        if !self.dirty_p_flag[f] {
            self.dirty_p_flag[f] = true;
            self.dirty_p.push(f);
        }
    }

    fn mark_touched(&mut self, idx: usize) {
        if !self.touched_flag[idx] {
            self.touched_flag[idx] = true;
            self.touched.push(idx);
        }
    }

    /// Removes a peer's current memberships from the aggregate structures
    /// and marks the affected subtorrents dirty. Does not settle — the
    /// engine settles the peer before calling this.
    pub fn deregister(&mut self, idx: usize, _peers: &[Peer]) {
        self.mark_touched(idx);
        let reg = std::mem::take(&mut self.reg[idx]);
        for &(slot, file, _u, _w) in &reg.active {
            let f = file as usize;
            let list = &mut self.downloaders[f];
            let pos = list
                .binary_search_by_key(&(idx as u32, slot), |m| (m.peer, m.slot))
                .expect("deregistering a member that was never inserted");
            list.remove(pos);
            self.mark_w(f);
        }
        for (ord, src) in reg.sources.iter().enumerate() {
            let sref = SourceRef {
                peer: idx as u32,
                ord: ord as u32,
            };
            for &f in &src.files {
                let list = &mut self.sources[f];
                let pos = list
                    .binary_search(&sref)
                    .expect("deregistering a source that was never inserted");
                list.remove(pos);
                self.mark_p(f);
            }
        }
        // reg[idx] is left empty (registered = false) until re-registered.
        let slot = &mut self.reg[idx];
        slot.active = reg.active;
        slot.active.clear();
        slot.sources = reg.sources;
        slot.sources.clear();
        slot.registered = false;
    }

    /// Computes the peer's current memberships (mirroring
    /// `crate::rate::view`) and inserts them, marking the affected
    /// subtorrents dirty.
    pub fn register(&mut self, idx: usize, peers: &[Peer]) {
        self.mark_touched(idx);
        let peer = &peers[idx];
        debug_assert!(!self.reg[idx].registered, "double registration");
        let mut reg = std::mem::take(&mut self.reg[idx]);
        reg.registered = true;
        self.fill_membership(peer, &mut reg);
        for &(slot, file, u, w) in &reg.active {
            let f = file as usize;
            let list = &mut self.downloaders[f];
            let pos = list
                .binary_search_by_key(&(idx as u32, slot), |m| (m.peer, m.slot))
                .expect_err("duplicate downloader membership");
            list.insert(
                pos,
                Member {
                    peer: idx as u32,
                    slot,
                    u,
                    w,
                },
            );
            self.mark_w(f);
        }
        for (ord, src) in reg.sources.iter().enumerate() {
            let sref = SourceRef {
                peer: idx as u32,
                ord: ord as u32,
            };
            for &f in &src.files {
                let list = &mut self.sources[f];
                let pos = list
                    .binary_search(&sref)
                    .expect_err("duplicate source membership");
                list.insert(pos, sref);
                self.mark_p(f);
            }
        }
        self.reg[idx] = reg;
    }

    /// Mirrors `crate::rate::view`: what the peer contributes under the
    /// configured scheme, in the same order.
    fn fill_membership(&self, peer: &Peer, reg: &mut PeerReg) {
        let mu = self.mu;
        let class = peer.class() as f64;
        match self.scheme {
            SchemeKind::Mtsd => match peer.phase {
                Phase::Downloading => {
                    let slot = peer.current_slot();
                    reg.active
                        .push((slot as u32, peer.files[slot] as u32, mu, 1.0));
                }
                Phase::SeedingFile(slot) => {
                    reg.sources.push(PeerSource {
                        files: vec![peer.files[slot] as usize],
                        bandwidth: mu,
                        is_virtual: false,
                    });
                }
                Phase::SeedingAll | Phase::Departed => {}
            },
            SchemeKind::Mtcd | SchemeKind::Mfcd => {
                if peer.phase == Phase::Departed {
                    return;
                }
                let share = mu / class;
                for slot in 0..peer.class() {
                    if !peer.finished(slot) {
                        reg.active
                            .push((slot as u32, peer.files[slot] as u32, share, 1.0 / class));
                    } else if peer.seed_until[slot].is_some() {
                        reg.sources.push(PeerSource {
                            files: vec![peer.files[slot] as usize],
                            bandwidth: share,
                            is_virtual: false,
                        });
                    }
                }
            }
            SchemeKind::Cmfsd { .. } => match peer.phase {
                Phase::Downloading => {
                    let slot = peer.current_slot();
                    if peer.done_count() >= 1 {
                        let rho = peer.rho;
                        reg.active
                            .push((slot as u32, peer.files[slot] as u32, rho * mu, 1.0));
                        let donated = (1.0 - rho) * mu;
                        if donated > 0.0 {
                            let files = peer
                                .finished_slots()
                                .into_iter()
                                .map(|s| peer.files[s] as usize)
                                .collect();
                            reg.sources.push(PeerSource {
                                files,
                                bandwidth: donated,
                                is_virtual: true,
                            });
                        }
                    } else {
                        reg.active
                            .push((slot as u32, peer.files[slot] as u32, mu, 1.0));
                    }
                }
                Phase::SeedingAll => {
                    reg.sources.push(PeerSource {
                        files: peer.files.iter().map(|&f| f as usize).collect(),
                        bandwidth: mu,
                        is_virtual: false,
                    });
                }
                Phase::SeedingFile(_) | Phase::Departed => {}
            },
        }
    }

    /// Recomputes dirty aggregates and updates the rates they feed,
    /// settling every download/donation whose rate bit-changes before the
    /// new value is stored on the peer.
    ///
    /// With `force` the full recompute path of the seed engine is
    /// replayed: every weight, pool, and rate is recomputed (and, by the
    /// ordered-resummation argument in the module docs, every unchanged
    /// one reproduces its cached bits). `changed` receives the
    /// `(peer, slot)` of every download whose rate changed, for completion
    /// rescheduling.
    pub fn refresh(
        &mut self,
        peers: &mut [Peer],
        t: f64,
        force: bool,
        changed: &mut Vec<(u32, u32)>,
    ) {
        changed.clear();
        if !force && self.dirty_w.is_empty() && self.dirty_p.is_empty() && self.touched.is_empty() {
            self.stat_clean += 1;
            return;
        }

        // Pass 1: weights. `wc` collects the bit-changed files.
        self.wc.clear();
        if force {
            for f in 0..self.k {
                self.recompute_weight(f);
            }
        } else {
            let dirty = std::mem::take(&mut self.dirty_w);
            for &f in &dirty {
                self.recompute_weight(f);
            }
            self.dirty_w = dirty;
        }

        // Pass 2: the pool-dirty set `pd`.
        self.pd.clear();
        if force {
            for f in 0..self.k {
                self.pd_flag[f] = true;
                self.pd.push(f);
            }
        } else {
            let dirty = std::mem::take(&mut self.dirty_p);
            for &f in &dirty {
                self.mark_pd(f);
            }
            self.dirty_p = dirty;
            let wc = std::mem::take(&mut self.wc);
            for &f in &wc {
                self.mark_pd(f);
                // Sources serving a weight-changed file redistribute their
                // bandwidth over all their files.
                for i in 0..self.sources[f].len() {
                    let sref = self.sources[f][i];
                    for j in 0..self.reg[sref.peer as usize].sources[sref.ord as usize]
                        .files
                        .len()
                    {
                        let g = self.reg[sref.peer as usize].sources[sref.ord as usize].files[j];
                        self.mark_pd(g);
                    }
                }
            }
            if self.origin_demand_aware && self.origin_bw > 0.0 && !wc.is_empty() {
                for f in 0..self.k {
                    self.mark_pd(f);
                }
            }
            self.wc = wc;
        }

        // Pass 3: pools, collecting donation owners along the way.
        self.owners.clear();
        for i in 0..self.touched.len() {
            let p = self.touched[i];
            self.mark_owner(p);
        }
        for i in 0..self.pd.len() {
            let f = self.pd[i];
            let mut pr = 0.0;
            let mut pv = 0.0;
            if self.origin_bw > 0.0 {
                if self.origin_demand_aware {
                    let demand: f64 = self.weight.iter().sum();
                    if demand > 0.0 && self.weight[f] > 0.0 {
                        pr += self.origin_bw * self.weight[f] / demand;
                    }
                } else {
                    pr += self.origin_bw;
                }
            }
            for j in 0..self.sources[f].len() {
                let sref = self.sources[f][j];
                let src = &self.reg[sref.peer as usize].sources[sref.ord as usize];
                if src.is_virtual {
                    // Inline owner marking: `src` pins `self.reg` borrowed.
                    let p = sref.peer as usize;
                    if !self.owner_flag[p] {
                        self.owner_flag[p] = true;
                        self.owners.push(p);
                    }
                }
                let demand: f64 = src.files.iter().map(|&g| self.weight[g]).sum();
                if demand <= 0.0 {
                    continue;
                }
                if self.weight[f] > 0.0 {
                    let share = src.bandwidth * self.weight[f] / demand;
                    if src.is_virtual {
                        pv += share;
                    } else {
                        pr += share;
                    }
                }
            }
            if pr.to_bits() != self.pool_real[f].to_bits()
                || pv.to_bits() != self.pool_virtual[f].to_bits()
            {
                self.pool_real[f] = pr;
                self.pool_virtual[f] = pv;
                if !self.rate_flag[f] {
                    self.rate_flag[f] = true;
                    self.rate_files.push(f);
                }
            }
        }

        // Pass 4: download rates for members of weight- or pool-changed
        // files plus all active slots of touched peers. Under `force` the
        // seed engine's full pass is replayed: every rate is recomputed
        // (unchanged ones are bitwise no-ops and trigger nothing).
        if force {
            for f in 0..self.k {
                if !self.rate_flag[f] {
                    self.rate_flag[f] = true;
                    self.rate_files.push(f);
                }
            }
        }
        for i in 0..self.wc.len() {
            let f = self.wc[i];
            if !self.rate_flag[f] {
                self.rate_flag[f] = true;
                self.rate_files.push(f);
            }
        }
        let mut recomputed = 0u64;
        for i in 0..self.rate_files.len() {
            let f = self.rate_files[i];
            recomputed += self.downloaders[f].len() as u64;
            for j in 0..self.downloaders[f].len() {
                let m = self.downloaders[f][j];
                self.recompute_rate(peers, t, m.peer, m.slot, f, m.u, m.w, changed);
            }
        }
        for i in 0..self.touched.len() {
            let p = self.touched[i];
            recomputed += self.reg[p].active.len() as u64;
            for j in 0..self.reg[p].active.len() {
                let (slot, file, u, w) = self.reg[p].active[j];
                self.recompute_rate(peers, t, p as u32, slot, file as usize, u, w, changed);
            }
        }
        self.stat_recomputes += recomputed;

        // Pass 5: donation rates for owners.
        if force {
            for p in 0..self.reg.len() {
                self.mark_owner(p);
            }
        }
        for i in 0..self.owners.len() {
            let p = self.owners[i];
            let mut dr = 0.0;
            for src in &self.reg[p].sources {
                if !src.is_virtual {
                    continue;
                }
                let demand: f64 = src.files.iter().map(|&g| self.weight[g]).sum();
                if demand > 0.0 {
                    dr += src.bandwidth;
                }
            }
            let peer = &mut peers[p];
            if dr.to_bits() != peer.donation_rate.to_bits() {
                peer.settle_donation(t);
                peer.donation_rate = dr;
            }
        }

        // Reset dirty/scratch state for the next round.
        for &f in &self.dirty_w {
            self.dirty_w_flag[f] = false;
        }
        self.dirty_w.clear();
        for &f in &self.dirty_p {
            self.dirty_p_flag[f] = false;
        }
        self.dirty_p.clear();
        for &p in &self.touched {
            self.touched_flag[p] = false;
        }
        self.touched.clear();
        for &f in &self.pd {
            self.pd_flag[f] = false;
        }
        self.pd.clear();
        for &f in &self.rate_files {
            self.rate_flag[f] = false;
        }
        self.rate_files.clear();
        for &p in &self.owners {
            self.owner_flag[p] = false;
        }
        self.owners.clear();
        self.wc.clear();
    }

    fn mark_pd(&mut self, f: usize) {
        if !self.pd_flag[f] {
            self.pd_flag[f] = true;
            self.pd.push(f);
        }
    }

    fn mark_owner(&mut self, p: usize) {
        if !self.owner_flag[p] {
            self.owner_flag[p] = true;
            self.owners.push(p);
        }
    }

    /// Re-sums `weight[f]` over the ordered member list; records a bit
    /// change in `wc`.
    fn recompute_weight(&mut self, f: usize) {
        let s: f64 = self.downloaders[f].iter().map(|m| m.w).sum();
        if s.to_bits() != self.weight[f].to_bits() {
            self.weight[f] = s;
            self.wc.push(f);
        }
    }

    /// Recomputes one download's rate with the exact float expression of
    /// `compute_rates`; on a bit change settles the slot and stores it.
    #[allow(clippy::too_many_arguments)]
    fn recompute_rate(
        &self,
        peers: &mut [Peer],
        t: f64,
        p: u32,
        slot: u32,
        f: usize,
        u: f64,
        w: f64,
        changed: &mut Vec<(u32, u32)>,
    ) {
        let share = if self.weight[f] > 0.0 {
            w / self.weight[f]
        } else {
            0.0
        };
        let from_real = share * self.pool_real[f];
        let from_virtual = share * self.pool_virtual[f];
        let rate = self.eta * u + from_real + from_virtual;
        let peer = &mut peers[p as usize];
        let s = slot as usize;
        if rate.to_bits() != peer.rate[s].to_bits()
            || from_virtual.to_bits() != peer.vs_rate[s].to_bits()
        {
            peer.settle_slot(s, t);
            peer.rate[s] = rate;
            peer.vs_rate[s] = from_virtual;
            changed.push((p, slot));
        }
    }

    /// Current downloader weight per subtorrent.
    pub fn weight(&self) -> &[f64] {
        &self.weight
    }

    /// Current real-seed pool per subtorrent.
    pub fn pool_real(&self) -> &[f64] {
        &self.pool_real
    }

    /// Current virtual-seed pool per subtorrent.
    pub fn pool_virtual(&self) -> &[f64] {
        &self.pool_virtual
    }

    /// Materializes a [`RateSnapshot`] from the cached state (testing and
    /// verification; downloads in the same order `compute_rates` emits).
    pub fn snapshot(&self, peers: &[Peer]) -> RateSnapshot {
        let mut snap = RateSnapshot {
            downloads: Vec::new(),
            donations: vec![0.0; peers.len()],
        };
        for (idx, reg) in self.reg.iter().enumerate() {
            if idx >= peers.len() {
                break;
            }
            for &(slot, _f, _u, _w) in &reg.active {
                let s = slot as usize;
                snap.downloads.push(ActiveDownload {
                    peer_idx: idx,
                    slot: s,
                    rate: peers[idx].rate[s],
                    vs_rate: peers[idx].vs_rate[s],
                });
            }
            snap.donations[idx] = peers[idx].donation_rate;
        }
        snap
    }
}
