//! Simulation configuration and validation.

use btfluid_core::adapt::AdaptConfig;
use btfluid_core::FluidParams;
use btfluid_numkit::NumError;
use btfluid_workload::CorrelationModel;

/// Which downloading scheme the simulated peers follow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeKind {
    /// Multi-torrent sequential downloading.
    Mtsd,
    /// Multi-torrent concurrent downloading.
    Mtcd,
    /// Multi-file-torrent concurrent downloading (virtual peers depart as a
    /// whole).
    Mfcd,
    /// Collaborative multi-file-torrent sequential downloading with the
    /// given *default* bandwidth allocation ratio ρ (individual peers may
    /// override it through Adapt).
    Cmfsd {
        /// Default ρ for every obedient peer.
        rho: f64,
    },
}

impl SchemeKind {
    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            SchemeKind::Mtsd => "MTSD".into(),
            SchemeKind::Mtcd => "MTCD".into(),
            SchemeKind::Mfcd => "MFCD".into(),
            SchemeKind::Cmfsd { rho } => format!("CMFSD(ρ={rho})"),
        }
    }

    /// Whether peers download their files sequentially (MTSD, CMFSD) or
    /// concurrently (MTCD, MFCD).
    pub fn is_sequential(&self) -> bool {
        matches!(self, SchemeKind::Mtsd | SchemeKind::Cmfsd { .. })
    }
}

/// How a sequential peer (MTSD/CMFSD) picks the next file to download.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// A fixed uniformly random permutation per peer — the paper's
    /// "downloading sequence is randomized".
    #[default]
    Random,
    /// Pick the unfinished file with the fewest current holders (finished
    /// copies among present peers), ties broken randomly — BitTorrent's
    /// local-rarest-first heuristic lifted from chunks to files.
    ///
    /// This matters at `ρ → 0` under CMFSD: with [`OrderPolicy::Random`]
    /// the swarm self-organizes into a single-file convoy (everyone's last
    /// file is a file almost nobody still holds) and the realized times
    /// blow past the fluid prediction; rarest-first burns down scarcity
    /// early and recovers the fluid model's well-mixed behaviour. See
    /// EXPERIMENTS.md, finding X3b.
    RarestFirst,
}

/// Configuration of the Adapt evaluation layer (only meaningful with
/// [`SchemeKind::Cmfsd`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptSetup {
    /// Controller constants (thresholds, steps, patience).
    pub controller: AdaptConfig,
    /// Period between Δ observations.
    pub epoch: f64,
    /// Fraction of arriving peers that cheat (pin ρ = 1, never donate).
    pub cheater_fraction: f64,
}

impl AdaptSetup {
    /// Validates the setup.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] for a non-positive epoch, a
    /// cheater fraction outside `[0, 1]`, or an invalid controller config.
    pub fn validate(&self) -> Result<(), NumError> {
        self.controller.validate()?;
        if !(self.epoch > 0.0) || !self.epoch.is_finite() {
            return Err(NumError::InvalidInput {
                what: "AdaptSetup",
                detail: format!("epoch must be finite and > 0, got {}", self.epoch),
            });
        }
        if !(0.0..=1.0).contains(&self.cheater_fraction) {
            return Err(NumError::InvalidInput {
                what: "AdaptSetup",
                detail: format!(
                    "cheater fraction must lie in [0,1], got {}",
                    self.cheater_fraction
                ),
            });
        }
        Ok(())
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DesConfig {
    /// Fluid parameters `μ, η, γ` shared by all peers.
    pub params: FluidParams,
    /// Workload: `K`, correlation `p`, visiting rate `λ₀`.
    pub model: CorrelationModel,
    /// Downloading scheme.
    pub scheme: SchemeKind,
    /// Simulated horizon; arrivals stop here, in-flight peers keep running
    /// until [`DesConfig::drain`] beyond it.
    pub horizon: f64,
    /// Warm-up: users arriving before this time are excluded from the
    /// statistics (transient removal).
    pub warmup: f64,
    /// Extra time after the horizon during which in-flight peers may
    /// finish (avoids censoring the slowest classes).
    pub drain: f64,
    /// RNG seed; every derived stream is deterministic in it.
    ///
    /// The engine derives three independent streams: 0 (arrival times and
    /// request sets), 1 (service randomness: orders, seed residences,
    /// Adapt assignment), 2 (scenario events: abort candidates and
    /// victims). Attaching a [`crate::hook::ScenarioHook`] therefore never
    /// perturbs the draws of streams 0 and 1 relative to a stationary run
    /// with the same seed.
    pub seed: u64,
    /// Optional Adapt layer (CMFSD only).
    pub adapt: Option<AdaptSetup>,
    /// Publisher ("origin") seeds: permanent peers holding **all** `K`
    /// files, each serving with bandwidth `μ` split demand-aware.
    ///
    /// The paper's server–torrent architecture (Figure 1) always has the
    /// publisher online; the fluid model leaves it out because its capacity
    /// is negligible against the swarm's. The simulator needs it for
    /// cold-start liveness: at `ρ → 0` a CMFSD swarm bootstrapping from an
    /// empty torrent can gridlock on its scarcest file (every parked peer
    /// donates bandwidth nobody can use — see EXPERIMENTS.md, finding X3b),
    /// exactly the situation an origin seed exists to prevent.
    pub origin_seeds: usize,
    /// Initialize the swarm at the fluid model's steady state instead of
    /// empty (CMFSD only).
    ///
    /// Stage populations come from the CMFSD fixed point; peers get random
    /// file sets, uniformly distributed residual work on their current file,
    /// and seeds get fresh `Exp(γ)` residence. Removes both the long
    /// cold-start transient and the ρ → 0 bootstrap fragility; the
    /// warm-start peers themselves are excluded from the statistics (their
    /// arrival predates the warm-up cut).
    pub warm_start: bool,
    /// Next-file selection for sequential schemes (ignored by MTCD/MFCD,
    /// which download everything concurrently).
    pub order_policy: OrderPolicy,
    /// When set, record total downloader/seed populations into a
    /// [`btfluid_numkit::series::TimeSeries`] every this many time units
    /// (`SimOutcome::trajectory`). `None` disables recording.
    pub record_every: Option<f64>,
    /// Verification mode: force a full aggregate/rate recompute on every
    /// event (the seed engine's behaviour) instead of the incremental
    /// dirty-tracking refresh. Both modes produce bit-identical
    /// trajectories; this one is O(peers) per event and exists so tests
    /// can assert that equivalence.
    pub exact_rates: bool,
    /// Opt-in invariant validation: after every event the engine audits
    /// rate finiteness, event-queue/live-count consistency, and incremental
    /// rate-cache agreement with a from-scratch recompute, turning a
    /// violation into a typed [`crate::DesError::Invariant`] from
    /// [`crate::engine::Simulation::step`] /
    /// [`crate::engine::Simulation::try_run`] instead of a downstream
    /// panic. O(peers) per event — meant for tests and debugging, not
    /// production sweeps. Does not perturb the simulated trajectory.
    pub checked: bool,
    /// Class-aggregated completion scheduling: instead of one heap deadline
    /// per active download, the engine keeps **one** exponential completion
    /// event per (file, class, upload-band) group, keyed by the group's
    /// total service rate, and samples *which* member completed uniformly
    /// at pop time. The event queue then holds O(classes·files) completion
    /// entries instead of O(peers), making the per-event cost roughly flat
    /// in the swarm size.
    ///
    /// Peers inside a group are rate-homogeneous under the paper's fluid
    /// service model, so uniform member sampling is unbiased and the
    /// per-class *mean* populations and sojourn times match the per-peer
    /// path within statistical tolerance (deterministic residual work is
    /// replaced by an exponential with the same mean — the class-level
    /// Markov description). Trajectories are **not** bit-identical to the
    /// per-peer path; snapshot/resume stays bit-identical *within* the
    /// mode. Mutually exclusive with [`DesConfig::exact_rates`] and with
    /// Adapt (which needs per-peer progress accounting); requires `K ≤ 64`
    /// (collaborative source sets are tracked as 64-bit file masks).
    pub aggregate: bool,
}

impl DesConfig {
    /// A small, fast-running default around the paper's parameters, useful
    /// in tests and examples: scale `λ₀` down to keep populations modest.
    pub fn paper_small(scheme: SchemeKind, p: f64, seed: u64) -> Result<Self, NumError> {
        Ok(Self {
            params: FluidParams::paper(),
            model: CorrelationModel::new(10, p, 0.25)?,
            scheme,
            horizon: 4000.0,
            warmup: 800.0,
            drain: 4000.0,
            seed,
            adapt: None,
            origin_seeds: 0,
            warm_start: false,
            order_policy: OrderPolicy::default(),
            record_every: None,
            exact_rates: false,
            checked: false,
            aggregate: false,
        })
    }

    /// Validates cross-field constraints.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] for non-positive horizon/drain,
    /// warm-up beyond the horizon, `p = 0` (nobody would ever arrive),
    /// Adapt attached to a non-CMFSD scheme, or an invalid ρ.
    pub fn validate(&self) -> Result<(), NumError> {
        if !(self.horizon > 0.0) || !self.horizon.is_finite() {
            return Err(NumError::InvalidInput {
                what: "DesConfig",
                detail: format!("horizon must be finite and > 0, got {}", self.horizon),
            });
        }
        if !(self.warmup >= 0.0) || self.warmup >= self.horizon {
            return Err(NumError::InvalidInput {
                what: "DesConfig",
                detail: format!(
                    "warmup must lie in [0, horizon), got {} with horizon {}",
                    self.warmup, self.horizon
                ),
            });
        }
        if !(self.drain >= 0.0) || !self.drain.is_finite() {
            return Err(NumError::InvalidInput {
                what: "DesConfig",
                detail: format!("drain must be finite and >= 0, got {}", self.drain),
            });
        }
        if self.model.p() == 0.0 {
            return Err(NumError::InvalidInput {
                what: "DesConfig",
                detail: "p = 0: no user ever requests a file".into(),
            });
        }
        if let SchemeKind::Cmfsd { rho } = self.scheme {
            if !(0.0..=1.0).contains(&rho) {
                return Err(NumError::InvalidInput {
                    what: "DesConfig",
                    detail: format!("CMFSD ρ must lie in [0,1], got {rho}"),
                });
            }
        }
        if let Some(adapt) = &self.adapt {
            adapt.validate()?;
            if !matches!(self.scheme, SchemeKind::Cmfsd { .. }) {
                return Err(NumError::InvalidInput {
                    what: "DesConfig",
                    detail: format!("Adapt only applies to CMFSD, not {}", self.scheme.name()),
                });
            }
        }
        if self.warm_start && !matches!(self.scheme, SchemeKind::Cmfsd { .. }) {
            return Err(NumError::InvalidInput {
                what: "DesConfig",
                detail: format!(
                    "warm_start is implemented for CMFSD only, not {}",
                    self.scheme.name()
                ),
            });
        }
        if let Some(dt) = self.record_every {
            if !(dt > 0.0) || !dt.is_finite() {
                return Err(NumError::InvalidInput {
                    what: "DesConfig",
                    detail: format!("record_every must be finite and > 0, got {dt}"),
                });
            }
        }
        if self.aggregate {
            if self.exact_rates {
                return Err(NumError::InvalidInput {
                    what: "DesConfig",
                    detail: "aggregate and exact_rates are mutually exclusive \
                             (aggregate mode has no per-peer rates to recompute)"
                        .into(),
                });
            }
            if self.adapt.is_some() {
                return Err(NumError::InvalidInput {
                    what: "DesConfig",
                    detail: "aggregate mode is incompatible with Adapt \
                             (the controller needs per-peer progress accounting)"
                        .into(),
                });
            }
            if self.model.k() > 64 {
                return Err(NumError::InvalidInput {
                    what: "DesConfig",
                    detail: format!(
                        "aggregate mode requires K <= 64 (file masks are u64), got {}",
                        self.model.k()
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_and_kinds() {
        assert_eq!(SchemeKind::Mtsd.name(), "MTSD");
        assert_eq!(SchemeKind::Cmfsd { rho: 0.25 }.name(), "CMFSD(ρ=0.25)");
        assert!(SchemeKind::Mtsd.is_sequential());
        assert!(SchemeKind::Cmfsd { rho: 0.0 }.is_sequential());
        assert!(!SchemeKind::Mtcd.is_sequential());
        assert!(!SchemeKind::Mfcd.is_sequential());
    }

    #[test]
    fn paper_small_is_valid() {
        let cfg = DesConfig::paper_small(SchemeKind::Mtsd, 0.5, 1).unwrap();
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_failures() {
        let mut cfg = DesConfig::paper_small(SchemeKind::Mtsd, 0.5, 1).unwrap();
        cfg.horizon = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = DesConfig::paper_small(SchemeKind::Mtsd, 0.5, 1).unwrap();
        cfg.warmup = cfg.horizon;
        assert!(cfg.validate().is_err());

        let mut cfg = DesConfig::paper_small(SchemeKind::Mtsd, 0.5, 1).unwrap();
        cfg.drain = -1.0;
        assert!(cfg.validate().is_err());

        let cfg = DesConfig::paper_small(SchemeKind::Cmfsd { rho: 1.5 }, 0.5, 1).unwrap();
        assert!(cfg.validate().is_err());

        // p = 0 passes model construction but fails config validation.
        let cfg = DesConfig::paper_small(SchemeKind::Mtsd, 0.0, 1).unwrap();
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn adapt_requires_cmfsd() {
        let setup = AdaptSetup {
            controller: AdaptConfig::default_for_mu(0.02),
            epoch: 10.0,
            cheater_fraction: 0.2,
        };
        assert!(setup.validate().is_ok());

        let mut cfg = DesConfig::paper_small(SchemeKind::Mtcd, 0.5, 1).unwrap();
        cfg.adapt = Some(setup);
        assert!(cfg.validate().is_err());

        let mut cfg = DesConfig::paper_small(SchemeKind::Cmfsd { rho: 0.0 }, 0.5, 1).unwrap();
        cfg.adapt = Some(setup);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn aggregate_mode_constraints() {
        let mut cfg = DesConfig::paper_small(SchemeKind::Mtsd, 0.5, 1).unwrap();
        cfg.aggregate = true;
        assert!(cfg.validate().is_ok());

        cfg.exact_rates = true;
        assert!(cfg.validate().is_err(), "aggregate excludes exact_rates");

        let mut cfg = DesConfig::paper_small(SchemeKind::Cmfsd { rho: 0.5 }, 0.5, 1).unwrap();
        cfg.aggregate = true;
        cfg.adapt = Some(AdaptSetup {
            controller: AdaptConfig::default_for_mu(0.02),
            epoch: 10.0,
            cheater_fraction: 0.0,
        });
        assert!(cfg.validate().is_err(), "aggregate excludes Adapt");
        cfg.adapt = None;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn adapt_setup_validation() {
        let mut setup = AdaptSetup {
            controller: AdaptConfig::default_for_mu(0.02),
            epoch: 0.0,
            cheater_fraction: 0.2,
        };
        assert!(setup.validate().is_err());
        setup.epoch = 5.0;
        setup.cheater_fraction = 1.5;
        assert!(setup.validate().is_err());
    }
}
