//! The event loop: exact flow-level simulation with analytic advancement
//! between events.

use crate::adapt::assign_arrival_policy;
use crate::config::{DesConfig, OrderPolicy, SchemeKind};
use crate::observer::{SimOutcome, UserRecord};
use crate::peer::{Peer, Phase};
use crate::rate::{compute_rates, RateSnapshot};
use btfluid_numkit::dist::Exponential;
use btfluid_numkit::rng::{RngCore, Xoshiro256StarStar};
use btfluid_numkit::NumError;
use btfluid_workload::requests::{FileId, RequestSampler};

/// What happens next.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// Hard stop at `horizon + drain`.
    End,
    /// A new user enters.
    Arrival,
    /// Download (peer index, slot) completes.
    Completion(usize, usize),
    /// A seed deadline (per-file seed, virtual-seed linger, or whole-user
    /// departure) expires for the peer index.
    SeedExpiry(usize),
    /// Periodic Adapt observation.
    Epoch,
}

/// A configured, runnable simulation.
pub struct Simulation {
    cfg: DesConfig,
    rng_arrivals: Xoshiro256StarStar,
    rng_service: Xoshiro256StarStar,
    sampler: RequestSampler,
    gap: Exponential,
    gamma: Exponential,
    t: f64,
    peers: Vec<Peer>,
    next_arrival: Option<(f64, Vec<FileId>)>,
    next_epoch: Option<f64>,
    user_counter: u64,
    outcome: SimOutcome,
}

impl Simulation {
    /// Builds a simulation from a validated configuration.
    ///
    /// # Errors
    /// Propagates [`DesConfig::validate`] failures.
    pub fn new(cfg: DesConfig) -> Result<Self, NumError> {
        cfg.validate()?;
        let rng_arrivals = Xoshiro256StarStar::stream(cfg.seed, 0);
        let rng_service = Xoshiro256StarStar::stream(cfg.seed, 1);
        let sampler = RequestSampler::new(cfg.model);
        let gap = Exponential::new(cfg.model.lambda0())?;
        let gamma = Exponential::new(cfg.params.gamma())?;
        let k = cfg.model.k() as usize;
        let next_epoch = cfg.adapt.as_ref().map(|a| a.epoch);
        let mut sim = Self {
            cfg,
            rng_arrivals,
            rng_service,
            sampler,
            gap,
            gamma,
            t: 0.0,
            peers: Vec::new(),
            next_arrival: None,
            next_epoch,
            user_counter: 0,
            outcome: SimOutcome::new(k),
        };
        if sim.cfg.warm_start {
            sim.populate_from_fluid()?;
        }
        Ok(sim)
    }

    /// Seeds the initial population from the CMFSD fluid fixed point.
    ///
    /// Warm-start peers carry arrival time −1 so the warm-up cut always
    /// excludes them from the statistics.
    fn populate_from_fluid(&mut self) -> Result<(), NumError> {
        let SchemeKind::Cmfsd { rho } = self.cfg.scheme else {
            unreachable!("validated by DesConfig::validate");
        };
        let fluid =
            btfluid_core::cmfsd::Cmfsd::new(self.cfg.params, self.cfg.model.class_rates(), rho)?;
        let ss = fluid.steady_state()?;
        let k = self.cfg.model.k() as usize;
        for i in 1..=k {
            // Downloader stages.
            for j in 1..=i {
                let n = ss.stages[fluid.stage_index(i, j)].round() as usize;
                for _ in 0..n {
                    let mut peer = self.make_warm_peer(i, k);
                    // Stages 1..j−1 finished; stage j has uniform residual.
                    for pos in 0..j - 1 {
                        let slot = peer.order[pos];
                        peer.remaining[slot] = 0.0;
                        peer.completed_at[slot] = Some(0.0);
                    }
                    peer.cursor = j - 1;
                    let slot = peer.order[peer.cursor];
                    peer.remaining[slot] = self.rng_service.next_f64_open();
                    self.peers.push(peer);
                }
            }
            // Real seeds: y^i = λᵢ/γ.
            let n = ss.seeds[i - 1].round() as usize;
            for _ in 0..n {
                let mut peer = self.make_warm_peer(i, k);
                for slot in 0..i {
                    peer.remaining[slot] = 0.0;
                    peer.completed_at[slot] = Some(0.0);
                }
                peer.cursor = i;
                peer.phase = Phase::SeedingAll;
                peer.depart_at = Some(self.gamma.sample(&mut self.rng_service));
                self.peers.push(peer);
            }
        }
        Ok(())
    }

    /// Builds a warm-start peer of class `i` with a uniform random file set
    /// and order.
    fn make_warm_peer(&mut self, i: usize, k: usize) -> Peer {
        // Partial Fisher–Yates: pick i distinct files uniformly.
        let mut pool: Vec<FileId> = (0..k as FileId).collect();
        for idx in 0..i {
            let j = idx + self.rng_service.next_below((k - idx) as u64) as usize;
            pool.swap(idx, j);
        }
        let mut files: Vec<FileId> = pool[..i].to_vec();
        files.sort_unstable();
        let mut order: Vec<usize> = (0..i).collect();
        for idx in (1..i).rev() {
            let j = self.rng_service.next_below(idx as u64 + 1) as usize;
            order.swap(idx, j);
        }
        let mut peer = Peer::new(self.user_counter, -1.0, files, order, 1.0);
        self.user_counter += 1;
        assign_arrival_policy(
            &mut peer,
            self.cfg.scheme,
            self.cfg.adapt.as_ref(),
            &mut self.rng_service,
        );
        peer
    }

    /// Runs to completion and returns the outcome.
    pub fn run(mut self) -> SimOutcome {
        let end = self.cfg.horizon + self.cfg.drain;
        let trace = std::env::var_os("BTFLUID_DES_TRACE").is_some();
        let mut next_trace = 0.0;
        let mut trajectory = self.cfg.record_every.map(|_| {
            btfluid_numkit::series::TimeSeries::new(vec!["downloaders", "seeds"])
                .expect("two channels")
        });
        let mut next_record = 0.0;
        self.schedule_arrival();
        loop {
            if let (Some(series), Some(dt)) = (trajectory.as_mut(), self.cfg.record_every) {
                if self.t >= next_record {
                    let mut downloaders = 0usize;
                    let mut seeds = 0usize;
                    for p in &self.peers {
                        match p.phase {
                            Phase::Downloading => downloaders += 1,
                            Phase::SeedingFile(_) | Phase::SeedingAll => seeds += 1,
                            Phase::Departed => {}
                        }
                    }
                    series
                        .push(self.t, &[downloaders as f64, seeds as f64])
                        .expect("time is monotone");
                    while next_record <= self.t {
                        next_record += dt;
                    }
                }
            }
            if trace && self.t >= next_trace {
                let snapshot = compute_rates(
                    &self.peers,
                    self.cfg.scheme,
                    &self.cfg.params,
                    self.cfg.model.k() as usize,
                    self.cfg.origin_seeds,
                );
                let total: f64 = snapshot.downloads.iter().map(|d| d.rate).sum();
                let don: f64 = snapshot.donations.iter().sum();
                let zero = snapshot.downloads.iter().filter(|d| d.rate <= 0.0).count();
                let k = self.cfg.model.k() as usize;
                let mut demand = vec![0usize; k];
                for d in &snapshot.downloads {
                    demand[self.peers[d.peer_idx].files[d.slot] as usize] += 1;
                }
                let mut holders = vec![0usize; k];
                for p in &self.peers {
                    for s in p.finished_slots() {
                        holders[p.files[s] as usize] += 1;
                    }
                }
                eprintln!(
                    "[trace] t={:.0} peers={} downloads={} zero-rate={} total_rate={:.4} donations={:.4} demand={demand:?} holders={holders:?}",
                    self.t,
                    self.peers.len(),
                    snapshot.downloads.len(),
                    zero,
                    total,
                    don
                );
                next_trace = self.t + 500.0;
            }
            let snapshot = compute_rates(
                &self.peers,
                self.cfg.scheme,
                &self.cfg.params,
                self.cfg.model.k() as usize,
                self.cfg.origin_seeds,
            );
            let (t_next, event) = self.next_event(&snapshot, end);
            let dt = t_next - self.t;
            debug_assert!(dt >= -1e-9, "time went backwards: dt = {dt}");
            if dt > 0.0 {
                self.advance(dt.max(0.0), &snapshot);
            }
            self.t = t_next;
            match event {
                Event::End => break,
                Event::Arrival => self.handle_arrival(),
                Event::Completion(p, slot) => self.handle_completion(p, slot),
                Event::SeedExpiry(p) => self.handle_seed_expiry(p),
                Event::Epoch => self.handle_epoch(),
            }
        }
        // Whatever is still alive is censored (if it would have counted).
        let warmup = self.cfg.warmup;
        for p in &self.peers {
            if p.phase != Phase::Departed && p.arrival >= warmup {
                self.outcome.censored += 1;
                let remaining = p
                    .remaining
                    .iter()
                    .cloned()
                    .filter(|&r| r > 0.0)
                    .fold(0.0, f64::max);
                self.outcome.inflight.push(crate::observer::InflightInfo {
                    class: p.class(),
                    done: p.done_count(),
                    remaining,
                    arrival: p.arrival,
                });
            }
        }
        self.outcome.trajectory = trajectory;
        self.outcome
    }

    /// Finds the earliest pending event.
    fn next_event(&self, snapshot: &RateSnapshot, end: f64) -> (f64, Event) {
        let mut t_best = end;
        let mut best = Event::End;
        if let Some((ta, _)) = &self.next_arrival {
            if *ta < t_best {
                t_best = *ta;
                best = Event::Arrival;
            }
        }
        if let Some(te) = self.next_epoch {
            if te < t_best {
                t_best = te;
                best = Event::Epoch;
            }
        }
        for d in &snapshot.downloads {
            if d.rate > 0.0 {
                let tc = self.t + self.peers[d.peer_idx].remaining[d.slot] / d.rate;
                if tc < t_best {
                    t_best = tc;
                    best = Event::Completion(d.peer_idx, d.slot);
                }
            }
        }
        for (idx, peer) in self.peers.iter().enumerate() {
            if peer.phase == Phase::Departed {
                continue;
            }
            for su in peer.seed_until.iter().flatten() {
                if su.is_finite() && *su < t_best {
                    t_best = *su;
                    best = Event::SeedExpiry(idx);
                }
            }
            if let Some(da) = peer.depart_at {
                if da < t_best {
                    t_best = da;
                    best = Event::SeedExpiry(idx);
                }
            }
        }
        (t_best.max(self.t), best)
    }

    /// Advances all progress and accumulators by `dt` at constant rates.
    fn advance(&mut self, dt: f64, snapshot: &RateSnapshot) {
        // Download progress + virtual-seed receipts.
        let mut active = vec![false; self.peers.len()];
        for d in &snapshot.downloads {
            let peer = &mut self.peers[d.peer_idx];
            peer.remaining[d.slot] = (peer.remaining[d.slot] - d.rate * dt).max(0.0);
            peer.received_vs += d.vs_rate * dt;
            active[d.peer_idx] = true;
        }
        for (peer, (&don, &act)) in self
            .peers
            .iter_mut()
            .zip(snapshot.donations.iter().zip(&active))
        {
            peer.donated += don * dt;
            if act {
                peer.download_time_acc += dt;
            }
        }
        // Population integrals over the stationary window.
        let win_lo = self.t.max(self.cfg.warmup);
        let win_hi = (self.t + dt).min(self.cfg.horizon);
        if win_hi > win_lo {
            let k = self.outcome.k();
            let mut downloader_peers = vec![0usize; k];
            let mut download_pairs = vec![0usize; k];
            let mut seed_pairs = vec![0usize; k];
            for d in &snapshot.downloads {
                download_pairs[self.peers[d.peer_idx].class() - 1] += 1;
            }
            for peer in &self.peers {
                let c = peer.class() - 1;
                match peer.phase {
                    Phase::Downloading => downloader_peers[c] += 1,
                    Phase::SeedingFile(_) => seed_pairs[c] += 1,
                    Phase::SeedingAll => match self.cfg.scheme {
                        // MT schemes: one seed entity per lingering slot.
                        SchemeKind::Mtcd | SchemeKind::Mfcd => {
                            seed_pairs[c] += peer.seed_until.iter().flatten().count();
                        }
                        // CMFSD: the whole peer is one real seed.
                        _ => seed_pairs[c] += 1,
                    },
                    Phase::Departed => {}
                }
                // MTCD/MFCD peers seed finished slots while still
                // downloading others.
                if peer.phase == Phase::Downloading
                    && matches!(self.cfg.scheme, SchemeKind::Mtcd | SchemeKind::Mfcd)
                {
                    seed_pairs[c] += peer.seed_until.iter().flatten().count();
                }
            }
            self.outcome.population.accumulate(
                win_hi - win_lo,
                &downloader_peers,
                &download_pairs,
                &seed_pairs,
            );
        }
    }

    /// Draws the next *entering* arrival (Poisson visitors thinned by
    /// non-empty request sets), if it lands before the horizon.
    fn schedule_arrival(&mut self) {
        let mut t = self.next_arrival.take().map(|(ta, _)| ta).unwrap_or(self.t);
        loop {
            t += self.gap.sample(&mut self.rng_arrivals);
            if t >= self.cfg.horizon {
                self.next_arrival = None;
                return;
            }
            let files = self.sampler.sample_visitor(&mut self.rng_arrivals);
            if !files.is_empty() {
                self.next_arrival = Some((t, files));
                return;
            }
        }
    }

    fn handle_arrival(&mut self) {
        let (ta, files) = self
            .next_arrival
            .take()
            .expect("arrival event without a scheduled arrival");
        debug_assert!((ta - self.t).abs() < 1e-9);
        // Random download order (sequential schemes).
        let n = files.len();
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.rng_service.next_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let mut peer = Peer::new(self.user_counter, self.t, files, order, 1.0);
        self.user_counter += 1;
        assign_arrival_policy(
            &mut peer,
            self.cfg.scheme,
            self.cfg.adapt.as_ref(),
            &mut self.rng_service,
        );
        self.peers.push(peer);
        self.apply_order_policy(self.peers.len() - 1);
        self.outcome.arrivals += 1;
        // Re-arm from the consumed arrival's time.
        self.next_arrival = Some((ta, Vec::new()));
        self.schedule_arrival();
    }

    /// Counts holders (finished copies among present peers, plus origin
    /// seeds) of every file.
    fn holder_counts(&self) -> Vec<usize> {
        let k = self.cfg.model.k() as usize;
        let mut counts = vec![self.cfg.origin_seeds; k];
        for p in &self.peers {
            if p.phase == Phase::Departed {
                continue;
            }
            for s in 0..p.class() {
                if p.finished(s) {
                    counts[p.files[s] as usize] += 1;
                }
            }
        }
        counts
    }

    /// Under [`OrderPolicy::RarestFirst`], swaps the rarest unfinished file
    /// into the peer's next download position.
    fn apply_order_policy(&mut self, idx: usize) {
        if self.cfg.order_policy != OrderPolicy::RarestFirst
            || !self.cfg.scheme.is_sequential()
        {
            return;
        }
        let counts = self.holder_counts();
        let peer = &mut self.peers[idx];
        if peer.phase != Phase::Downloading || peer.cursor >= peer.class() {
            return;
        }
        let mut best: Vec<usize> = Vec::new();
        let mut best_count = usize::MAX;
        for pos in peer.cursor..peer.class() {
            let f = peer.files[peer.order[pos]] as usize;
            match counts[f].cmp(&best_count) {
                std::cmp::Ordering::Less => {
                    best_count = counts[f];
                    best.clear();
                    best.push(pos);
                }
                std::cmp::Ordering::Equal => best.push(pos),
                std::cmp::Ordering::Greater => {}
            }
        }
        let pick = best[self.rng_service.next_below(best.len() as u64) as usize];
        let cursor = peer.cursor;
        peer.order.swap(cursor, pick);
    }

    fn handle_completion(&mut self, idx: usize, slot: usize) {
        let t = self.t;
        let peer = &mut self.peers[idx];
        peer.remaining[slot] = 0.0;
        peer.completed_at[slot] = Some(t);
        match self.cfg.scheme {
            SchemeKind::Mtsd => {
                let dur = self.gamma.sample(&mut self.rng_service);
                peer.seed_duration[slot] = dur;
                peer.seed_until[slot] = Some(t + dur);
                peer.phase = Phase::SeedingFile(slot);
            }
            SchemeKind::Mtcd => {
                let dur = self.gamma.sample(&mut self.rng_service);
                peer.seed_duration[slot] = dur;
                peer.seed_until[slot] = Some(t + dur);
                if peer.all_done() {
                    peer.phase = Phase::SeedingAll;
                }
            }
            SchemeKind::Mfcd => {
                // Virtual seed persists until the user departs as a whole.
                peer.seed_until[slot] = Some(f64::INFINITY);
                if peer.all_done() {
                    let dur = self.gamma.sample(&mut self.rng_service);
                    peer.depart_at = Some(t + dur);
                    peer.phase = Phase::SeedingAll;
                }
            }
            SchemeKind::Cmfsd { .. } => {
                peer.cursor += 1;
                if peer.cursor >= peer.class() {
                    let dur = self.gamma.sample(&mut self.rng_service);
                    peer.depart_at = Some(t + dur);
                    peer.phase = Phase::SeedingAll;
                } else {
                    // While downloading continues, the (1−ρ)μ virtual seed
                    // serves the finished files demand-aware (see `rate`),
                    // and the next file follows the order policy.
                    self.apply_order_policy(idx);
                }
            }
        }
    }

    fn handle_seed_expiry(&mut self, idx: usize) {
        let t = self.t;
        let scheme = self.cfg.scheme;
        let peer = &mut self.peers[idx];
        match scheme {
            SchemeKind::Mtsd => {
                if let Phase::SeedingFile(slot) = peer.phase {
                    if peer.seed_until[slot].is_some_and(|su| su <= t + 1e-9) {
                        peer.seed_until[slot] = None;
                        peer.cursor += 1;
                        if peer.cursor < peer.class() {
                            peer.phase = Phase::Downloading;
                            self.apply_order_policy(idx);
                        } else {
                            self.depart(idx);
                        }
                    }
                }
            }
            SchemeKind::Mtcd => {
                for slot in 0..peer.class() {
                    if peer.seed_until[slot].is_some_and(|su| su <= t + 1e-9) {
                        peer.seed_until[slot] = None;
                    }
                }
                if peer.all_done() && peer.seed_until.iter().all(Option::is_none) {
                    self.depart(idx);
                }
            }
            SchemeKind::Mfcd | SchemeKind::Cmfsd { .. } => {
                if peer.depart_at.is_some_and(|da| da <= t + 1e-9) {
                    self.depart(idx);
                }
            }
        }
    }

    fn handle_epoch(&mut self) {
        let setup = self.cfg.adapt.expect("epoch event without adapt setup");
        for peer in &mut self.peers {
            if peer.phase == Phase::Downloading && peer.class() >= 2 {
                if let Some(ctrl) = peer.adapt.as_mut() {
                    // Δ in bandwidth units: give minus take, per unit time.
                    let delta = (peer.donated - peer.received_vs) / setup.epoch;
                    peer.rho = ctrl.observe(delta);
                }
            }
            peer.donated = 0.0;
            peer.received_vs = 0.0;
        }
        self.next_epoch = Some(self.next_epoch.expect("epoch scheduled") + setup.epoch);
    }

    /// Finalizes and removes a finished user.
    fn depart(&mut self, idx: usize) {
        let t = self.t;
        let peer = &mut self.peers[idx];
        peer.phase = Phase::Departed;
        let counted = peer.arrival >= self.cfg.warmup && peer.arrival < self.cfg.horizon;
        if counted {
            let online_fluid = match self.cfg.scheme {
                SchemeKind::Mtcd => {
                    // Per-virtual-peer mean: (completion − arrival) + own
                    // seed duration, averaged over the user's torrents.
                    let sum: f64 = (0..peer.class())
                        .map(|s| {
                            peer.completed_at[s].expect("departed ⇒ all complete") - peer.arrival
                                + peer.seed_duration[s]
                        })
                        .sum();
                    sum / peer.class() as f64
                }
                _ => t - peer.arrival,
            };
            let record = UserRecord {
                id: peer.id,
                class: peer.class(),
                arrival: peer.arrival,
                departure: t,
                download_span: peer.download_time_acc,
                online_fluid,
                final_rho: peer.rho,
                cheater: peer.cheater,
            };
            self.outcome.record(record);
        }
        self.peers.swap_remove(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesConfig;

    fn run(scheme: SchemeKind, p: f64, seed: u64) -> SimOutcome {
        let cfg = DesConfig::paper_small(scheme, p, seed).unwrap();
        Simulation::new(cfg).unwrap().run()
    }

    #[test]
    fn mtsd_matches_fluid_prediction() {
        // Fluid: download per file 60, online per file 80.
        let o = run(SchemeKind::Mtsd, 0.3, 42);
        assert!(o.records.len() > 200, "only {} records", o.records.len());
        let dl = o.avg_download_per_file().unwrap();
        let on = o.avg_online_per_file().unwrap();
        assert!((dl - 60.0).abs() < 6.0, "download/file = {dl}");
        assert!((on - 80.0).abs() < 7.0, "online/file = {on}");
    }

    #[test]
    fn mtcd_single_class_k1_matches_fluid() {
        // K = 1 forces class 1 only; MTCD degenerates to the single
        // torrent: download 60.
        let cfg = DesConfig {
            model: btfluid_workload::CorrelationModel::new(1, 0.9, 0.3).unwrap(),
            ..DesConfig::paper_small(SchemeKind::Mtcd, 0.9, 7).unwrap()
        };
        let o = Simulation::new(cfg).unwrap().run();
        assert!(o.classes[0].count() > 200);
        let dl = o.classes[0].download.mean();
        assert!((dl - 60.0).abs() < 6.0, "download = {dl}");
    }

    #[test]
    fn arrivals_accounted() {
        let o = run(SchemeKind::Mtsd, 0.5, 3);
        assert!(o.arrivals > 0);
        // Everything that arrived post-warm-up either finished or is
        // censored. records may also include pre-horizon arrivals only.
        assert!(o.records.len() + o.censored <= o.arrivals);
    }

    #[test]
    fn determinism_per_seed() {
        let a = run(SchemeKind::Cmfsd { rho: 0.3 }, 0.6, 11);
        let b = run(SchemeKind::Cmfsd { rho: 0.3 }, 0.6, 11);
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.id, rb.id);
            assert!((ra.online_fluid - rb.online_fluid).abs() < 1e-12);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(SchemeKind::Mtsd, 0.5, 1);
        let b = run(SchemeKind::Mtsd, 0.5, 2);
        assert_ne!(a.records.len(), 0);
        // Astronomically unlikely to match exactly.
        assert!(
            a.records.len() != b.records.len()
                || a.avg_online_per_file().unwrap() != b.avg_online_per_file().unwrap()
        );
    }

    #[test]
    fn cmfsd_rho_zero_beats_rho_one_at_high_p() {
        let fast = run(SchemeKind::Cmfsd { rho: 0.0 }, 0.9, 5);
        let slow = run(SchemeKind::Cmfsd { rho: 1.0 }, 0.9, 5);
        let f = fast.avg_online_per_file().unwrap();
        let s = slow.avg_online_per_file().unwrap();
        assert!(f < s, "ρ=0 ({f}) should beat ρ=1 ({s})");
    }

    #[test]
    fn mtsd_per_class_online_proportional_to_class() {
        // p = 0.2 gives classes 1-3 substantial mass.
        let o = run(SchemeKind::Mtsd, 0.2, 9);
        // Classes with decent support: compare class 3 vs class 1 online.
        let c1 = &o.classes[0];
        let c3 = &o.classes[2];
        if c1.count() > 30 && c3.count() > 30 {
            let ratio = c3.online.mean() / c1.online.mean();
            assert!((ratio - 3.0).abs() < 0.6, "ratio = {ratio}");
        } else {
            panic!(
                "not enough support: c1 = {}, c3 = {}",
                c1.count(),
                c3.count()
            );
        }
    }

    #[test]
    fn population_tracking_nonzero() {
        let o = run(SchemeKind::Mtsd, 0.5, 13);
        assert!(o.population.window > 0.0);
        let total: f64 = (1..=10).map(|i| o.population.avg_downloader_peers(i)).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn censoring_is_rare_with_ample_drain() {
        let o = run(SchemeKind::Mtsd, 0.3, 17);
        assert_eq!(o.censored, 0, "drain should let everyone finish");
    }

    #[test]
    fn trajectory_recording() {
        let mut cfg = DesConfig::paper_small(SchemeKind::Mtsd, 0.4, 23).unwrap();
        cfg.horizon = 1500.0;
        cfg.warmup = 300.0;
        cfg.drain = 1500.0;
        cfg.record_every = Some(50.0);
        let o = Simulation::new(cfg).unwrap().run();
        let series = o.trajectory.expect("recording enabled");
        assert!(series.len() > 20, "rows = {}", series.len());
        assert_eq!(series.names(), &["downloaders", "seeds"]);
        // Populations eventually become positive and the series is in time
        // order (enforced by TimeSeries::push).
        let downloaders = series.channel(0);
        assert!(downloaders.iter().any(|&x| x > 0.0));
        // The stationary level (between warm-up and the horizon — after
        // the horizon arrivals stop and the population drains) should be
        // near the fluid prediction x_total = λ₀·K·p·T = 60.
        let stationary: Vec<f64> = series
            .times()
            .iter()
            .zip(&downloaders)
            .filter(|(&t, _)| (600.0..=1500.0).contains(&t))
            .map(|(_, &x)| x)
            .collect();
        assert!(stationary.len() > 10);
        let mean: f64 = stationary.iter().sum::<f64>() / stationary.len() as f64;
        let expect = 0.25 * 10.0 * 0.4 * 60.0;
        assert!(
            (mean - expect).abs() / expect < 0.35,
            "stationary mean {mean} vs fluid {expect}"
        );
    }

    #[test]
    fn trajectory_disabled_by_default() {
        let o = run(SchemeKind::Mtsd, 0.3, 29);
        assert!(o.trajectory.is_none());
    }

    #[test]
    fn record_every_validation() {
        let mut cfg = DesConfig::paper_small(SchemeKind::Mtsd, 0.4, 1).unwrap();
        cfg.record_every = Some(0.0);
        assert!(cfg.validate().is_err());
        cfg.record_every = Some(f64::NAN);
        assert!(cfg.validate().is_err());
    }
}
