//! The event loop: exact flow-level simulation with analytic advancement
//! between events.
//!
//! ## Event-loop architecture (post-rework)
//!
//! The seed engine did O(peers) work per event three times over: a full
//! [`compute_rates`] rebuild, a linear scan of every pending deadline to
//! find the next event, and an eager settlement of every active download.
//! This engine replaces all three with incremental structures:
//!
//! * **Rates** live in a [`RateCache`]: per-subtorrent aggregates
//!   (`weight`, `pool_real`, `pool_virtual`) plus ordered member lists,
//!   recomputed only for subtorrents an event actually touched. Download
//!   progress is settled lazily ([`Peer::settle_slot`]) exactly when a
//!   rate changes, so integration stays piecewise-exact.
//! * **Event selection** uses an [`EventQueue`] (binary heap with
//!   stamp-based lazy invalidation) instead of scanning; completion
//!   deadlines are (re)pushed only for downloads whose rate changed.
//! * **Peers** live in a slab with a free list: departure leaves a
//!   tombstone (`Phase::Departed`) whose slot is recycled by a later
//!   arrival, keeping slab indices stable for heap entries and member
//!   lists. Population integrals and the recorded trajectory come from
//!   per-class counters maintained by ±contribution at each touch.
//!
//! Setting [`DesConfig::exact_rates`] forces a full aggregate/rate
//! recompute on every event through the *same* code path (the cache's
//! `force` flag). Because every recompute re-sums an ordered member list,
//! a forced recompute of an unchanged aggregate reproduces its bits, so
//! both modes yield bit-identical trajectories — asserted by the
//! `equivalence` integration test over all four schemes.

use crate::adapt::assign_arrival_policy;
use crate::agg::AggCache;
use crate::config::{DesConfig, OrderPolicy, SchemeKind};
use crate::error::{DesError, InvariantKind};
use crate::event_queue::{Entry, EventQueue, RANK_AGG, RANK_COMPLETION, RANK_EXPIRY};
use crate::hook::ScenarioHook;
use crate::observer::{AbortRecord, SimOutcome, UserRecord};
use crate::peer::{Peer, Phase};
use crate::rate::compute_rates;
use crate::rate_cache::RateCache;
use crate::snapshot::{self, Snapshot, SnapshotError};
use btfluid_numkit::dist::Exponential;
use btfluid_numkit::rng::{RngCore, Xoshiro256StarStar};
use btfluid_numkit::series::TimeSeries;
use btfluid_numkit::NumError;
use btfluid_telemetry::profiler::{Phase as ProfPhase, ProfileTable, Profiler};
use btfluid_telemetry::{diag, Counters, FlightKind, FlightRecord, Level, Probe, Sample};
use btfluid_workload::requests::{random_order, uniform_subset, FileId, RequestSampler};

/// What happens next.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// Hard stop at `horizon + drain`.
    End,
    /// A new user enters.
    Arrival,
    /// Download (peer index, slot) completes.
    Completion(usize, usize),
    /// A seed deadline (per-file seed, virtual-seed linger, or whole-user
    /// departure) expires for the peer index.
    SeedExpiry(usize),
    /// Periodic Adapt observation.
    Epoch,
    /// A thinned abort candidate fired (scenario hook only).
    Abort,
    /// A scenario boundary: origin-seed count or tracker state changes.
    Control,
}

/// Stable wire code for an event kind, the `a` payload of an
/// [`FlightKind::EventPop`] flight record (DESIGN.md §17).
fn event_code(event: &Event) -> u64 {
    match event {
        Event::End => 0,
        Event::Arrival => 1,
        Event::Completion(..) => 2,
        Event::SeedExpiry(_) => 3,
        Event::Epoch => 4,
        Event::Abort => 5,
        Event::Control => 6,
    }
}

/// One Exp(1) draw from the open-interval uniform: the hazard target of
/// an aggregate completion group.
fn exp1(rng: &mut Xoshiro256StarStar) -> f64 {
    -rng.next_f64_open().ln()
}

/// A configured, runnable simulation.
pub struct Simulation {
    cfg: DesConfig,
    rng_arrivals: Xoshiro256StarStar,
    rng_service: Xoshiro256StarStar,
    sampler: RequestSampler,
    gap: Exponential,
    gamma: Exponential,
    t: f64,
    /// Peer slab: departed peers leave tombstones, recycled via `free`.
    peers: Vec<Peer>,
    free: Vec<usize>,
    next_arrival: Option<(f64, Vec<FileId>)>,
    next_epoch: Option<f64>,
    user_counter: u64,
    outcome: SimOutcome,
    cache: RateCache,
    /// Class-aggregated scheduling state ([`DesConfig::aggregate`]); the
    /// per-peer `cache` stays allocated but inert while this is `Some`.
    agg: Option<AggCache>,
    /// Dedicated RNG stream for aggregate-mode draws (stream 3): member
    /// sampling and Exp(1) hazard targets. Never drawn in per-peer mode,
    /// so per-peer trajectories are unchanged by its existence.
    rng_agg: Xoshiro256StarStar,
    /// Scratch buffer for changed-group ids (aggregate mode).
    agg_changed: Vec<u32>,
    queue: EventQueue,
    /// Monotone stamp source for queue entries (0 means "no entry").
    next_stamp: u64,
    /// Number of live (non-stale) queue entries, for compaction.
    live: usize,
    /// Finished copies per file among present peers, plus origin seeds
    /// (rarest-first order policy).
    holders: Vec<usize>,
    // Per-class population counters, maintained by ±contribution.
    dl_peers: Vec<usize>,
    dl_pairs: Vec<usize>,
    seed_pairs: Vec<usize>,
    traj_downloaders: usize,
    traj_seeds: usize,
    changed_buf: Vec<(u32, u32)>,
    // Scenario-hook state. All of it is inert (`None` / unused) for
    // stationary runs, so the hot path pays only `Option` checks.
    hook: Option<Box<dyn ScenarioHook>>,
    /// Dedicated RNG stream for scenario events (stream 2), so attaching a
    /// hook never perturbs the arrival or service streams' draws.
    rng_scenario: Xoshiro256StarStar,
    /// Candidate gap sampler at the arrival majorizing rate.
    hook_gap: Option<Exponential>,
    /// Cached [`ScenarioHook::abort_rate_bound`].
    abort_bound: f64,
    /// Raw thinning clock: the last arrival *candidate* time, which can
    /// run ahead of the (possibly tracker-deferred) scheduled arrival.
    ///
    /// Under a replaying hook ([`ScenarioHook::replays`]) this field is
    /// repurposed as the trace cursor: the integer index of the next
    /// recorded arrival to consume, stored exactly (indices stay far
    /// below 2⁵³). Reusing the field keeps the snapshot format unchanged,
    /// so a mid-replay checkpoint resumes the trace bit-identically.
    arrival_clock: f64,
    next_abort: Option<f64>,
    next_control: Option<f64>,
    /// Origin-seed count currently in force (scenario outages move it off
    /// `cfg.origin_seeds`).
    origin_now: usize,
    // Run-in-progress state, formerly locals of `run()`; promoted to fields
    // so a run can be suspended between steps and checkpointed.
    /// Whether the pre-loop initialization (first arrival draw, initial
    /// rate build, abort arming) has happened.
    started: bool,
    /// Population trajectory being recorded (when `record_every` is set).
    trajectory: Option<TimeSeries>,
    /// Next trajectory sampling time.
    next_record: f64,
    /// Debug tracing (`BTFLUID_DES_TRACE`); env-derived, excluded from
    /// snapshots — stderr output is not part of the bit-identity contract.
    trace: bool,
    next_trace: f64,
    /// Hot-loop counters, maintained unconditionally (integer increments
    /// only) and snapshotted so resumed runs continue the same series.
    counters: Counters,
    /// Attached observation probe. Like `trace`, probes are engine-local
    /// observers excluded from snapshots; they receive borrowed state and
    /// can never perturb the run.
    probe: Option<Box<dyn Probe>>,
    /// Probe sampling cadence in simulated time (`0.0` = sampler off);
    /// set by [`Self::attach_probe`] from [`Probe::sample_every`].
    sample_every: f64,
    /// Next sampler firing time (snapshotted, so a resumed traced run
    /// emits the exact sample tail of an uninterrupted one).
    next_sample: f64,
    /// Mean Adapt Δ observed at the most recent epoch (telemetry only;
    /// feeds nothing back into the simulation).
    last_delta: f64,
    /// Cached [`Probe::wants_flight`] of the attached probe, so the
    /// disarmed flight recorder costs one boolean test per event. Like
    /// the probe itself, excluded from snapshots.
    flight: bool,
    /// Optional self-profiler (scoped phase timers). Wall-clock only —
    /// excluded from snapshots, observes without perturbing.
    profiler: Option<Profiler>,
}

impl Simulation {
    /// Builds a simulation from a validated configuration.
    ///
    /// # Errors
    /// Propagates [`DesConfig::validate`] failures.
    pub fn new(cfg: DesConfig) -> Result<Self, NumError> {
        cfg.validate()?;
        let rng_arrivals = Xoshiro256StarStar::stream(cfg.seed, 0);
        let rng_service = Xoshiro256StarStar::stream(cfg.seed, 1);
        let rng_scenario = Xoshiro256StarStar::stream(cfg.seed, 2);
        let sampler = RequestSampler::new(cfg.model);
        let gap = Exponential::new(cfg.model.lambda0())?;
        let gamma = Exponential::new(cfg.params.gamma())?;
        let k = cfg.model.k() as usize;
        let next_epoch = cfg.adapt.as_ref().map(|a| a.epoch);
        let cache = RateCache::new(k, cfg.scheme, &cfg.params, cfg.origin_seeds);
        let mut rng_agg = Xoshiro256StarStar::stream(cfg.seed, 3);
        let agg = if cfg.aggregate {
            let mut a = AggCache::new(k, cfg.scheme, &cfg.params, cfg.origin_seeds);
            // Eager Exp(1) target draws for every group: a fixed 2·K²
            // draws at t = 0, so the stream phase is independent of the
            // order groups first become non-empty.
            for g in 0..a.n_groups() as u32 {
                a.set_initial_target(g, exp1(&mut rng_agg));
            }
            Some(a)
        } else {
            None
        };
        let holders = vec![cfg.origin_seeds; k];
        let origin_now = cfg.origin_seeds;
        let mut sim = Self {
            cfg,
            rng_arrivals,
            rng_service,
            sampler,
            gap,
            gamma,
            t: 0.0,
            peers: Vec::new(),
            free: Vec::new(),
            next_arrival: None,
            next_epoch,
            user_counter: 0,
            outcome: SimOutcome::new(k),
            cache,
            agg,
            rng_agg,
            agg_changed: Vec::new(),
            queue: EventQueue::new(),
            next_stamp: 1,
            live: 0,
            holders,
            dl_peers: vec![0; k],
            dl_pairs: vec![0; k],
            seed_pairs: vec![0; k],
            traj_downloaders: 0,
            traj_seeds: 0,
            changed_buf: Vec::new(),
            hook: None,
            rng_scenario,
            hook_gap: None,
            abort_bound: 0.0,
            arrival_clock: 0.0,
            next_abort: None,
            next_control: None,
            origin_now,
            started: false,
            trajectory: None,
            next_record: 0.0,
            trace: std::env::var_os("BTFLUID_DES_TRACE").is_some(),
            next_trace: 0.0,
            counters: Counters::default(),
            probe: None,
            sample_every: 0.0,
            next_sample: 0.0,
            last_delta: 0.0,
            flight: false,
            profiler: None,
        };
        if sim.cfg.warm_start {
            sim.populate_from_fluid()?;
            sim.cache_grow(sim.peers.len());
            for idx in 0..sim.peers.len() {
                sim.cache_register(idx);
                sim.add_counters(idx);
                for s in 0..sim.peers[idx].class() {
                    if sim.peers[idx].finished(s) {
                        sim.holders[sim.peers[idx].files[s] as usize] += 1;
                    }
                }
                sim.reschedule_expiry(idx);
            }
        }
        Ok(sim)
    }

    /// Builds a simulation with a scenario hook attached.
    ///
    /// # Errors
    /// Propagates [`DesConfig::validate`] failures and rejects hooks whose
    /// majorizing bounds are unusable (see [`Self::attach_hook`]).
    pub fn with_hook(cfg: DesConfig, hook: Box<dyn ScenarioHook>) -> Result<Self, NumError> {
        let mut sim = Self::new(cfg)?;
        sim.attach_hook(hook)?;
        Ok(sim)
    }

    /// Attaches a scenario hook before the run starts.
    ///
    /// The hook's state at `t = 0` is applied immediately (origin-seed
    /// count), the first control boundary is scheduled, and arrivals switch
    /// to thinned non-homogeneous sampling. Scenario randomness draws from
    /// its own stream (index 2), so the arrival and service streams remain
    /// those of the stationary run with the same seed.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when
    /// [`ScenarioHook::arrival_rate_bound`] is not finite and positive or
    /// [`ScenarioHook::abort_rate_bound`] is negative or non-finite.
    pub fn attach_hook(&mut self, hook: Box<dyn ScenarioHook>) -> Result<(), NumError> {
        let bound = hook.arrival_rate_bound();
        self.hook_gap = Some(Exponential::new(bound)?);
        let abort_bound = hook.abort_rate_bound();
        if !(abort_bound >= 0.0) || !abort_bound.is_finite() {
            return Err(NumError::InvalidInput {
                what: "Simulation::attach_hook",
                detail: format!("abort_rate_bound must be finite and ≥ 0, got {abort_bound}"),
            });
        }
        self.abort_bound = abort_bound;
        let origin = hook.origin_seeds(0.0);
        self.next_control = hook.next_boundary(0.0);
        self.hook = Some(hook);
        self.apply_origin(origin);
        Ok(())
    }

    /// Attaches an observation probe.
    ///
    /// Probes are engine-local observers, excluded from snapshots and
    /// config digests the same way the `BTFLUID_DES_TRACE` flag is —
    /// attach one to a restored simulation to continue a traced run. The
    /// sampler cadence comes from [`Probe::sample_every`]; on a fresh run
    /// the first sample fires at `t = 0`, on a restored run at the
    /// snapshotted phase.
    pub fn attach_probe(&mut self, probe: Box<dyn Probe>) {
        self.sample_every = probe.sample_every();
        self.flight = probe.wants_flight();
        self.probe = Some(probe);
    }

    /// Builder-style [`Self::attach_probe`].
    #[must_use]
    pub fn with_probe(mut self, probe: Box<dyn Probe>) -> Self {
        self.attach_probe(probe);
        self
    }

    /// The engine's cumulative hot-loop counters.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Records one checkpoint write's cost. Called by checkpointing
    /// drivers (not the engine itself, which never touches disk), so
    /// manual [`Self::snapshot`] callers see identical counters whether
    /// or not they persist the result.
    pub fn note_snapshot(&mut self, bytes: u64, micros: u64) {
        self.counters.snapshots_taken += 1;
        self.counters.snapshot_bytes += bytes;
        self.counters.snapshot_micros += micros;
    }

    /// Runs the full `checked`-mode invariant audit on demand (rate
    /// finiteness, queue/live consistency, bitwise rate-cache agreement),
    /// regardless of [`DesConfig::checked`].
    ///
    /// # Errors
    /// Returns [`DesError::Invariant`] describing the first violation.
    pub fn audit(&self) -> Result<(), DesError> {
        self.validate_invariants()
    }

    /// Test-oracle hook: deliberately corrupts the cached donation rate of
    /// one live peer so the next [`Self::audit`] must report
    /// [`crate::InvariantKind::RateCacheDrift`]. Returns `false` when no
    /// live peer exists yet (nothing to corrupt). Used by the self-check
    /// oracle's `--expect-fail` mutation canary to prove the audit has
    /// teeth; never called by production paths.
    #[doc(hidden)]
    pub fn corrupt_rate_cache_for_test(&mut self) -> bool {
        for p in &mut self.peers {
            if p.phase != Phase::Departed {
                p.donation_rate += 0.25;
                return true;
            }
        }
        false
    }

    /// Forwards a named span timing to the attached probe (no-op without
    /// one).
    pub fn emit_span(&mut self, name: &str, micros: u64) {
        if let Some(probe) = self.probe.as_mut() {
            probe.on_span(name, micros);
        }
    }

    /// Forwards a flight record to the attached probe when it asked for
    /// them at attach time. Public so checkpointing drivers can record
    /// checkpoint cycles into the same ring the engine feeds.
    pub fn emit_flight(&mut self, kind: FlightKind, a: u64, b: u64) {
        if !self.flight {
            return;
        }
        let rec = FlightRecord {
            t: self.t,
            events: self.outcome.events,
            kind,
            a,
            b,
        };
        if let Some(probe) = self.probe.as_mut() {
            probe.on_flight(&rec);
        }
    }

    /// Enables the self-profiler for the rest of the run. Wall-clock
    /// observation only: results never feed back into the simulation.
    pub fn enable_profiler(&mut self, profiler: Profiler) {
        self.profiler = Some(profiler);
    }

    /// Adds externally-timed work to a profiler phase (no-op when no
    /// profiler is enabled) — the checkpoint driver reports snapshot
    /// encode cost here.
    pub fn profiler_add(&mut self, phase: ProfPhase, ns: u64) {
        if let Some(p) = self.profiler.as_mut() {
            p.add(phase, ns);
        }
    }

    /// The profiler's aggregated per-phase table, when one is enabled.
    pub fn profiler_table(&self) -> Option<ProfileTable> {
        self.profiler.as_ref().map(|p| p.table(self.outcome.events))
    }

    #[inline]
    fn prof_enter(&mut self, phase: ProfPhase) {
        if let Some(p) = self.profiler.as_mut() {
            p.enter(phase);
        }
    }

    #[inline]
    fn prof_leave(&mut self, phase: ProfPhase) {
        if let Some(p) = self.profiler.as_mut() {
            p.leave(phase);
        }
    }

    /// Builds a [`Sample`] of the current aggregates and hands it to the
    /// attached probe.
    fn emit_sample(&mut self) {
        let Some(probe) = self.probe.as_mut() else {
            return;
        };
        // Mean individual ρ over present peers: an O(slab) walk, paid
        // only at sampling cadence, never per event.
        let mut rho_sum = 0.0;
        let mut present = 0u64;
        for p in &self.peers {
            if p.phase != Phase::Departed {
                rho_sum += p.rho;
                present += 1;
            }
        }
        let (weight, pool_real, pool_virtual) = match self.agg.as_ref() {
            Some(agg) => (agg.weight(), agg.pool_real(), agg.pool_virtual()),
            None => (
                self.cache.weight(),
                self.cache.pool_real(),
                self.cache.pool_virtual(),
            ),
        };
        probe.on_sample(&Sample {
            t: self.t,
            events: self.outcome.events,
            downloaders: &self.dl_peers,
            download_pairs: &self.dl_pairs,
            seed_pairs: &self.seed_pairs,
            weight,
            pool_real,
            pool_virtual,
            rho_mean: if present > 0 {
                rho_sum / present as f64
            } else {
                0.0
            },
            delta_mean: self.last_delta,
            counters: self.counters,
        });
    }

    /// Seeds the initial population from the CMFSD fluid fixed point.
    ///
    /// Warm-start peers carry arrival time −1 so the warm-up cut always
    /// excludes them from the statistics.
    fn populate_from_fluid(&mut self) -> Result<(), NumError> {
        let SchemeKind::Cmfsd { rho } = self.cfg.scheme else {
            unreachable!("validated by DesConfig::validate");
        };
        let fluid =
            btfluid_core::cmfsd::Cmfsd::new(self.cfg.params, self.cfg.model.class_rates(), rho)?;
        let ss = fluid.steady_state()?;
        let k = self.cfg.model.k() as usize;
        for i in 1..=k {
            // Downloader stages.
            for j in 1..=i {
                let n = ss.stages[fluid.stage_index(i, j)].round() as usize;
                for _ in 0..n {
                    let mut peer = self.make_warm_peer(i, k);
                    // Stages 1..j−1 finished; stage j has uniform residual.
                    for pos in 0..j - 1 {
                        let slot = peer.order[pos];
                        peer.remaining[slot] = 0.0;
                        peer.completed_at[slot] = Some(0.0);
                    }
                    peer.cursor = j - 1;
                    let slot = peer.order[peer.cursor];
                    peer.remaining[slot] = self.rng_service.next_f64_open();
                    self.peers.push(peer);
                }
            }
            // Real seeds: y^i = λᵢ/γ.
            let n = ss.seeds[i - 1].round() as usize;
            for _ in 0..n {
                let mut peer = self.make_warm_peer(i, k);
                for slot in 0..i {
                    peer.remaining[slot] = 0.0;
                    peer.completed_at[slot] = Some(0.0);
                }
                peer.cursor = i;
                peer.phase = Phase::SeedingAll;
                peer.depart_at = Some(self.gamma.sample(&mut self.rng_service));
                self.peers.push(peer);
            }
        }
        Ok(())
    }

    /// Builds a warm-start peer of class `i` with a uniform random file set
    /// and order.
    fn make_warm_peer(&mut self, i: usize, k: usize) -> Peer {
        let files = uniform_subset(&mut self.rng_service, k, i);
        let order = random_order(&mut self.rng_service, i);
        let mut peer = Peer::new(self.user_counter, -1.0, files, order, 1.0);
        self.user_counter += 1;
        assign_arrival_policy(
            &mut peer,
            self.cfg.scheme,
            self.cfg.adapt.as_ref(),
            &mut self.rng_service,
        );
        peer
    }

    /// Runs to completion and returns the outcome.
    ///
    /// # Panics
    /// Panics when a `checked`-mode invariant audit fails; use
    /// [`Self::try_run`] to receive the violation as a [`DesError`].
    pub fn run(self) -> SimOutcome {
        self.try_run()
            .expect("invariant violation (checked mode); call try_run to handle it")
    }

    /// Runs to completion, surfacing `checked`-mode invariant violations as
    /// typed errors.
    ///
    /// # Errors
    /// Returns [`DesError::Invariant`] when [`DesConfig::checked`] is set
    /// and a per-event audit fails.
    pub fn try_run(mut self) -> Result<SimOutcome, DesError> {
        while self.step()? {}
        Ok(self.finish())
    }

    /// Dispatches the next event and returns whether the run can continue:
    /// `Ok(true)` after a regular event, `Ok(false)` once the hard stop at
    /// `horizon + drain` has been reached (call [`Self::finish`]).
    ///
    /// Driving `step()` in a loop and then calling [`Self::finish`] is
    /// *exactly* [`Self::run`] — the checkpointing harness interleaves
    /// [`Self::snapshot`] calls between steps without perturbing the
    /// trajectory.
    ///
    /// # Errors
    /// Returns [`DesError::Invariant`] when [`DesConfig::checked`] is set
    /// and the post-event audit fails. Stepping past the end (after
    /// `Ok(false)`) keeps returning `Ok(false)` without advancing.
    pub fn step(&mut self) -> Result<bool, DesError> {
        let end = self.cfg.horizon + self.cfg.drain;
        if !self.started {
            self.started = true;
            self.trajectory = self
                .cfg
                .record_every
                .map(|_| TimeSeries::new(vec!["downloaders", "seeds"]).expect("two channels"));
            self.schedule_arrival();
            // Initial build: everything registered so far is dirty.
            self.refresh_rates(self.cfg.exact_rates);
            if self.hook.is_some() {
                self.rearm_abort();
            }
        }
        if self.t >= end {
            return Ok(false);
        }
        if let (Some(series), Some(dt)) = (self.trajectory.as_mut(), self.cfg.record_every) {
            if self.t >= self.next_record {
                series
                    .push(
                        self.t,
                        &[self.traj_downloaders as f64, self.traj_seeds as f64],
                    )
                    .expect("time is monotone");
                while self.next_record <= self.t {
                    self.next_record += dt;
                }
            }
        }
        if self.trace && self.t >= self.next_trace {
            self.emit_trace();
        }
        if self.sample_every > 0.0 && self.t >= self.next_sample {
            self.prof_enter(ProfPhase::SinkWrite);
            self.emit_sample();
            self.prof_leave(ProfPhase::SinkWrite);
            while self.next_sample <= self.t {
                self.next_sample += self.sample_every;
            }
        }
        let queue_len = self.queue.len() as u64;
        if queue_len > self.counters.heap_peak {
            self.counters.heap_peak = queue_len;
        }
        // Counter snapshot for the flight recorder: the record points
        // reuse deltas of counters the engine maintains anyway, so the
        // armed cost is a few integer subtractions per event and the
        // disarmed cost is this one boolean test.
        let flight_before = if self.flight {
            Some((
                self.counters.rate_recomputes,
                self.counters.agg_rate_updates,
                self.counters.agg_samples,
            ))
        } else {
            None
        };
        self.prof_enter(ProfPhase::HeapOps);
        let (t_next, event) = self.next_event(end);
        self.prof_leave(ProfPhase::HeapOps);
        self.outcome.events += 1;
        let dt = t_next - self.t;
        debug_assert!(dt >= -1e-9, "time went backwards: dt = {dt}");
        // Population integrals over the stationary window, from the
        // per-class counters (state is constant on [t, t_next)).
        // Step intervals are disjoint half-open [t, t_next) slices, so
        // clipping each to [warmup, horizon] under the strict `>` guard
        // partitions the window exactly once: an event landing exactly
        // at `warmup` yields a zero-width (skipped) left slice and its
        // successor starts at `warmup` — the boundary instant is never
        // double-counted (regression-tested in
        // `tests/telemetry_props.rs::population_window_boundary_exact`).
        let win_lo = self.t.max(self.cfg.warmup);
        let win_hi = t_next.min(self.cfg.horizon);
        if win_hi > win_lo {
            self.outcome.population.accumulate(
                win_hi - win_lo,
                &self.dl_peers,
                &self.dl_pairs,
                &self.seed_pairs,
            );
        }
        self.t = t_next;
        self.prof_enter(ProfPhase::HookDispatch);
        match event {
            Event::End => {
                self.prof_leave(ProfPhase::HookDispatch);
                return Ok(false);
            }
            Event::Arrival => self.handle_arrival(),
            Event::Completion(p, slot) => self.handle_completion(p, slot),
            Event::SeedExpiry(p) => self.handle_seed_expiry(p),
            Event::Epoch => self.handle_epoch(),
            Event::Abort => self.handle_abort(),
            Event::Control => self.handle_control(),
        }
        self.prof_leave(ProfPhase::HookDispatch);
        // Epochs may rewrite every ρ, so both modes recompute fully.
        let force = self.cfg.exact_rates || matches!(event, Event::Epoch);
        self.prof_enter(ProfPhase::RateMaint);
        self.refresh_rates(force);
        self.prof_leave(ProfPhase::RateMaint);
        if let Some((recomputes, agg_updates, agg_samples)) = flight_before {
            self.emit_flight(FlightKind::EventPop, event_code(&event), 0);
            let ds = self.counters.agg_samples - agg_samples;
            if ds > 0 {
                self.emit_flight(FlightKind::AggResample, ds, 0);
            }
            let dr = self.counters.rate_recomputes - recomputes;
            let da = self.counters.agg_rate_updates - agg_updates;
            if dr > 0 || da > 0 {
                self.emit_flight(FlightKind::RateRecompute, dr, da);
            }
        }
        if self.hook.is_some() {
            // The downloader count may have changed; re-sample the
            // abort candidate (exact by memorylessness — the thinned
            // race is exponential at `bound · N` between events).
            self.rearm_abort();
        }
        if self.cfg.checked {
            self.validate_invariants()?;
        }
        Ok(true)
    }

    /// Closes out a stepped run: settles every surviving peer at the stop
    /// time, records censoring diagnostics, and returns the outcome. Must
    /// only be called after [`Self::step`] returned `Ok(false)` — finishing
    /// early yields an outcome for a truncated horizon.
    pub fn finish(mut self) -> SimOutcome {
        // Settle everyone still alive so censored diagnostics reflect the
        // hard stop.
        let t = self.t;
        for peer in &mut self.peers {
            if peer.phase == Phase::Departed {
                continue;
            }
            for s in 0..peer.class() {
                peer.settle_slot(s, t);
            }
            peer.settle_donation(t);
        }
        // Whatever is still alive is censored (if it would have counted).
        let warmup = self.cfg.warmup;
        for p in &self.peers {
            if p.phase != Phase::Departed && p.arrival >= warmup {
                self.outcome.censored += 1;
                let remaining = p
                    .remaining
                    .iter()
                    .cloned()
                    .filter(|&r| r > 0.0)
                    .fold(0.0, f64::max);
                self.outcome.inflight.push(crate::observer::InflightInfo {
                    class: p.class(),
                    done: p.done_count(),
                    remaining,
                    arrival: p.arrival,
                });
            }
        }
        self.outcome.trajectory = self.trajectory.take();
        if let Some(probe) = self.probe.as_mut() {
            probe.on_finish(t, &self.counters);
        }
        self.outcome
    }

    /// Current simulated time (between steps).
    pub fn sim_time(&self) -> f64 {
        self.t
    }

    /// Events dispatched so far.
    pub fn events(&self) -> u64 {
        self.outcome.events
    }

    /// Live downloading-peer counts per class (index `class − 1`).
    pub fn class_downloaders(&self) -> &[usize] {
        &self.dl_peers
    }

    /// The peer slab. Contains departed tombstones — filter on
    /// [`Phase::Departed`] before aggregating.
    pub fn peers(&self) -> &[Peer] {
        &self.peers
    }

    /// Seeds a not-yet-started, empty simulation with an externally sampled
    /// population (the hybrid engine's fluid→DES handoff).
    ///
    /// The caller supplies fully initialized [`Peer`]s — file sets, order,
    /// progress, phase, seed timers — drawn on its *own* RNG stream; the
    /// engine only assigns ids and registers the peers with its caches and
    /// counters, so none of the engine streams advance and a run seeded this
    /// way stays bit-reproducible. Injected peers should carry `arrival`
    /// −1.0 (like warm-start peers) so the statistics window never counts
    /// them as arrivals.
    ///
    /// # Errors
    /// Rejects simulations that have already started or hold peers, and
    /// peers whose file ids fall outside `0..K` or whose parallel vectors
    /// disagree with the file count.
    pub fn inject_peers(&mut self, mut incoming: Vec<Peer>) -> Result<(), NumError> {
        if self.started || !self.peers.is_empty() {
            return Err(NumError::InvalidInput {
                what: "Simulation::inject_peers",
                detail: "peers can only be injected into a fresh, empty simulation".into(),
            });
        }
        let k = self.cfg.model.k() as usize;
        for peer in &mut incoming {
            let n = peer.files.len();
            let shape_ok = n >= 1
                && peer.remaining.len() == n
                && peer.order.len() == n
                && peer.seed_until.len() == n
                && peer.files.iter().all(|&f| (f as usize) < k);
            if !shape_ok {
                return Err(NumError::InvalidInput {
                    what: "Simulation::inject_peers",
                    detail: format!("malformed injected peer (files {:?}, K {k})", peer.files),
                });
            }
            peer.id = self.user_counter;
            self.user_counter += 1;
        }
        self.peers = incoming;
        self.cache_grow(self.peers.len());
        for idx in 0..self.peers.len() {
            self.cache_register(idx);
            self.add_counters(idx);
            for s in 0..self.peers[idx].class() {
                if self.peers[idx].finished(s) {
                    self.holders[self.peers[idx].files[s] as usize] += 1;
                }
            }
            self.reschedule_expiry(idx);
        }
        Ok(())
    }

    /// Captures the run's full mutable state between steps.
    ///
    /// Restoring the snapshot (into a fresh process, after a crash, …) and
    /// stepping on is bit-identical to never having stopped — see
    /// [`crate::snapshot`] for the contract and what is rebuilt rather than
    /// serialized.
    pub fn snapshot(&self) -> Snapshot {
        let mut peers = self.peers.clone();
        let adapt_states = peers
            .iter_mut()
            .map(|p| p.adapt.take().map(|c| c.raw_state()))
            .collect();
        let agg = self.agg.as_ref().map(|a| snapshot::AggSnap {
            rng_agg: self.rng_agg.state(),
            groups: (0..a.n_groups() as u32)
                .map(|g| {
                    let (target, acc, anchor) = a.group_hazard(g);
                    snapshot::GroupSnap {
                        target,
                        acc,
                        anchor,
                        deadline: a.group_deadline(g),
                        stamp: a.group_stamp(g),
                        members: (0..a.group_len(g)).map(|i| a.group_member(g, i)).collect(),
                    }
                })
                .collect(),
        });
        Snapshot {
            config_digest: snapshot::config_digest(&self.cfg),
            hook_fp: snapshot::hook_fingerprint(self.hook.as_deref()),
            t: self.t,
            started: self.started,
            rng_states: [
                self.rng_arrivals.state(),
                self.rng_service.state(),
                self.rng_scenario.state(),
            ],
            user_counter: self.user_counter,
            next_stamp: self.next_stamp,
            arrival_clock: self.arrival_clock,
            origin_now: self.origin_now as u64,
            next_arrival: self.next_arrival.clone(),
            next_epoch: self.next_epoch,
            next_abort: self.next_abort,
            next_control: self.next_control,
            free: self.free.iter().map(|&i| i as u64).collect(),
            peers,
            adapt_states,
            outcome: self.outcome.clone(),
            trajectory: self.trajectory.clone(),
            next_record: self.next_record,
            counters: self.counters,
            next_sample: self.next_sample,
            last_delta: self.last_delta,
            agg,
        }
    }

    /// Reconstructs a suspended hookless run from a snapshot.
    ///
    /// # Errors
    /// [`DesError::Snapshot`] when the config does not match the one the
    /// snapshot was taken under, the snapshot was taken with a hook
    /// attached, or the payload is inconsistent; [`DesError::Invariant`]
    /// when the rebuilt rate cache fails to reproduce the serialized rates
    /// bitwise.
    pub fn restore(cfg: DesConfig, snap: &Snapshot) -> Result<Self, DesError> {
        Self::restore_inner(cfg, snap, None)
    }

    /// Reconstructs a suspended scenario run from a snapshot, re-attaching
    /// its hook.
    ///
    /// The hook must fingerprint ([`crate::snapshot::hook_fingerprint`])
    /// to the value embedded in the snapshot — hooks are pure functions of
    /// `t`, so an equal fingerprint means the re-attached hook replays the
    /// original scenario exactly.
    ///
    /// # Errors
    /// As [`Self::restore`], plus [`SnapshotError::HookMismatch`] for a
    /// hook whose state digests differently.
    pub fn restore_with_hook(
        cfg: DesConfig,
        snap: &Snapshot,
        hook: Box<dyn ScenarioHook>,
    ) -> Result<Self, DesError> {
        Self::restore_inner(cfg, snap, Some(hook))
    }

    fn restore_inner(
        cfg: DesConfig,
        snap: &Snapshot,
        hook: Option<Box<dyn ScenarioHook>>,
    ) -> Result<Self, DesError> {
        cfg.validate()?;
        if snapshot::config_digest(&cfg) != snap.config_digest {
            return Err(SnapshotError::ConfigMismatch.into());
        }
        if snapshot::hook_fingerprint(hook.as_deref()) != snap.hook_fp {
            return Err(SnapshotError::HookMismatch.into());
        }
        for s in &snap.rng_states {
            if *s == [0; 4] {
                return Err(SnapshotError::Corrupt("all-zero RNG stream state".into()).into());
            }
        }
        let k = cfg.model.k() as usize;
        let mut peers = snap.peers.clone();
        for (p, st) in peers.iter_mut().zip(&snap.adapt_states) {
            if let Some((rho, above, below)) = st {
                let setup = cfg.adapt.as_ref().ok_or_else(|| {
                    SnapshotError::Corrupt(
                        "peer carries an Adapt controller but the config has none".into(),
                    )
                })?;
                p.adapt = Some(btfluid_core::adapt::AdaptController::from_raw_state(
                    setup.controller,
                    *rho,
                    *above,
                    *below,
                )?);
            }
        }
        if snap.outcome.k() != k {
            return Err(SnapshotError::Corrupt(format!(
                "outcome tracks {} classes, config has {k}",
                snap.outcome.k()
            ))
            .into());
        }
        let origin_now = snap.origin_now as usize;
        if cfg.aggregate != snap.agg.is_some() {
            return Err(SnapshotError::Corrupt(
                "aggregate section does not match the config's aggregate flag".into(),
            )
            .into());
        }
        let rng_agg = match &snap.agg {
            Some(a) => {
                if a.rng_agg == [0; 4] {
                    return Err(SnapshotError::Corrupt("all-zero RNG stream state".into()).into());
                }
                Xoshiro256StarStar::from_state(a.rng_agg)
            }
            // Per-peer runs never draw from this stream; seed it exactly
            // as a fresh construction would.
            None => Xoshiro256StarStar::stream(cfg.seed, 3),
        };
        let agg = if cfg.aggregate {
            let mut a = AggCache::new(k, cfg.scheme, &cfg.params, cfg.origin_seeds);
            a.set_origin_seeds(origin_now);
            Some(a)
        } else {
            None
        };
        let mut sim = Self {
            rng_arrivals: Xoshiro256StarStar::from_state(snap.rng_states[0]),
            rng_service: Xoshiro256StarStar::from_state(snap.rng_states[1]),
            rng_scenario: Xoshiro256StarStar::from_state(snap.rng_states[2]),
            sampler: RequestSampler::new(cfg.model),
            gap: Exponential::new(cfg.model.lambda0())?,
            gamma: Exponential::new(cfg.params.gamma())?,
            t: snap.t,
            peers,
            free: snap.free.iter().map(|&i| i as usize).collect(),
            next_arrival: snap.next_arrival.clone(),
            next_epoch: snap.next_epoch,
            user_counter: snap.user_counter,
            outcome: snap.outcome.clone(),
            cache: RateCache::new(k, cfg.scheme, &cfg.params, cfg.origin_seeds),
            agg,
            rng_agg,
            agg_changed: Vec::new(),
            queue: EventQueue::new(),
            next_stamp: snap.next_stamp,
            live: 0,
            holders: vec![origin_now; k],
            dl_peers: vec![0; k],
            dl_pairs: vec![0; k],
            seed_pairs: vec![0; k],
            traj_downloaders: 0,
            traj_seeds: 0,
            changed_buf: Vec::new(),
            hook: None,
            hook_gap: None,
            abort_bound: 0.0,
            arrival_clock: snap.arrival_clock,
            next_abort: snap.next_abort,
            next_control: snap.next_control,
            origin_now,
            started: snap.started,
            trajectory: snap.trajectory.clone(),
            next_record: snap.next_record,
            trace: std::env::var_os("BTFLUID_DES_TRACE").is_some(),
            next_trace: snap.t,
            counters: snap.counters,
            probe: None,
            sample_every: 0.0,
            next_sample: snap.next_sample,
            last_delta: snap.last_delta,
            flight: false,
            profiler: None,
            cfg,
        };
        if let Some(h) = hook {
            // attach_hook minus apply_origin/next_boundary: the snapshot
            // already carries the origin count in force and the scheduled
            // control boundary.
            let bound = h.arrival_rate_bound();
            sim.hook_gap = Some(Exponential::new(bound)?);
            let abort_bound = h.abort_rate_bound();
            if !(abort_bound >= 0.0) || !abort_bound.is_finite() {
                return Err(NumError::InvalidInput {
                    what: "Simulation::restore_with_hook",
                    detail: format!("abort_rate_bound must be finite and ≥ 0, got {abort_bound}"),
                }
                .into());
            }
            sim.abort_bound = abort_bound;
            sim.hook = Some(h);
        }
        // Rebuild the derived structures: cache memberships, population
        // counters, holder counts, and the event heap (from the per-peer
        // stamp bookkeeping, preserving stamp values).
        let n_slab = sim.peers.len();
        sim.cache_grow(n_slab);
        if sim.agg.is_none() {
            sim.cache.set_origin_seeds(origin_now);
        }
        let aggregate = sim.agg.is_some();
        for idx in 0..sim.peers.len() {
            if sim.peers[idx].phase == Phase::Departed {
                let p = &sim.peers[idx];
                if p.expiry_stamp != 0 || p.comp_stamp.iter().any(|&s| s != 0) {
                    return Err(SnapshotError::Corrupt(format!(
                        "departed peer {idx} still holds an armed stamp"
                    ))
                    .into());
                }
                continue;
            }
            sim.cache_register(idx);
            sim.add_counters(idx);
            for s in 0..sim.peers[idx].class() {
                if sim.peers[idx].finished(s) {
                    sim.holders[sim.peers[idx].files[s] as usize] += 1;
                }
            }
            let peer = &sim.peers[idx];
            if aggregate && peer.comp_stamp.iter().any(|&s| s != 0) {
                return Err(SnapshotError::Corrupt(format!(
                    "peer {idx}: per-peer completion armed in an aggregate snapshot"
                ))
                .into());
            }
            for s in 0..peer.class() {
                if peer.comp_stamp[s] == 0 {
                    continue;
                }
                if !peer.comp_time[s].is_finite() {
                    return Err(SnapshotError::Corrupt(format!(
                        "peer {idx} slot {s}: armed completion at {}",
                        peer.comp_time[s]
                    ))
                    .into());
                }
                sim.queue.push(Entry {
                    time: peer.comp_time[s],
                    rank: RANK_COMPLETION,
                    peer: idx as u32,
                    slot: s as u32,
                    stamp: peer.comp_stamp[s],
                });
                sim.live += 1;
            }
            if peer.expiry_stamp != 0 {
                let mut deadline = f64::INFINITY;
                for su in peer.seed_until.iter().flatten() {
                    if su.is_finite() {
                        deadline = deadline.min(*su);
                    }
                }
                if let Some(da) = peer.depart_at {
                    deadline = deadline.min(da);
                }
                if !deadline.is_finite() {
                    return Err(SnapshotError::Corrupt(format!(
                        "peer {idx}: armed expiry with no finite deadline"
                    ))
                    .into());
                }
                sim.queue.push(Entry {
                    time: deadline,
                    rank: RANK_EXPIRY,
                    peer: idx as u32,
                    slot: 0,
                    stamp: peer.expiry_stamp,
                });
                sim.live += 1;
            }
        }
        let t = sim.t;
        if let Some(snap_agg) = snap.agg.as_ref() {
            // Aggregate rebuild: recompute group rates from the registered
            // memberships, then install the serialized sampling order and
            // hazard state. The registration order above generally differs
            // from the live order (members move under swap_remove), so the
            // member lists are overwritten — after verifying they hold the
            // same multiset.
            {
                let agg = sim.agg.as_mut().expect("aggregate snapshot section");
                let mut changed = Vec::new();
                agg.refresh(t, true, &mut changed);
                let _ = agg.take_stats();
                if snap_agg.groups.len() != agg.n_groups() {
                    return Err(SnapshotError::Corrupt(format!(
                        "snapshot carries {} groups, config implies {}",
                        snap_agg.groups.len(),
                        agg.n_groups()
                    ))
                    .into());
                }
                for (gi, gs) in snap_agg.groups.iter().enumerate() {
                    let g = gi as u32;
                    agg.install_members(g, &gs.members)
                        .map_err(SnapshotError::Corrupt)?;
                    agg.install_hazard(g, gs.target, gs.acc, gs.anchor, gs.deadline, gs.stamp);
                }
            }
            // Every armed group must satisfy the hazard identity
            // `deadline = anchor + (target − acc) / rate` bitwise against
            // the *rebuilt* rate — the aggregate analogue of the per-peer
            // no-op-refresh check below: a mismatch means the snapshot and
            // the cache's resummation contract disagree.
            let agg = sim.agg.as_ref().expect("aggregate snapshot section");
            for (gi, gs) in snap_agg.groups.iter().enumerate() {
                let g = gi as u32;
                if gs.stamp == 0 {
                    continue;
                }
                if !gs.deadline.is_finite() {
                    return Err(SnapshotError::Corrupt(format!(
                        "group {g}: armed aggregate entry at {}",
                        gs.deadline
                    ))
                    .into());
                }
                let expect = gs.anchor + (gs.target - gs.acc) / agg.group_rate(g);
                if expect.to_bits() != gs.deadline.to_bits() {
                    return Err(DesError::Invariant {
                        kind: InvariantKind::RateCacheDrift,
                        t,
                        detail: format!(
                            "restore: group {g} deadline {} rebuilt as {expect}",
                            gs.deadline
                        ),
                    });
                }
                sim.queue.push(Entry {
                    time: gs.deadline,
                    rank: RANK_AGG,
                    peer: g,
                    slot: 0,
                    stamp: gs.stamp,
                });
                sim.live += 1;
            }
            return Ok(sim);
        }
        // The rebuild refresh must be a bitwise no-op: every recomputed
        // rate has to reproduce the serialized value. Anything else means
        // the snapshot and the cache's resummation contract disagree.
        let mut changed = Vec::new();
        sim.cache.refresh(&mut sim.peers, t, false, &mut changed);
        // The rebuild refresh is restore machinery, not simulated work:
        // drop its cache statistics so a resumed run's counters match an
        // uninterrupted one's.
        let _ = sim.cache.take_stats();
        if !changed.is_empty() {
            return Err(DesError::Invariant {
                kind: InvariantKind::RateCacheDrift,
                t,
                detail: format!(
                    "restore: {} download rates changed during cache rebuild",
                    changed.len()
                ),
            });
        }
        for (idx, (now, was)) in sim.peers.iter().zip(&snap.peers).enumerate() {
            if now.donation_rate.to_bits() != was.donation_rate.to_bits() {
                return Err(DesError::Invariant {
                    kind: InvariantKind::RateCacheDrift,
                    t,
                    detail: format!(
                        "restore: peer {idx} donation rate {} rebuilt as {}",
                        was.donation_rate, now.donation_rate
                    ),
                });
            }
        }
        Ok(sim)
    }

    /// One `BTFLUID_DES_TRACE` stderr line (debug aid, not part of any
    /// bit-identity contract). Routed through `diag!` at [`Level::Debug`],
    /// so the CLI's `--quiet` silences it even with the env var set.
    fn emit_trace(&mut self) {
        let snapshot = compute_rates(
            &self.peers,
            self.cfg.scheme,
            &self.cfg.params,
            self.cfg.model.k() as usize,
            self.origin_now,
        );
        let total: f64 = snapshot.downloads.iter().map(|d| d.rate).sum();
        let don: f64 = snapshot.donations.iter().sum();
        let zero = snapshot.downloads.iter().filter(|d| d.rate <= 0.0).count();
        let k = self.cfg.model.k() as usize;
        let mut demand = vec![0usize; k];
        for d in &snapshot.downloads {
            demand[self.peers[d.peer_idx].files[d.slot] as usize] += 1;
        }
        let mut holders = vec![0usize; k];
        for p in &self.peers {
            if p.phase == Phase::Departed {
                continue;
            }
            for s in p.finished_slots() {
                holders[p.files[s] as usize] += 1;
            }
        }
        diag!(
            Level::Debug,
            "[trace] t={:.0} peers={} downloads={} zero-rate={} total_rate={:.4} donations={:.4} demand={demand:?} holders={holders:?}",
            self.t,
            self.peers.len() - self.free.len(),
            snapshot.downloads.len(),
            zero,
            total,
            don
        );
        self.next_trace = self.t + 500.0;
    }

    /// `checked`-mode audit: rate finiteness, queue/live consistency, and
    /// bitwise agreement of the incremental rate cache with a from-scratch
    /// recompute. O(peers) per call.
    fn validate_invariants(&self) -> Result<(), DesError> {
        let violation = |kind: InvariantKind, detail: String| {
            Err(DesError::Invariant {
                kind,
                t: self.t,
                detail,
            })
        };
        let mut armed = 0usize;
        for (idx, p) in self.peers.iter().enumerate() {
            if p.phase == Phase::Departed {
                // Tombstones must hold no armed deadlines.
                if p.expiry_stamp != 0 || p.comp_stamp.iter().any(|&s| s != 0) {
                    return violation(
                        InvariantKind::QueueInconsistency,
                        format!("departed peer {idx} still holds an armed stamp"),
                    );
                }
                continue;
            }
            armed += p.comp_stamp.iter().filter(|&&s| s != 0).count();
            armed += usize::from(p.expiry_stamp != 0);
            for s in 0..p.class() {
                let checks = [
                    ("rate", p.rate[s]),
                    ("vs_rate", p.vs_rate[s]),
                    ("remaining", p.remaining[s]),
                    ("donation_rate", p.donation_rate),
                ];
                for (what, v) in checks {
                    if !v.is_finite() || v < 0.0 {
                        return violation(
                            InvariantKind::NonFiniteRate,
                            format!("peer {idx} slot {s}: {what} = {v}"),
                        );
                    }
                }
            }
        }
        if let Some(agg) = self.agg.as_ref() {
            // Aggregate mode: completions are armed per group, not per
            // (peer, slot), and the per-peer rate fields must stay at their
            // untouched zeros — the group cache owns all service rates.
            for (idx, p) in self.peers.iter().enumerate() {
                if p.phase == Phase::Departed {
                    continue;
                }
                if p.comp_stamp.iter().any(|&s| s != 0) {
                    return violation(
                        InvariantKind::QueueInconsistency,
                        format!("peer {idx}: per-peer completion armed in aggregate mode"),
                    );
                }
                if p.rate.iter().any(|&r| r != 0.0)
                    || p.vs_rate.iter().any(|&r| r != 0.0)
                    || p.donation_rate != 0.0
                {
                    return violation(
                        InvariantKind::RateCacheDrift,
                        format!("peer {idx}: per-peer rates populated in aggregate mode"),
                    );
                }
            }
            armed += (0..agg.n_groups() as u32)
                .filter(|&g| agg.group_stamp(g) != 0)
                .count();
            if armed != self.live {
                return violation(
                    InvariantKind::QueueInconsistency,
                    format!("live counter {} vs {armed} armed stamps", self.live),
                );
            }
            // Group rates and integer aggregates vs. a from-scratch rebuild.
            return agg
                .audit(&self.peers)
                .map_err(|detail| DesError::Invariant {
                    kind: InvariantKind::RateCacheDrift,
                    t: self.t,
                    detail,
                });
        }
        if armed != self.live {
            return violation(
                InvariantKind::QueueInconsistency,
                format!("live counter {} vs {armed} armed stamps", self.live),
            );
        }
        // Full recompute vs. the incrementally maintained per-peer rates.
        let fresh = compute_rates(
            &self.peers,
            self.cfg.scheme,
            &self.cfg.params,
            self.cfg.model.k() as usize,
            self.origin_now,
        );
        for d in &fresh.downloads {
            let p = &self.peers[d.peer_idx];
            if p.rate[d.slot].to_bits() != d.rate.to_bits()
                || p.vs_rate[d.slot].to_bits() != d.vs_rate.to_bits()
            {
                return violation(
                    InvariantKind::RateCacheDrift,
                    format!(
                        "peer {} slot {}: cached ({}, {}) vs fresh ({}, {})",
                        d.peer_idx, d.slot, p.rate[d.slot], p.vs_rate[d.slot], d.rate, d.vs_rate
                    ),
                );
            }
        }
        for (idx, p) in self.peers.iter().enumerate() {
            if p.phase == Phase::Departed {
                continue;
            }
            if p.donation_rate.to_bits() != fresh.donations[idx].to_bits() {
                return violation(
                    InvariantKind::RateCacheDrift,
                    format!(
                        "peer {idx}: cached donation {} vs fresh {}",
                        p.donation_rate, fresh.donations[idx]
                    ),
                );
            }
        }
        Ok(())
    }

    /// Finds the earliest pending event: arrival and epoch are single
    /// registers; completions and expiries come from the heap, discarding
    /// stale entries from its top.
    fn next_event(&mut self, end: f64) -> (f64, Event) {
        let mut t_best = end;
        let mut best = Event::End;
        if let Some((ta, _)) = &self.next_arrival {
            if *ta < t_best {
                t_best = *ta;
                best = Event::Arrival;
            }
        }
        if let Some(te) = self.next_epoch {
            if te < t_best {
                t_best = te;
                best = Event::Epoch;
            }
        }
        if let Some(tc) = self.next_control {
            if tc < t_best {
                t_best = tc;
                best = Event::Control;
            }
        }
        if let Some(ta) = self.next_abort {
            if ta < t_best {
                t_best = ta;
                best = Event::Abort;
            }
        }
        while let Some(e) = self.queue.peek() {
            if !self.entry_is_live(&e) {
                self.queue.pop();
                self.counters.stale_discards += 1;
                continue;
            }
            if e.rank == RANK_COMPLETION {
                // A slowdown since the push only recorded the later
                // deadline; reinsert the entry at its true time.
                let due = self.peers[e.peer as usize].comp_time[e.slot as usize];
                if e.time < due {
                    self.queue.pop();
                    self.queue.push(Entry { time: due, ..e });
                    continue;
                }
            } else if e.rank == RANK_AGG {
                // Same lazy-later correction, keyed on the group's hazard
                // deadline rather than a per-peer comp_time.
                let due = self
                    .agg
                    .as_ref()
                    .expect("RANK_AGG entry outside aggregate mode")
                    .group_deadline(e.peer);
                if e.time < due {
                    self.queue.pop();
                    self.queue.push(Entry { time: due, ..e });
                    continue;
                }
            }
            if e.time < t_best {
                self.queue.pop();
                self.counters.events_popped += 1;
                self.live -= 1;
                if e.rank == RANK_AGG {
                    // Aggregate completion: the group's total hazard fired;
                    // only now decide *which* member finished. Canonical draw
                    // order — member index first, replacement Exp(1) target
                    // second — is part of the reproducibility contract.
                    if let Some(p) = self.profiler.as_mut() {
                        p.enter(ProfPhase::MemberSample);
                    }
                    let agg = self.agg.as_mut().expect("agg entry without cache");
                    let n = agg.group_len(e.peer);
                    debug_assert!(n > 0, "armed aggregate group with no members");
                    let i = self.rng_agg.next_below(n as u64) as usize;
                    let (p, s) = agg.group_member(e.peer, i);
                    let target = exp1(&mut self.rng_agg);
                    agg.on_pop(e.peer, target, e.time);
                    self.counters.agg_samples += 1;
                    best = Event::Completion(p as usize, s as usize);
                    if let Some(p) = self.profiler.as_mut() {
                        p.leave(ProfPhase::MemberSample);
                    }
                } else {
                    let peer = &mut self.peers[e.peer as usize];
                    if e.rank == RANK_COMPLETION {
                        peer.comp_stamp[e.slot as usize] = 0;
                        best = Event::Completion(e.peer as usize, e.slot as usize);
                    } else {
                        peer.expiry_stamp = 0;
                        best = Event::SeedExpiry(e.peer as usize);
                    }
                }
                t_best = e.time;
            }
            break;
        }
        (t_best.max(self.t), best)
    }

    /// Runs the cache refresh, then (re)schedules completion deadlines for
    /// every download whose rate changed and compacts the heap when stale
    /// entries dominate.
    fn refresh_rates(&mut self, force: bool) {
        if self.agg.is_some() {
            return self.refresh_rates_agg(force);
        }
        let mut changed = std::mem::take(&mut self.changed_buf);
        self.cache
            .refresh(&mut self.peers, self.t, force, &mut changed);
        let (recomputes, clean) = self.cache.take_stats();
        self.counters.rate_recomputes += recomputes;
        self.counters.rate_clean_hits += clean;
        for &(p, s) in &changed {
            let (pi, si) = (p as usize, s as usize);
            let peer = &mut self.peers[pi];
            if !(peer.rate[si] > 0.0 && peer.remaining[si] > 0.0) {
                if peer.comp_stamp[si] != 0 {
                    peer.comp_stamp[si] = 0;
                    self.live -= 1;
                }
                continue;
            }
            let time = self.t + peer.remaining[si] / peer.rate[si];
            if peer.comp_stamp[si] != 0 && time >= peer.comp_time[si] {
                // Deadline unchanged or moved later: record it and let
                // `next_event` correct the (too early) heap entry lazily —
                // this skips a heap push for every slowdown, the common
                // case when an arrival dilutes a subtorrent's pools.
                peer.comp_time[si] = time;
                continue;
            }
            if peer.comp_stamp[si] == 0 {
                self.live += 1;
            }
            let stamp = self.next_stamp;
            self.next_stamp += 1;
            peer.comp_stamp[si] = stamp;
            peer.comp_time[si] = time;
            self.queue.push(Entry {
                time,
                rank: RANK_COMPLETION,
                peer: p,
                slot: s,
                stamp,
            });
        }
        changed.clear();
        self.changed_buf = changed;
        self.compact_queue();
    }

    /// Aggregate-mode counterpart of [`Self::refresh_rates`]: refreshes the
    /// class-group cache and (re)arms one hazard deadline per changed group
    /// instead of one per (peer, slot). The lazy-later trick carries over
    /// unchanged — a deadline that only moved later is recorded on the group
    /// and corrected when the stale heap entry surfaces.
    fn refresh_rates_agg(&mut self, force: bool) {
        let mut changed = std::mem::take(&mut self.agg_changed);
        let agg = self.agg.as_mut().expect("refresh_rates_agg without cache");
        agg.refresh(self.t, force, &mut changed);
        let (updates, clean) = agg.take_stats();
        self.counters.agg_rate_updates += updates;
        self.counters.rate_clean_hits += clean;
        for &g in &changed {
            let grp = agg.group_mut(g);
            let armed = grp.stamp != 0;
            if grp.rate > 0.0 && !grp.peers.is_empty() {
                let time = grp.anchor + (grp.target - grp.acc) / grp.rate;
                if armed && time >= grp.deadline {
                    grp.deadline = time;
                    continue;
                }
                if !armed {
                    self.live += 1;
                }
                let stamp = self.next_stamp;
                self.next_stamp += 1;
                grp.stamp = stamp;
                grp.deadline = time;
                self.queue.push(Entry {
                    time,
                    rank: RANK_AGG,
                    peer: g,
                    slot: 0,
                    stamp,
                });
            } else if armed {
                grp.stamp = 0;
                grp.deadline = f64::INFINITY;
                self.live -= 1;
            }
        }
        changed.clear();
        self.agg_changed = changed;
        self.compact_queue();
    }

    /// Drops stale entries when they dominate the heap.
    fn compact_queue(&mut self) {
        if self.queue.len() > 256 && self.queue.len() > 4 * self.live {
            for e in self.queue.drain() {
                if self.entry_is_live(&e) {
                    self.queue.push(e);
                }
            }
        }
    }

    /// Whether a heap entry still refers to a pending deadline. Stamps are
    /// globally unique and zeroed on invalidation, so a stale entry can
    /// never match — but its slot index may exceed the class of a peer
    /// that has since recycled the slab position, hence the bounds guard.
    fn entry_is_live(&self, e: &Entry) -> bool {
        match e.rank {
            RANK_AGG => self
                .agg
                .as_ref()
                .is_some_and(|a| a.group_stamp(e.peer) == e.stamp),
            RANK_COMPLETION => {
                self.peers[e.peer as usize].comp_stamp.get(e.slot as usize) == Some(&e.stamp)
            }
            _ => self.peers[e.peer as usize].expiry_stamp == e.stamp,
        }
    }

    /// Routes a peer registration to the active rate structure.
    fn cache_register(&mut self, idx: usize) {
        if let Some(agg) = self.agg.as_mut() {
            agg.register(idx, &self.peers);
        } else {
            self.cache.register(idx, &self.peers);
        }
    }

    /// Routes a peer deregistration to the active rate structure.
    fn cache_deregister(&mut self, idx: usize) {
        if let Some(agg) = self.agg.as_mut() {
            agg.deregister(idx, &self.peers);
        } else {
            self.cache.deregister(idx, &self.peers);
        }
    }

    /// Grows the active rate structure's per-peer bookkeeping.
    fn cache_grow(&mut self, n: usize) {
        if let Some(agg) = self.agg.as_mut() {
            agg.grow(n);
        } else {
            self.cache.grow(n);
        }
    }

    /// Begins a touch: settles the peer's accruals at `t`, zeroes its
    /// cached rates, invalidates its queue entries, removes its counter
    /// contributions and cache memberships. Returns whether the peer was
    /// downloading (for the active-time transition in [`Self::touch_end`]).
    fn touch_begin(&mut self, idx: usize) -> bool {
        self.sub_counters(idx);
        let t = self.t;
        let peer = &mut self.peers[idx];
        for s in 0..peer.class() {
            peer.settle_slot(s, t);
            peer.rate[s] = 0.0;
            peer.vs_rate[s] = 0.0;
            if peer.comp_stamp[s] != 0 {
                peer.comp_stamp[s] = 0;
                self.live -= 1;
            }
        }
        peer.settle_donation(t);
        peer.donation_rate = 0.0;
        if peer.expiry_stamp != 0 {
            peer.expiry_stamp = 0;
            self.live -= 1;
        }
        let was_downloading = peer.phase == Phase::Downloading;
        self.cache_deregister(idx);
        was_downloading
    }

    /// Ends a touch: re-registers the (mutated) peer, restores its counter
    /// contributions, tracks the downloading-phase transition for
    /// [`Peer::download_time_acc`], and reschedules its expiry deadline.
    fn touch_end(&mut self, idx: usize, was_downloading: bool) {
        // A departed tombstone has no memberships and its slab slot may be
        // recycled; leave it deregistered.
        if self.peers[idx].phase != Phase::Departed {
            self.cache_register(idx);
        }
        self.add_counters(idx);
        let t = self.t;
        let peer = &mut self.peers[idx];
        let now = peer.phase == Phase::Downloading;
        if was_downloading && !now {
            peer.download_time_acc += t - peer.active_since;
        } else if !was_downloading && now {
            peer.active_since = t;
        }
        self.reschedule_expiry(idx);
    }

    /// Pushes a fresh expiry entry at the peer's earliest finite seed or
    /// departure deadline (its previous entry was invalidated by
    /// [`Self::touch_begin`]).
    fn reschedule_expiry(&mut self, idx: usize) {
        let peer = &mut self.peers[idx];
        if peer.phase == Phase::Departed {
            return;
        }
        let mut deadline = f64::INFINITY;
        for su in peer.seed_until.iter().flatten() {
            if su.is_finite() {
                deadline = deadline.min(*su);
            }
        }
        if let Some(da) = peer.depart_at {
            deadline = deadline.min(da);
        }
        if deadline.is_finite() {
            let stamp = self.next_stamp;
            self.next_stamp += 1;
            peer.expiry_stamp = stamp;
            self.live += 1;
            self.queue.push(Entry {
                time: deadline,
                rank: RANK_EXPIRY,
                peer: idx as u32,
                slot: 0,
                stamp,
            });
        }
    }

    /// The peer's current contribution to the per-class counters:
    /// `(class index, downloader peers, download pairs, seed pairs,
    /// trajectory downloaders, trajectory seeds)`.
    fn contribution(&self, idx: usize) -> (usize, usize, usize, usize, usize, usize) {
        let peer = &self.peers[idx];
        let c = peer.class() - 1;
        let concurrent = matches!(self.cfg.scheme, SchemeKind::Mtcd | SchemeKind::Mfcd);
        let (dl_peer, pairs, traj_dl) = if peer.phase == Phase::Downloading {
            let pairs = if concurrent {
                peer.class() - peer.done_count()
            } else {
                1
            };
            (1, pairs, 1)
        } else {
            (0, 0, 0)
        };
        let lingering = peer.seed_until.iter().flatten().count();
        let seeds = match peer.phase {
            Phase::SeedingFile(_) => 1,
            Phase::SeedingAll => {
                if concurrent {
                    lingering
                } else {
                    1
                }
            }
            Phase::Downloading => {
                if concurrent {
                    lingering
                } else {
                    0
                }
            }
            Phase::Departed => 0,
        };
        let traj_seed = matches!(peer.phase, Phase::SeedingFile(_) | Phase::SeedingAll) as usize;
        (c, dl_peer, pairs, seeds, traj_dl, traj_seed)
    }

    fn add_counters(&mut self, idx: usize) {
        let (c, dl_peer, pairs, seeds, traj_dl, traj_seed) = self.contribution(idx);
        self.dl_peers[c] += dl_peer;
        self.dl_pairs[c] += pairs;
        self.seed_pairs[c] += seeds;
        self.traj_downloaders += traj_dl;
        self.traj_seeds += traj_seed;
    }

    fn sub_counters(&mut self, idx: usize) {
        let (c, dl_peer, pairs, seeds, traj_dl, traj_seed) = self.contribution(idx);
        self.dl_peers[c] -= dl_peer;
        self.dl_pairs[c] -= pairs;
        self.seed_pairs[c] -= seeds;
        self.traj_downloaders -= traj_dl;
        self.traj_seeds -= traj_seed;
    }

    /// Places a new peer into the slab, recycling a tombstone when one is
    /// free.
    fn alloc_peer(&mut self, peer: Peer) -> usize {
        if let Some(idx) = self.free.pop() {
            self.peers[idx] = peer;
            idx
        } else {
            self.peers.push(peer);
            let n = self.peers.len();
            self.cache_grow(n);
            n - 1
        }
    }

    /// Draws the next *entering* arrival (Poisson visitors thinned by
    /// non-empty request sets), if it lands before the horizon.
    fn schedule_arrival(&mut self) {
        if self.hook.is_some() {
            self.schedule_arrival_hooked();
            return;
        }
        let mut t = self.next_arrival.take().map(|(ta, _)| ta).unwrap_or(self.t);
        loop {
            t += self.gap.sample(&mut self.rng_arrivals);
            if t >= self.cfg.horizon {
                self.next_arrival = None;
                return;
            }
            let files = self.sampler.sample_visitor(&mut self.rng_arrivals);
            if !files.is_empty() {
                self.next_arrival = Some((t, files));
                return;
            }
        }
    }

    /// Hooked arrival scheduling: Lewis–Shedler thinning at the majorizing
    /// rate, request sets drawn at the accepted candidate's instant with
    /// `p(t)`, entry deferred to the tracker's release time.
    ///
    /// The raw candidate clock (`arrival_clock`) advances independently of
    /// the (possibly deferred) scheduled time, so a blackout queues every
    /// candidate drawn during the window at its end — the post-blackout
    /// rush — without distorting the underlying Poisson process.
    fn schedule_arrival_hooked(&mut self) {
        self.next_arrival = None;
        if self.hook.as_ref().is_some_and(|h| h.replays()) {
            self.schedule_arrival_replay();
            return;
        }
        let gap = self
            .hook_gap
            .expect("hooked scheduling without a gap sampler");
        let bound = gap.rate();
        let mut t = self.arrival_clock;
        loop {
            t += gap.sample(&mut self.rng_arrivals);
            if t >= self.cfg.horizon {
                self.arrival_clock = t;
                return;
            }
            let hook = self.hook.as_ref().expect("checked by schedule_arrival");
            let lambda = hook.arrival_rate(t);
            debug_assert!(
                (0.0..=bound).contains(&lambda),
                "arrival_rate({t}) = {lambda} escapes [0, {bound}]"
            );
            if self.rng_arrivals.next_f64() * bound >= lambda {
                continue; // thinned out
            }
            let p = hook.correlation(t);
            let release = hook.tracker_release(t);
            let files = self
                .sampler
                .sample_visitor_with_p(&mut self.rng_arrivals, p);
            if files.is_empty() {
                continue; // empty request set: the visitor never enters
            }
            if release >= self.cfg.horizon {
                continue; // tracker still dark at the arrival cutoff
            }
            self.arrival_clock = t;
            self.next_arrival = Some((release, files));
            return;
        }
    }

    /// Replay scheduling ([`ScenarioHook::replays`]): consumes recorded
    /// arrivals by index instead of thinning. `arrival_clock` holds the
    /// cursor (see its field docs); nothing is drawn from any RNG stream,
    /// so replay determinism is independent of the rate-refresh mode.
    fn schedule_arrival_replay(&mut self) {
        let mut idx = self.arrival_clock as u64;
        loop {
            let hook = self
                .hook
                .as_ref()
                .expect("replay scheduling without a hook");
            let Some((t, files)) = hook.replay_arrival(idx) else {
                // End of trace: park the cursor and leave no arrival armed.
                self.arrival_clock = idx as f64;
                return;
            };
            if t >= self.cfg.horizon {
                // Trace times are non-decreasing, so nothing later can
                // land inside the horizon either.
                self.arrival_clock = idx as f64;
                return;
            }
            let release = hook.tracker_release(t);
            idx += 1;
            if files.is_empty() || release >= self.cfg.horizon {
                continue; // malformed record or tracker dark past the cutoff
            }
            self.arrival_clock = idx as f64;
            self.next_arrival = Some((release.max(t), files));
            return;
        }
    }

    fn handle_arrival(&mut self) {
        let (ta, files) = self
            .next_arrival
            .take()
            .expect("arrival event without a scheduled arrival");
        debug_assert!((ta - self.t).abs() < 1e-9);
        // Random download order (sequential schemes).
        let order = random_order(&mut self.rng_service, files.len());
        let mut peer = Peer::new(self.user_counter, self.t, files, order, 1.0);
        self.user_counter += 1;
        assign_arrival_policy(
            &mut peer,
            self.cfg.scheme,
            self.cfg.adapt.as_ref(),
            &mut self.rng_service,
        );
        let idx = self.alloc_peer(peer);
        self.apply_order_policy(idx);
        self.cache_register(idx);
        self.add_counters(idx);
        self.reschedule_expiry(idx);
        self.outcome.arrivals += 1;
        // Re-arm from the consumed arrival's time.
        self.next_arrival = Some((ta, Vec::new()));
        self.schedule_arrival();
    }

    /// Under [`OrderPolicy::RarestFirst`], swaps the rarest unfinished file
    /// into the peer's next download position, using the incrementally
    /// maintained holder counts.
    fn apply_order_policy(&mut self, idx: usize) {
        if self.cfg.order_policy != OrderPolicy::RarestFirst || !self.cfg.scheme.is_sequential() {
            return;
        }
        let peer = &mut self.peers[idx];
        if peer.phase != Phase::Downloading || peer.cursor >= peer.class() {
            return;
        }
        let mut best: Vec<usize> = Vec::new();
        let mut best_count = usize::MAX;
        for pos in peer.cursor..peer.class() {
            let f = peer.files[peer.order[pos]] as usize;
            match self.holders[f].cmp(&best_count) {
                std::cmp::Ordering::Less => {
                    best_count = self.holders[f];
                    best.clear();
                    best.push(pos);
                }
                std::cmp::Ordering::Equal => best.push(pos),
                std::cmp::Ordering::Greater => {}
            }
        }
        let pick = best[self.rng_service.next_below(best.len() as u64) as usize];
        let cursor = peer.cursor;
        peer.order.swap(cursor, pick);
    }

    fn handle_completion(&mut self, idx: usize, slot: usize) {
        let was = self.touch_begin(idx);
        let t = self.t;
        {
            let peer = &mut self.peers[idx];
            peer.remaining[slot] = 0.0;
            peer.completed_at[slot] = Some(t);
        }
        // Holder count first, so rarest-first sees the fresh copy.
        self.holders[self.peers[idx].files[slot] as usize] += 1;
        match self.cfg.scheme {
            SchemeKind::Mtsd => {
                let dur = self.gamma.sample(&mut self.rng_service);
                let peer = &mut self.peers[idx];
                peer.seed_duration[slot] = dur;
                peer.seed_until[slot] = Some(t + dur);
                peer.phase = Phase::SeedingFile(slot);
            }
            SchemeKind::Mtcd => {
                let dur = self.gamma.sample(&mut self.rng_service);
                let peer = &mut self.peers[idx];
                peer.seed_duration[slot] = dur;
                peer.seed_until[slot] = Some(t + dur);
                if peer.all_done() {
                    peer.phase = Phase::SeedingAll;
                }
            }
            SchemeKind::Mfcd => {
                // Virtual seed persists until the user departs as a whole.
                let peer = &mut self.peers[idx];
                peer.seed_until[slot] = Some(f64::INFINITY);
                if peer.all_done() {
                    let dur = self.gamma.sample(&mut self.rng_service);
                    self.peers[idx].depart_at = Some(t + dur);
                    self.peers[idx].phase = Phase::SeedingAll;
                }
            }
            SchemeKind::Cmfsd { .. } => {
                let peer = &mut self.peers[idx];
                peer.cursor += 1;
                if peer.cursor >= peer.class() {
                    let dur = self.gamma.sample(&mut self.rng_service);
                    self.peers[idx].depart_at = Some(t + dur);
                    self.peers[idx].phase = Phase::SeedingAll;
                } else {
                    // While downloading continues, the (1−ρ)μ virtual seed
                    // serves the finished files demand-aware (see `rate`),
                    // and the next file follows the order policy.
                    self.apply_order_policy(idx);
                }
            }
        }
        self.touch_end(idx, was);
    }

    fn handle_seed_expiry(&mut self, idx: usize) {
        let was = self.touch_begin(idx);
        let t = self.t;
        let mut departed = false;
        match self.cfg.scheme {
            SchemeKind::Mtsd => {
                let mut resume = false;
                {
                    let peer = &mut self.peers[idx];
                    if let Phase::SeedingFile(slot) = peer.phase {
                        if peer.seed_until[slot].is_some_and(|su| su <= t + 1e-9) {
                            peer.seed_until[slot] = None;
                            peer.cursor += 1;
                            if peer.cursor < peer.class() {
                                peer.phase = Phase::Downloading;
                                resume = true;
                            } else {
                                departed = true;
                            }
                        }
                    }
                }
                if resume {
                    self.apply_order_policy(idx);
                }
            }
            SchemeKind::Mtcd => {
                let peer = &mut self.peers[idx];
                for slot in 0..peer.class() {
                    if peer.seed_until[slot].is_some_and(|su| su <= t + 1e-9) {
                        peer.seed_until[slot] = None;
                    }
                }
                if peer.all_done() && peer.seed_until.iter().all(Option::is_none) {
                    departed = true;
                }
            }
            SchemeKind::Mfcd | SchemeKind::Cmfsd { .. } => {
                if self.peers[idx].depart_at.is_some_and(|da| da <= t + 1e-9) {
                    departed = true;
                }
            }
        }
        if departed {
            self.finalize_departure(idx);
        }
        self.touch_end(idx, was);
        if departed {
            self.free.push(idx);
        }
    }

    fn handle_epoch(&mut self) {
        let setup = self.cfg.adapt.expect("epoch event without adapt setup");
        // Telemetry-only Δ aggregation: observes the same values the
        // controllers receive, writes nowhere but `last_delta`.
        let mut delta_sum = 0.0;
        let mut delta_n = 0u64;
        for idx in 0..self.peers.len() {
            if self.peers[idx].phase == Phase::Departed {
                continue;
            }
            let was = self.touch_begin(idx);
            {
                let peer = &mut self.peers[idx];
                if peer.phase == Phase::Downloading && peer.class() >= 2 {
                    if let Some(ctrl) = peer.adapt.as_mut() {
                        // Δ in bandwidth units: give minus take, per unit
                        // time.
                        let delta = (peer.donated - peer.received_vs) / setup.epoch;
                        peer.rho = ctrl.observe(delta);
                        delta_sum += delta;
                        delta_n += 1;
                    }
                }
                peer.donated = 0.0;
                peer.received_vs = 0.0;
            }
            self.touch_end(idx, was);
        }
        if delta_n > 0 {
            self.last_delta = delta_sum / delta_n as f64;
        }
        self.next_epoch = Some(self.next_epoch.expect("epoch scheduled") + setup.epoch);
    }

    /// Re-samples the abort candidate from the scenario stream: an
    /// exponential race at rate `abort_rate_bound · N` (N = downloading
    /// peers), thinned to `θ(t)` at acceptance time. Called after every
    /// event while a hook is attached — exact because the exponential race
    /// is memoryless and `N` is constant between events.
    fn rearm_abort(&mut self) {
        let n = self.traj_downloaders;
        if self.abort_bound <= 0.0 || n == 0 {
            self.next_abort = None;
            return;
        }
        let rate = self.abort_bound * n as f64;
        let gap = -self.rng_scenario.next_f64_open().ln() / rate;
        self.next_abort = Some(self.t + gap);
    }

    /// An abort candidate fired: accept with probability
    /// `θ(t) / abort_rate_bound`, then evict a uniformly chosen
    /// downloading peer. Peers in a seeding phase are never aborted — the
    /// fault models downloader impatience, not seed churn (seed churn is
    /// the origin-outage axis).
    fn handle_abort(&mut self) {
        self.next_abort = None;
        let theta = {
            let hook = self.hook.as_ref().expect("abort event without hook");
            hook.abort_rate(self.t)
        };
        debug_assert!(
            (0.0..=self.abort_bound).contains(&theta),
            "abort_rate({}) = {theta} escapes [0, {}]",
            self.t,
            self.abort_bound
        );
        if self.rng_scenario.next_f64() * self.abort_bound >= theta {
            return; // thinned out
        }
        let n = self.traj_downloaders;
        if n == 0 {
            return;
        }
        let target = self.rng_scenario.next_below(n as u64) as usize;
        let mut seen = 0usize;
        let mut victim = None;
        for (idx, p) in self.peers.iter().enumerate() {
            if p.phase == Phase::Downloading {
                if seen == target {
                    victim = Some(idx);
                    break;
                }
                seen += 1;
            }
        }
        let idx = victim.expect("traj_downloaders counted a downloading peer");
        let was = self.touch_begin(idx);
        self.finalize_abort(idx);
        self.touch_end(idx, was);
        self.free.push(idx);
    }

    /// A scenario boundary: re-read the origin-seed count and schedule the
    /// next boundary. Tracker transitions need no action here — deferral
    /// is resolved at arrival-scheduling time — but their boundaries pass
    /// through this event harmlessly.
    fn handle_control(&mut self) {
        let (origin, next) = {
            let hook = self.hook.as_ref().expect("control event without hook");
            (hook.origin_seeds(self.t), hook.next_boundary(self.t))
        };
        if let Some(b) = next {
            debug_assert!(
                b > self.t,
                "next_boundary({}) = {b} did not advance",
                self.t
            );
        }
        self.next_control = next;
        self.apply_origin(origin);
    }

    /// Puts a new origin-seed count in force: adjusts the rarest-first
    /// holder counts and re-seeds the rate cache's origin bandwidth (which
    /// marks every pool dirty for the next refresh).
    fn apply_origin(&mut self, n: usize) {
        if n == self.origin_now {
            return;
        }
        let old = self.origin_now;
        for h in &mut self.holders {
            // Every holder count includes `old` origin copies, so the
            // subtraction cannot underflow.
            *h = *h + n - old;
        }
        if let Some(agg) = self.agg.as_mut() {
            agg.set_origin_seeds(n);
        } else {
            self.cache.set_origin_seeds(n);
        }
        self.origin_now = n;
    }

    /// Tombstones an aborted downloader: releases its holder counts and
    /// logs an [`AbortRecord`] (no [`UserRecord`] — the user never
    /// finished). The caller recycles the slot via `free`.
    fn finalize_abort(&mut self, idx: usize) {
        let t = self.t;
        let record = {
            let peer = &mut self.peers[idx];
            peer.phase = Phase::Departed;
            AbortRecord {
                id: peer.id,
                class: peer.class(),
                arrival: peer.arrival,
                time: t,
                done: peer.done_count(),
            }
        };
        for s in 0..self.peers[idx].class() {
            if self.peers[idx].finished(s) {
                self.holders[self.peers[idx].files[s] as usize] -= 1;
            }
        }
        self.outcome.aborts.push(record);
    }

    /// Marks a finished user departed: tombstones the slab slot, releases
    /// its holder counts, and emits the user record if it falls in the
    /// measured window. The caller recycles the slot via `free`.
    fn finalize_departure(&mut self, idx: usize) {
        let t = self.t;
        let counted;
        let record;
        {
            let peer = &mut self.peers[idx];
            peer.phase = Phase::Departed;
            counted = peer.arrival >= self.cfg.warmup && peer.arrival < self.cfg.horizon;
            let online_fluid = match self.cfg.scheme {
                SchemeKind::Mtcd => {
                    // Per-virtual-peer mean: (completion − arrival) + own
                    // seed duration, averaged over the user's torrents.
                    let sum: f64 = (0..peer.class())
                        .map(|s| {
                            peer.completed_at[s].expect("departed ⇒ all complete") - peer.arrival
                                + peer.seed_duration[s]
                        })
                        .sum();
                    sum / peer.class() as f64
                }
                _ => t - peer.arrival,
            };
            record = UserRecord {
                id: peer.id,
                class: peer.class(),
                arrival: peer.arrival,
                departure: t,
                download_span: peer.download_time_acc,
                online_fluid,
                final_rho: peer.rho,
                cheater: peer.cheater,
            };
        }
        for s in 0..self.peers[idx].class() {
            if self.peers[idx].finished(s) {
                self.holders[self.peers[idx].files[s] as usize] -= 1;
            }
        }
        if counted {
            self.outcome.record(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesConfig;

    fn run(scheme: SchemeKind, p: f64, seed: u64) -> SimOutcome {
        let cfg = DesConfig::paper_small(scheme, p, seed).unwrap();
        Simulation::new(cfg).unwrap().run()
    }

    #[test]
    fn mtsd_matches_fluid_prediction() {
        // Fluid: download per file 60, online per file 80.
        let o = run(SchemeKind::Mtsd, 0.3, 42);
        assert!(o.records.len() > 200, "only {} records", o.records.len());
        let dl = o.avg_download_per_file().unwrap();
        let on = o.avg_online_per_file().unwrap();
        assert!((dl - 60.0).abs() < 6.0, "download/file = {dl}");
        assert!((on - 80.0).abs() < 7.0, "online/file = {on}");
    }

    #[test]
    fn mtcd_single_class_k1_matches_fluid() {
        // K = 1 forces class 1 only; MTCD degenerates to the single
        // torrent: download 60.
        let cfg = DesConfig {
            model: btfluid_workload::CorrelationModel::new(1, 0.9, 0.3).unwrap(),
            ..DesConfig::paper_small(SchemeKind::Mtcd, 0.9, 7).unwrap()
        };
        let o = Simulation::new(cfg).unwrap().run();
        assert!(o.classes[0].count() > 200);
        let dl = o.classes[0].download.mean();
        assert!((dl - 60.0).abs() < 6.0, "download = {dl}");
    }

    #[test]
    fn arrivals_accounted() {
        let o = run(SchemeKind::Mtsd, 0.5, 3);
        assert!(o.arrivals > 0);
        // Everything that arrived post-warm-up either finished or is
        // censored. records may also include pre-horizon arrivals only.
        assert!(o.records.len() + o.censored <= o.arrivals);
    }

    #[test]
    fn events_are_counted() {
        let o = run(SchemeKind::Mtsd, 0.5, 3);
        // At minimum every arrival dispatched one event, plus the End.
        assert!(o.events > o.arrivals as u64);
    }

    #[test]
    fn determinism_per_seed() {
        let a = run(SchemeKind::Cmfsd { rho: 0.3 }, 0.6, 11);
        let b = run(SchemeKind::Cmfsd { rho: 0.3 }, 0.6, 11);
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.id, rb.id);
            assert!((ra.online_fluid - rb.online_fluid).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_mode_matches_incremental_smoke() {
        // The full matrix lives in tests/equivalence.rs; this is the quick
        // in-crate guard.
        let mut exact = DesConfig::paper_small(SchemeKind::Mtsd, 0.5, 19).unwrap();
        exact.horizon = 800.0;
        exact.warmup = 200.0;
        exact.drain = 800.0;
        let mut incr = exact.clone();
        exact.exact_rates = true;
        incr.exact_rates = false;
        let a = Simulation::new(exact).unwrap().run();
        let b = Simulation::new(incr).unwrap().run();
        assert_eq!(a.events, b.events);
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.id, rb.id);
            assert_eq!(ra.departure.to_bits(), rb.departure.to_bits());
            assert_eq!(ra.download_span.to_bits(), rb.download_span.to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(SchemeKind::Mtsd, 0.5, 1);
        let b = run(SchemeKind::Mtsd, 0.5, 2);
        assert_ne!(a.records.len(), 0);
        // Astronomically unlikely to match exactly.
        assert!(
            a.records.len() != b.records.len()
                || a.avg_online_per_file().unwrap() != b.avg_online_per_file().unwrap()
        );
    }

    #[test]
    fn cmfsd_rho_zero_beats_rho_one_at_high_p() {
        let fast = run(SchemeKind::Cmfsd { rho: 0.0 }, 0.9, 5);
        let slow = run(SchemeKind::Cmfsd { rho: 1.0 }, 0.9, 5);
        let f = fast.avg_online_per_file().unwrap();
        let s = slow.avg_online_per_file().unwrap();
        assert!(f < s, "ρ=0 ({f}) should beat ρ=1 ({s})");
    }

    #[test]
    fn mtsd_per_class_online_proportional_to_class() {
        // p = 0.2 gives classes 1-3 substantial mass.
        let o = run(SchemeKind::Mtsd, 0.2, 9);
        // Classes with decent support: compare class 3 vs class 1 online.
        let c1 = &o.classes[0];
        let c3 = &o.classes[2];
        if c1.count() > 30 && c3.count() > 30 {
            let ratio = c3.online.mean() / c1.online.mean();
            assert!((ratio - 3.0).abs() < 0.6, "ratio = {ratio}");
        } else {
            panic!(
                "not enough support: c1 = {}, c3 = {}",
                c1.count(),
                c3.count()
            );
        }
    }

    #[test]
    fn population_tracking_nonzero() {
        let o = run(SchemeKind::Mtsd, 0.5, 13);
        assert!(o.population.window > 0.0);
        let total: f64 = (1..=10).map(|i| o.population.avg_downloader_peers(i)).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn censoring_is_rare_with_ample_drain() {
        let o = run(SchemeKind::Mtsd, 0.3, 17);
        assert_eq!(o.censored, 0, "drain should let everyone finish");
    }

    #[test]
    fn trajectory_recording() {
        let mut cfg = DesConfig::paper_small(SchemeKind::Mtsd, 0.4, 23).unwrap();
        cfg.horizon = 1500.0;
        cfg.warmup = 300.0;
        cfg.drain = 1500.0;
        cfg.record_every = Some(50.0);
        let o = Simulation::new(cfg).unwrap().run();
        let series = o.trajectory.expect("recording enabled");
        assert!(series.len() > 20, "rows = {}", series.len());
        assert_eq!(series.names(), &["downloaders", "seeds"]);
        // Populations eventually become positive and the series is in time
        // order (enforced by TimeSeries::push).
        let downloaders = series.channel(0);
        assert!(downloaders.iter().any(|&x| x > 0.0));
        // The stationary level (between warm-up and the horizon — after
        // the horizon arrivals stop and the population drains) should be
        // near the fluid prediction x_total = λ₀·K·p·T = 60.
        let stationary: Vec<f64> = series
            .times()
            .iter()
            .zip(&downloaders)
            .filter(|(&t, _)| (600.0..=1500.0).contains(&t))
            .map(|(_, &x)| x)
            .collect();
        assert!(stationary.len() > 10);
        let mean: f64 = stationary.iter().sum::<f64>() / stationary.len() as f64;
        let expect = 0.25 * 10.0 * 0.4 * 60.0;
        assert!(
            (mean - expect).abs() / expect < 0.35,
            "stationary mean {mean} vs fluid {expect}"
        );
    }

    #[test]
    fn trajectory_disabled_by_default() {
        let o = run(SchemeKind::Mtsd, 0.3, 29);
        assert!(o.trajectory.is_none());
    }

    #[test]
    fn record_every_validation() {
        let mut cfg = DesConfig::paper_small(SchemeKind::Mtsd, 0.4, 1).unwrap();
        cfg.record_every = Some(0.0);
        assert!(cfg.validate().is_err());
        cfg.record_every = Some(f64::NAN);
        assert!(cfg.validate().is_err());
    }
}
