//! # btfluid-des
//!
//! A flow-level discrete-event simulator of multiple-file BitTorrent
//! downloading, built to validate the fluid models of `btfluid-core` at the
//! peer level and to evaluate the **Adapt** mechanism the paper leaves as
//! future work.
//!
//! ## Fidelity contract
//!
//! The simulator realizes exactly the service assumptions of the paper's
//! fluid models, peer by peer:
//!
//! * **Tit-for-tat**: a downloader receives `η ×` (its own upload allocated
//!   to that subtorrent) from other downloaders.
//! * **Altruistic seeds**: all seed bandwidth directed at a (sub)torrent is
//!   split across its downloaders in proportion to their download capacity
//!   (equal users ⇒ proportional to `1/class` under concurrent schemes,
//!   uniform under sequential ones).
//! * **Arrivals** are Poisson with binomially sampled request sets
//!   (`btfluid-workload`), **seed residence** is exponential with rate `γ`.
//!
//! Chunk-level detail is deliberately abstracted away — the fluid model
//! already folds it into `η` — so rates change only at events (arrival,
//! completion, departure, Adapt epoch) and progress is linear in between.
//! Each event advances every active download analytically; there is no
//! time-stepping error.
//!
//! ## Scheme semantics
//!
//! * **MTSD** — one torrent at a time in random order; full `μ` upload;
//!   seeds each file for `Exp(γ)` before moving on.
//! * **MTCD** — all torrents concurrently at `μ/i`; each finished file is
//!   seeded for an independent `Exp(γ)`, then that virtual peer leaves.
//! * **MFCD** — like MTCD inside one multi-file torrent, but the user's
//!   virtual seeds persist until the user departs as a whole (`Exp(γ)`
//!   after the *last* completion) — the real-client behaviour the paper
//!   argues is fluid-equivalent to MTCD; the simulator lets us measure the
//!   residual difference.
//! * **CMFSD** — sequential in random order; once a peer has a finished
//!   file it uploads `ρμ` via TFT and `(1−ρ)μ` as a *virtual seed* over its
//!   finished subtorrents, split in proportion to their current demand (the
//!   realization of the fluid model's global pooling — see
//!   [`rate`] for why a one-subtorrent pin starves at ρ → 0); after the
//!   last file it seeds all its files as a real seed for `Exp(γ)`.
//!
//! The [`adapt`] layer attaches a per-peer
//! [`btfluid_core::adapt::AdaptController`] that adjusts the individual ρ
//! from the observed virtual-seed give/take imbalance Δ, with a
//! configurable fraction of cheaters pinned at ρ = 1.

#![forbid(unsafe_code)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it also
// rejects NaN, which is exactly what parameter validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod adapt;
pub mod agg;
pub mod chunklevel;
pub mod config;
pub mod engine;
pub mod error;
pub mod event_queue;
pub mod hook;
pub mod observer;
pub mod peer;
pub mod rate;
pub mod rate_cache;
pub mod replicate;
pub mod single;
pub mod snapshot;

pub use agg::AggCache;
pub use chunklevel::{estimate_eta, ChunkLevelConfig, EtaEstimate};
pub use config::{AdaptSetup, DesConfig, OrderPolicy, SchemeKind};
pub use engine::Simulation;
pub use error::{DesError, InvariantKind};
pub use hook::ScenarioHook;
pub use observer::{AbortRecord, ClassStats, PopulationStats, SimOutcome, UserRecord};
pub use rate_cache::RateCache;
pub use replicate::{run_replications, ReplicationSummary};
pub use single::{run_single_torrent, SingleTorrentConfig, SingleTorrentOutcome};
pub use snapshot::{Snapshot, SnapshotError};

// Observability surface, re-exported so downstream crates can attach
// probes without depending on `btfluid-telemetry` directly.
pub use btfluid_telemetry::{
    shared_recorder, Counters, FanoutProbe, FlightKind, FlightRecord, FlightRecorder, MemoryProbe,
    NoopProbe, OwnedSample, Probe, ProfileTable, Profiler, RecorderProbe, Sample, SharedRecorder,
    SinkProbe, TraceSink,
};
