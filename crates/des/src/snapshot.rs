//! Versioned, checksummed engine snapshots for crash-safe runs.
//!
//! A [`Snapshot`] captures every bit of mutable state a suspended
//! [`crate::engine::Simulation`] needs to continue *exactly* where it
//! stopped: the three RNG stream states, the peer slab (tombstones
//! included), the free list, pending event registers, observer
//! accumulators, and the in-progress trajectory. Run → snapshot → restore
//! → run is bit-identical to an uninterrupted run — the
//! `snapshot_resume` integration test asserts this across every scheme
//! and both `exact_rates` modes.
//!
//! ## What is deliberately *not* serialized
//!
//! * The [`crate::rate_cache::RateCache`] and the event heap: both are
//!   derived structures. Restore re-registers every live peer and replays
//!   one cache refresh, which by the cache's ordered-resummation contract
//!   must be a bitwise no-op (a non-empty change set means the snapshot
//!   and the rebuild disagree and restore fails with
//!   [`crate::DesError::Invariant`]). Heap entries are rebuilt from the
//!   per-peer `comp_stamp`/`comp_time`/`expiry_stamp` bookkeeping; the
//!   stamp values are preserved, so future pushes continue the same
//!   monotone stamp sequence. Stale entries and lazy-later corrections
//!   are invisible to the dispatched event order (live entries are unique
//!   per `(time, rank, peer, slot)`), so dropping them is sound.
//! * Per-class population counters and rarest-first holder counts: both
//!   are recomputed from the restored slab.
//! * The `BTFLUID_DES_TRACE` debug state: stderr tracing is not part of
//!   the bit-identity contract.
//! * The attached [`btfluid_telemetry::Probe`], which may hold open file
//!   handles. The telemetry *counters* and the sampler phase
//!   (`next_sample`, `last_delta`) **are** serialized, so a run resumed
//!   with a fresh probe attached emits the same trace tail as an
//!   uninterrupted run.
//!
//! ## On-disk format
//!
//! ```text
//! magic "BTFS" | version u32 | payload | fnv1a-64 checksum
//! ```
//!
//! Little-endian throughout; floats are stored as raw IEEE-754 bits so
//! NaN/∞ round-trip exactly. The payload embeds a digest of the full
//! [`DesConfig`] and a fingerprint of the attached hook's
//! [`crate::ScenarioHook::hook_state`]; restore refuses a snapshot whose
//! digests do not match the offered config/hook
//! ([`SnapshotError::ConfigMismatch`] / [`SnapshotError::HookMismatch`]).
//!
//! **Compatibility policy**: the version is bumped whenever the payload
//! layout or any serialized semantic changes; old versions are rejected
//! ([`SnapshotError::UnsupportedVersion`]) rather than migrated —
//! checkpoints are short-lived crash-recovery artifacts, not archives.
//! [`Snapshot::write_file`] writes a sibling temp file and renames it
//! into place, so a crash mid-write never corrupts the previous
//! checkpoint.

use crate::config::{DesConfig, OrderPolicy, SchemeKind};
use crate::hook::ScenarioHook;
use crate::observer::{AbortRecord, ClassStats, PopulationStats, SimOutcome, UserRecord};
use crate::peer::{Peer, Phase};
use btfluid_numkit::series::TimeSeries;
use btfluid_numkit::stats::Welford;
use btfluid_telemetry::Counters;
use btfluid_workload::requests::FileId;
use std::fmt;
use std::path::Path;

const MAGIC: &[u8; 4] = b"BTFS";
/// Snapshot format version of per-peer-scheduling runs (see the module
/// docs for the policy). v2 added the telemetry counters and sampler
/// phase (`next_sample`, `last_delta`) so resumed runs emit the same
/// trace tail as uninterrupted ones.
pub const SNAPSHOT_VERSION: u32 = 2;
/// Snapshot format version of aggregate-scheduling runs: the v2 payload
/// followed by the aggregate section (sampling RNG state, the two
/// aggregate counters, and per-group hazard state plus member order).
/// Per-peer snapshots still encode as v2, byte-identical to previous
/// builds; the bump only applies where the extra section is present.
pub const SNAPSHOT_VERSION_AGG: u32 = 3;

/// Why a snapshot could not be encoded, decoded, or applied.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The file does not start with the `BTFS` magic.
    BadMagic,
    /// The file's format version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u32),
    /// The trailing FNV-1a checksum does not match the content.
    ChecksumMismatch,
    /// The offered [`DesConfig`] does not digest to the value embedded in
    /// the snapshot.
    ConfigMismatch,
    /// The offered hook's [`ScenarioHook::hook_state`] does not digest to
    /// the value embedded in the snapshot (includes offering no hook for
    /// a hooked snapshot and vice versa).
    HookMismatch,
    /// The payload is structurally invalid (truncated, impossible
    /// lengths, inconsistent cross-references).
    Corrupt(String),
    /// An I/O failure while reading or writing the snapshot file.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot: not a btfluid snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => write!(
                f,
                "snapshot: unsupported format version {v} (this build reads \
                 {SNAPSHOT_VERSION} and {SNAPSHOT_VERSION_AGG})"
            ),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot: checksum mismatch"),
            SnapshotError::ConfigMismatch => write!(
                f,
                "snapshot: configuration does not match the one it was taken under"
            ),
            SnapshotError::HookMismatch => write!(
                f,
                "snapshot: scenario hook does not match the one it was taken under"
            ),
            SnapshotError::Corrupt(d) => write!(f, "snapshot: corrupt payload: {d}"),
            SnapshotError::Io(d) => write!(f, "snapshot: {d}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------------
// FNV-1a 64 (checksums and digests; no external deps).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// ---------------------------------------------------------------------------
// Little-endian writer/reader primitives.

#[derive(Default)]
struct W {
    buf: Vec<u8>,
}

impl W {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }
    fn f64s(&mut self, xs: &[f64]) {
        self.u64(xs.len() as u64);
        for &x in xs {
            self.f64(x);
        }
    }
}

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| SnapshotError::Corrupt("truncated payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("bad bool byte {b}"))),
        }
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// Reads a length prefix, refusing counts that cannot possibly fit in
    /// the remaining bytes at `per` bytes each (corrupt-length guard).
    fn len(&mut self, per: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let room = (self.buf.len() - self.pos) / per.max(1);
        if n as usize > room {
            return Err(SnapshotError::Corrupt(format!(
                "length {n} exceeds remaining payload"
            )));
        }
        Ok(n as usize)
    }
    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("non-UTF-8 string".into()))
    }
    fn opt_f64(&mut self) -> Result<Option<f64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            b => Err(SnapshotError::Corrupt(format!("bad option tag {b}"))),
        }
    }
    fn f64s(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }
    fn done(&self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(
                "trailing bytes after payload".into(),
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Digests.

/// FNV-1a digest of the full configuration, over a canonical field
/// encoding. *Every* field participates — resuming is only defined for
/// the exact configuration the snapshot was taken under.
pub fn config_digest(cfg: &DesConfig) -> u64 {
    let mut w = W::default();
    w.f64(cfg.params.mu());
    w.f64(cfg.params.eta());
    w.f64(cfg.params.gamma());
    w.u32(cfg.model.k());
    w.f64(cfg.model.p());
    w.f64(cfg.model.lambda0());
    match cfg.scheme {
        SchemeKind::Mtsd => w.u8(0),
        SchemeKind::Mtcd => w.u8(1),
        SchemeKind::Mfcd => w.u8(2),
        SchemeKind::Cmfsd { rho } => {
            w.u8(3);
            w.f64(rho);
        }
    }
    w.f64(cfg.horizon);
    w.f64(cfg.warmup);
    w.f64(cfg.drain);
    w.u64(cfg.seed);
    match &cfg.adapt {
        None => w.u8(0),
        Some(a) => {
            w.u8(1);
            w.f64(a.controller.phi_inc);
            w.f64(a.controller.phi_dec);
            w.f64(a.controller.v_inc);
            w.f64(a.controller.v_dec);
            w.u32(a.controller.patience);
            w.f64(a.epoch);
            w.f64(a.cheater_fraction);
        }
    }
    w.u64(cfg.origin_seeds as u64);
    w.bool(cfg.warm_start);
    w.u8(match cfg.order_policy {
        OrderPolicy::Random => 0,
        OrderPolicy::RarestFirst => 1,
    });
    w.opt_f64(cfg.record_every);
    w.bool(cfg.exact_rates);
    w.bool(cfg.checked);
    // Folded in only when set, so every pre-aggregate config digests to
    // the same value as before the field existed (old checkpoints of
    // per-peer runs stay restorable).
    if cfg.aggregate {
        w.u8(0xA6);
    }
    fnv1a(&w.buf)
}

/// FNV-1a fingerprint of a hook's [`ScenarioHook::hook_state`] bytes.
/// "No hook" digests differently from any hook, including one whose
/// state is empty.
pub fn hook_fingerprint(hook: Option<&dyn ScenarioHook>) -> u64 {
    let mut bytes = Vec::new();
    match hook {
        None => bytes.push(0),
        Some(h) => {
            bytes.push(1);
            bytes.extend_from_slice(&h.hook_state());
        }
    }
    fnv1a(&bytes)
}

// ---------------------------------------------------------------------------
// The snapshot itself.

/// A suspended simulation's full mutable state (see the module docs).
///
/// Produced by [`crate::engine::Simulation::snapshot`]; consumed by
/// [`crate::engine::Simulation::restore`] /
/// [`crate::engine::Simulation::restore_with_hook`]. Serializable via
/// [`Snapshot::to_bytes`] / [`Snapshot::from_bytes`] and the atomic
/// file helpers.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) config_digest: u64,
    pub(crate) hook_fp: u64,
    pub(crate) t: f64,
    pub(crate) started: bool,
    /// Stream states in stream order: arrivals, service, scenario.
    pub(crate) rng_states: [[u64; 4]; 3],
    pub(crate) user_counter: u64,
    pub(crate) next_stamp: u64,
    pub(crate) arrival_clock: f64,
    pub(crate) origin_now: u64,
    pub(crate) next_arrival: Option<(f64, Vec<FileId>)>,
    pub(crate) next_epoch: Option<f64>,
    pub(crate) next_abort: Option<f64>,
    pub(crate) next_control: Option<f64>,
    pub(crate) free: Vec<u64>,
    /// Peer slab, tombstones included. `adapt` is always `None` here; the
    /// controllers live in [`Snapshot::adapt_states`] so decoding does not
    /// need a config.
    pub(crate) peers: Vec<Peer>,
    /// Parallel to `peers`: `(rho, above, below)` of each peer's Adapt
    /// controller, if it has one.
    pub(crate) adapt_states: Vec<Option<(f64, u32, u32)>>,
    /// Observer accumulators (without `inflight`/`trajectory`, which are
    /// only populated by `finish`).
    pub(crate) outcome: SimOutcome,
    pub(crate) trajectory: Option<TimeSeries>,
    pub(crate) next_record: f64,
    /// Telemetry counters accumulated so far. Maintained unconditionally
    /// (probe attached or not), so snapshot bytes never depend on
    /// observability settings.
    pub(crate) counters: Counters,
    /// Sampler phase: next simulated time a probe sample is due.
    pub(crate) next_sample: f64,
    /// Mean Adapt Δ observed at the most recent epoch (telemetry only).
    pub(crate) last_delta: f64,
    /// Aggregate-scheduling section, present exactly when the run uses
    /// aggregate mode (and then the file encodes as
    /// [`SNAPSHOT_VERSION_AGG`]).
    pub(crate) agg: Option<AggSnap>,
}

/// Aggregate-mode extension: everything the group cache cannot rebuild
/// from the peer slab. Group *rates* and the integer aggregates are
/// recomputed at restore (and verified against the armed deadlines); the
/// hazard state and the member-list order are not derivable — the order
/// decides which peer a uniform sample index selects — so both travel
/// verbatim.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AggSnap {
    /// Aggregate-sampling RNG stream state.
    pub(crate) rng_agg: [u64; 4],
    /// One entry per group, in group-id order (length `2·K²`).
    pub(crate) groups: Vec<GroupSnap>,
}

/// One group's serialized hazard state and member order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct GroupSnap {
    pub(crate) target: f64,
    pub(crate) acc: f64,
    pub(crate) anchor: f64,
    pub(crate) deadline: f64,
    pub(crate) stamp: u64,
    /// `(peer slab index, slot)` pairs in sampling order.
    pub(crate) members: Vec<(u32, u32)>,
}

impl Snapshot {
    /// Simulated time at which the snapshot was taken.
    pub fn sim_time(&self) -> f64 {
        self.t
    }

    /// Events dispatched before the snapshot was taken.
    pub fn events(&self) -> u64 {
        self.outcome.events
    }

    /// Encodes to the versioned, checksummed byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = W::default();
        w.buf.extend_from_slice(MAGIC);
        w.u32(if self.agg.is_some() {
            SNAPSHOT_VERSION_AGG
        } else {
            SNAPSHOT_VERSION
        });
        w.u64(self.config_digest);
        w.u64(self.hook_fp);
        w.f64(self.t);
        w.bool(self.started);
        for s in &self.rng_states {
            for &word in s {
                w.u64(word);
            }
        }
        w.u64(self.user_counter);
        w.u64(self.next_stamp);
        w.f64(self.arrival_clock);
        w.u64(self.origin_now);
        match &self.next_arrival {
            None => w.u8(0),
            Some((t, files)) => {
                w.u8(1);
                w.f64(*t);
                w.u64(files.len() as u64);
                for &f in files {
                    w.u32(u32::from(f));
                }
            }
        }
        w.opt_f64(self.next_epoch);
        w.opt_f64(self.next_abort);
        w.opt_f64(self.next_control);
        w.u64(self.free.len() as u64);
        for &i in &self.free {
            w.u64(i);
        }
        w.u64(self.peers.len() as u64);
        for p in &self.peers {
            encode_peer(&mut w, p);
        }
        debug_assert_eq!(self.adapt_states.len(), self.peers.len());
        for st in &self.adapt_states {
            match st {
                None => w.u8(0),
                Some((rho, above, below)) => {
                    w.u8(1);
                    w.f64(*rho);
                    w.u32(*above);
                    w.u32(*below);
                }
            }
        }
        encode_outcome(&mut w, &self.outcome);
        match &self.trajectory {
            None => w.u8(0),
            Some(series) => {
                w.u8(1);
                w.u64(series.names().len() as u64);
                for name in series.names() {
                    w.str(name);
                }
                w.f64s(series.times());
                w.f64s(series.raw_values());
            }
        }
        w.f64(self.next_record);
        w.u64(self.counters.events_popped);
        w.u64(self.counters.stale_discards);
        w.u64(self.counters.heap_peak);
        w.u64(self.counters.rate_recomputes);
        w.u64(self.counters.rate_clean_hits);
        w.u64(self.counters.snapshots_taken);
        w.u64(self.counters.snapshot_bytes);
        w.u64(self.counters.snapshot_micros);
        w.f64(self.next_sample);
        w.f64(self.last_delta);
        if let Some(agg) = &self.agg {
            for &word in &agg.rng_agg {
                w.u64(word);
            }
            w.u64(self.counters.agg_rate_updates);
            w.u64(self.counters.agg_samples);
            w.u64(agg.groups.len() as u64);
            for g in &agg.groups {
                w.f64(g.target);
                w.f64(g.acc);
                w.f64(g.anchor);
                w.f64(g.deadline);
                w.u64(g.stamp);
                w.u64(g.members.len() as u64);
                for &(p, s) in &g.members {
                    w.u32(p);
                    w.u32(s);
                }
            }
        }
        let checksum = fnv1a(&w.buf);
        w.u64(checksum);
        w.buf
    }

    /// Decodes and validates the byte format (magic, version, checksum,
    /// structural consistency).
    ///
    /// # Errors
    /// Any [`SnapshotError`] variant except the mismatch ones, which are
    /// checked at restore time against the offered config/hook.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(SnapshotError::Corrupt("file too short".into()));
        }
        if &bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let body = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let mut r = R::new(&body[4..]);
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION && version != SNAPSHOT_VERSION_AGG {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let config_digest = r.u64()?;
        let hook_fp = r.u64()?;
        let t = r.f64()?;
        let started = r.bool()?;
        let mut rng_states = [[0u64; 4]; 3];
        for s in &mut rng_states {
            for word in s.iter_mut() {
                *word = r.u64()?;
            }
        }
        let user_counter = r.u64()?;
        let next_stamp = r.u64()?;
        let arrival_clock = r.f64()?;
        let origin_now = r.u64()?;
        let next_arrival = match r.u8()? {
            0 => None,
            1 => {
                let ta = r.f64()?;
                let n = r.len(4)?;
                let mut files = Vec::with_capacity(n);
                for _ in 0..n {
                    let f = r.u32()?;
                    let f = FileId::try_from(f)
                        .map_err(|_| SnapshotError::Corrupt(format!("file id {f} overflows")))?;
                    files.push(f);
                }
                Some((ta, files))
            }
            b => return Err(SnapshotError::Corrupt(format!("bad option tag {b}"))),
        };
        let next_epoch = r.opt_f64()?;
        let next_abort = r.opt_f64()?;
        let next_control = r.opt_f64()?;
        let n_free = r.len(8)?;
        let free: Vec<u64> = (0..n_free).map(|_| r.u64()).collect::<Result<_, _>>()?;
        let n_peers = r.len(1)?;
        let mut peers = Vec::with_capacity(n_peers);
        for _ in 0..n_peers {
            peers.push(decode_peer(&mut r)?);
        }
        let mut adapt_states = Vec::with_capacity(n_peers);
        for _ in 0..n_peers {
            adapt_states.push(match r.u8()? {
                0 => None,
                1 => Some((r.f64()?, r.u32()?, r.u32()?)),
                b => return Err(SnapshotError::Corrupt(format!("bad option tag {b}"))),
            });
        }
        let outcome = decode_outcome(&mut r)?;
        let trajectory = match r.u8()? {
            0 => None,
            1 => {
                let n_names = r.len(8)?;
                let names: Vec<String> = (0..n_names).map(|_| r.str()).collect::<Result<_, _>>()?;
                let times = r.f64s()?;
                let values = r.f64s()?;
                Some(
                    TimeSeries::from_raw(names, times, values)
                        .map_err(|e| SnapshotError::Corrupt(format!("trajectory: {e}")))?,
                )
            }
            b => return Err(SnapshotError::Corrupt(format!("bad option tag {b}"))),
        };
        let next_record = r.f64()?;
        let mut counters = Counters {
            events_popped: r.u64()?,
            stale_discards: r.u64()?,
            heap_peak: r.u64()?,
            rate_recomputes: r.u64()?,
            rate_clean_hits: r.u64()?,
            snapshots_taken: r.u64()?,
            snapshot_bytes: r.u64()?,
            snapshot_micros: r.u64()?,
            ..Counters::default()
        };
        let next_sample = r.f64()?;
        let last_delta = r.f64()?;
        let agg = if version == SNAPSHOT_VERSION_AGG {
            let mut rng_agg = [0u64; 4];
            for word in &mut rng_agg {
                *word = r.u64()?;
            }
            counters.agg_rate_updates = r.u64()?;
            counters.agg_samples = r.u64()?;
            let n_groups = r.len(6 * 8)?;
            let mut groups = Vec::with_capacity(n_groups);
            for _ in 0..n_groups {
                let target = r.f64()?;
                let acc = r.f64()?;
                let anchor = r.f64()?;
                let deadline = r.f64()?;
                let stamp = r.u64()?;
                let n_members = r.len(8)?;
                let members = (0..n_members)
                    .map(|_| Ok((r.u32()?, r.u32()?)))
                    .collect::<Result<_, SnapshotError>>()?;
                groups.push(GroupSnap {
                    target,
                    acc,
                    anchor,
                    deadline,
                    stamp,
                    members,
                });
            }
            Some(AggSnap { rng_agg, groups })
        } else {
            None
        };
        r.done()?;
        for &i in &free {
            let ok = (i as usize) < peers.len() && peers[i as usize].phase == Phase::Departed;
            if !ok {
                return Err(SnapshotError::Corrupt(format!(
                    "free-list entry {i} does not point at a tombstone"
                )));
            }
        }
        Ok(Self {
            config_digest,
            hook_fp,
            t,
            started,
            rng_states,
            user_counter,
            next_stamp,
            arrival_clock,
            origin_now,
            next_arrival,
            next_epoch,
            next_abort,
            next_control,
            free,
            peers,
            adapt_states,
            outcome,
            trajectory,
            next_record,
            counters,
            next_sample,
            last_delta,
            agg,
        })
    }

    /// Writes the snapshot atomically: encodes to a sibling `.tmp` file,
    /// then renames it over `path`. A crash mid-write leaves the previous
    /// checkpoint (if any) intact.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] on filesystem failures.
    pub fn write_file(&self, path: &Path) -> Result<(), SnapshotError> {
        Self::write_file_bytes(path, &self.to_bytes())
    }

    /// Atomically writes already-encoded snapshot bytes (from
    /// [`Snapshot::to_bytes`]) — same temp-file-and-rename discipline as
    /// [`Snapshot::write_file`], for callers that also need the encoded
    /// length (e.g. telemetry byte accounting) without encoding twice.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] on filesystem failures.
    pub fn write_file_bytes(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
        let io = |e: std::io::Error| SnapshotError::Io(format!("{}: {e}", path.display()));
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, bytes).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Reads and decodes a snapshot file.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] on filesystem failures, plus everything
    /// [`Snapshot::from_bytes`] reports.
    pub fn read_file(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }
}

// ---------------------------------------------------------------------------
// Component codecs.

fn encode_peer(w: &mut W, p: &Peer) {
    debug_assert!(p.adapt.is_none(), "controllers travel in adapt_states");
    let n = p.files.len();
    w.u64(p.id);
    w.f64(p.arrival);
    w.u64(n as u64);
    for &f in &p.files {
        w.u32(u32::from(f));
    }
    for &x in &p.remaining {
        w.f64(x);
    }
    for &c in &p.completed_at {
        w.opt_f64(c);
    }
    for &o in &p.order {
        w.u64(o as u64);
    }
    w.u64(p.cursor as u64);
    match p.phase {
        Phase::Downloading => w.u8(0),
        Phase::SeedingFile(slot) => {
            w.u8(1);
            w.u64(slot as u64);
        }
        Phase::SeedingAll => w.u8(2),
        Phase::Departed => w.u8(3),
    }
    for &s in &p.seed_until {
        w.opt_f64(s);
    }
    for &d in &p.seed_duration {
        w.f64(d);
    }
    w.opt_f64(p.depart_at);
    w.f64(p.rho);
    w.bool(p.cheater);
    w.f64(p.donated);
    w.f64(p.received_vs);
    w.f64(p.download_time_acc);
    for &x in &p.rate {
        w.f64(x);
    }
    for &x in &p.vs_rate {
        w.f64(x);
    }
    for &x in &p.settled_at {
        w.f64(x);
    }
    w.f64(p.donation_rate);
    w.f64(p.donation_since);
    w.f64(p.active_since);
    for &s in &p.comp_stamp {
        w.u64(s);
    }
    for &ct in &p.comp_time {
        w.f64(ct);
    }
    w.u64(p.expiry_stamp);
}

fn decode_peer(r: &mut R) -> Result<Peer, SnapshotError> {
    let id = r.u64()?;
    let arrival = r.f64()?;
    let n = r.len(4)?;
    if n == 0 {
        return Err(SnapshotError::Corrupt("peer with empty request set".into()));
    }
    let mut files = Vec::with_capacity(n);
    for _ in 0..n {
        let f = r.u32()?;
        files.push(
            FileId::try_from(f)
                .map_err(|_| SnapshotError::Corrupt(format!("file id {f} overflows")))?,
        );
    }
    let remaining: Vec<f64> = (0..n).map(|_| r.f64()).collect::<Result<_, _>>()?;
    let completed_at: Vec<Option<f64>> = (0..n).map(|_| r.opt_f64()).collect::<Result<_, _>>()?;
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let o = r.u64()? as usize;
        if o >= n {
            return Err(SnapshotError::Corrupt(format!(
                "order entry {o} out of range for class {n}"
            )));
        }
        order.push(o);
    }
    let cursor = r.u64()? as usize;
    let phase = match r.u8()? {
        0 => Phase::Downloading,
        1 => {
            let slot = r.u64()? as usize;
            if slot >= n {
                return Err(SnapshotError::Corrupt(format!(
                    "seeding slot {slot} out of range for class {n}"
                )));
            }
            Phase::SeedingFile(slot)
        }
        2 => Phase::SeedingAll,
        3 => Phase::Departed,
        b => return Err(SnapshotError::Corrupt(format!("bad phase tag {b}"))),
    };
    let seed_until: Vec<Option<f64>> = (0..n).map(|_| r.opt_f64()).collect::<Result<_, _>>()?;
    let seed_duration: Vec<f64> = (0..n).map(|_| r.f64()).collect::<Result<_, _>>()?;
    let depart_at = r.opt_f64()?;
    let rho = r.f64()?;
    let cheater = r.bool()?;
    let donated = r.f64()?;
    let received_vs = r.f64()?;
    let download_time_acc = r.f64()?;
    let rate: Vec<f64> = (0..n).map(|_| r.f64()).collect::<Result<_, _>>()?;
    let vs_rate: Vec<f64> = (0..n).map(|_| r.f64()).collect::<Result<_, _>>()?;
    let settled_at: Vec<f64> = (0..n).map(|_| r.f64()).collect::<Result<_, _>>()?;
    let donation_rate = r.f64()?;
    let donation_since = r.f64()?;
    let active_since = r.f64()?;
    let comp_stamp: Vec<u64> = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
    let comp_time: Vec<f64> = (0..n).map(|_| r.f64()).collect::<Result<_, _>>()?;
    let expiry_stamp = r.u64()?;
    if cursor > n {
        return Err(SnapshotError::Corrupt(format!(
            "cursor {cursor} out of range for class {n}"
        )));
    }
    Ok(Peer {
        id,
        arrival,
        files,
        remaining,
        completed_at,
        order,
        cursor,
        phase,
        seed_until,
        seed_duration,
        depart_at,
        rho,
        cheater,
        adapt: None,
        donated,
        received_vs,
        download_time_acc,
        rate,
        vs_rate,
        settled_at,
        donation_rate,
        donation_since,
        active_since,
        comp_stamp,
        comp_time,
        expiry_stamp,
    })
}

fn encode_welford(w: &mut W, s: &Welford) {
    let (n, mean, m2, min, max) = s.raw_parts();
    w.u64(n);
    w.f64(mean);
    w.f64(m2);
    w.f64(min);
    w.f64(max);
}

fn decode_welford(r: &mut R) -> Result<Welford, SnapshotError> {
    let n = r.u64()?;
    let mean = r.f64()?;
    let m2 = r.f64()?;
    let min = r.f64()?;
    let max = r.f64()?;
    Ok(Welford::from_raw_parts(n, mean, m2, min, max))
}

fn encode_class_stats(w: &mut W, cs: &[ClassStats]) {
    w.u64(cs.len() as u64);
    for c in cs {
        encode_welford(w, &c.download);
        encode_welford(w, &c.online);
        encode_welford(w, &c.rho);
    }
}

fn decode_class_stats(r: &mut R) -> Result<Vec<ClassStats>, SnapshotError> {
    let n = r.len(5 * 8)?;
    (0..n)
        .map(|_| {
            Ok(ClassStats {
                download: decode_welford(r)?,
                online: decode_welford(r)?,
                rho: decode_welford(r)?,
            })
        })
        .collect()
}

fn encode_outcome(w: &mut W, o: &SimOutcome) {
    debug_assert!(
        o.inflight.is_empty() && o.trajectory.is_none() && o.censored == 0,
        "snapshots are taken mid-run, before finish() populates these"
    );
    encode_class_stats(w, &o.classes);
    encode_class_stats(w, &o.obedient);
    encode_class_stats(w, &o.cheaters);
    w.u64(o.records.len() as u64);
    for rec in &o.records {
        w.u64(rec.id);
        w.u64(rec.class as u64);
        w.f64(rec.arrival);
        w.f64(rec.departure);
        w.f64(rec.download_span);
        w.f64(rec.online_fluid);
        w.f64(rec.final_rho);
        w.bool(rec.cheater);
    }
    w.f64s(&o.population.downloader_peer_integral);
    w.f64s(&o.population.download_pair_integral);
    w.f64s(&o.population.seed_pair_integral);
    w.f64(o.population.window);
    w.u64(o.arrivals as u64);
    w.u64(o.aborts.len() as u64);
    for a in &o.aborts {
        w.u64(a.id);
        w.u64(a.class as u64);
        w.f64(a.arrival);
        w.f64(a.time);
        w.u64(a.done as u64);
    }
    w.u64(o.events);
}

fn decode_outcome(r: &mut R) -> Result<SimOutcome, SnapshotError> {
    let classes = decode_class_stats(r)?;
    let obedient = decode_class_stats(r)?;
    let cheaters = decode_class_stats(r)?;
    if obedient.len() != classes.len() || cheaters.len() != classes.len() {
        return Err(SnapshotError::Corrupt(
            "class-stats vectors disagree on K".into(),
        ));
    }
    let n_rec = r.len(6 * 8 + 2)?;
    let mut records = Vec::with_capacity(n_rec);
    for _ in 0..n_rec {
        records.push(UserRecord {
            id: r.u64()?,
            class: r.u64()? as usize,
            arrival: r.f64()?,
            departure: r.f64()?,
            download_span: r.f64()?,
            online_fluid: r.f64()?,
            final_rho: r.f64()?,
            cheater: r.bool()?,
        });
    }
    let population = PopulationStats {
        downloader_peer_integral: r.f64s()?,
        download_pair_integral: r.f64s()?,
        seed_pair_integral: r.f64s()?,
        window: r.f64()?,
    };
    if population.downloader_peer_integral.len() != classes.len()
        || population.download_pair_integral.len() != classes.len()
        || population.seed_pair_integral.len() != classes.len()
    {
        return Err(SnapshotError::Corrupt(
            "population integrals disagree on K".into(),
        ));
    }
    let arrivals = r.u64()? as usize;
    let n_aborts = r.len(3 * 8 + 2)?;
    let mut aborts = Vec::with_capacity(n_aborts);
    for _ in 0..n_aborts {
        aborts.push(AbortRecord {
            id: r.u64()?,
            class: r.u64()? as usize,
            arrival: r.f64()?,
            time: r.f64()?,
            done: r.u64()? as usize,
        });
    }
    let events = r.u64()?;
    Ok(SimOutcome {
        classes,
        obedient,
        cheaters,
        records,
        population,
        censored: 0,
        inflight: Vec::new(),
        arrivals,
        aborts,
        trajectory: None,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesConfig;
    use crate::engine::Simulation;

    fn cfg() -> DesConfig {
        let mut cfg = DesConfig::paper_small(SchemeKind::Mtsd, 0.5, 7).unwrap();
        cfg.horizon = 400.0;
        cfg.warmup = 100.0;
        cfg.drain = 400.0;
        cfg.record_every = Some(50.0);
        cfg
    }

    fn mid_run_snapshot() -> Snapshot {
        let mut sim = Simulation::new(cfg()).unwrap();
        for _ in 0..500 {
            if !sim.step().unwrap() {
                break;
            }
        }
        sim.snapshot()
    }

    #[test]
    fn roundtrip_is_identical_bytes() {
        let snap = mid_run_snapshot();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(bytes, back.to_bytes());
        assert_eq!(snap.sim_time(), back.sim_time());
        assert_eq!(snap.events(), back.events());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = mid_run_snapshot().to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn flipped_bit_fails_checksum() {
        let mut bytes = mid_run_snapshot().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert_eq!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );
    }

    #[test]
    fn truncated_file_rejected() {
        let bytes = mid_run_snapshot().to_bytes();
        assert!(Snapshot::from_bytes(&bytes[..bytes.len() - 20]).is_err());
    }

    #[test]
    fn unsupported_version_rejected() {
        let snap = mid_run_snapshot();
        let mut bytes = snap.to_bytes();
        // Version sits right after the magic; bump it and re-checksum.
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let len = bytes.len();
        let sum = fnv1a(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn config_digest_sensitivity() {
        let a = config_digest(&cfg());
        let mut other = cfg();
        other.seed += 1;
        assert_ne!(a, config_digest(&other));
        let mut other = cfg();
        other.exact_rates = true;
        assert_ne!(a, config_digest(&other));
        assert_eq!(a, config_digest(&cfg()));
    }

    #[test]
    fn hook_fingerprint_distinguishes_none_from_stateless() {
        struct Stateless;
        impl ScenarioHook for Stateless {
            fn arrival_rate(&self, _t: f64) -> f64 {
                1.0
            }
            fn arrival_rate_bound(&self) -> f64 {
                1.0
            }
            fn correlation(&self, _t: f64) -> f64 {
                0.5
            }
            fn abort_rate(&self, _t: f64) -> f64 {
                0.0
            }
            fn abort_rate_bound(&self) -> f64 {
                0.0
            }
            fn origin_seeds(&self, _t: f64) -> usize {
                0
            }
            fn tracker_up(&self, _t: f64) -> bool {
                true
            }
            fn next_boundary(&self, _t: f64) -> Option<f64> {
                None
            }
        }
        assert_ne!(hook_fingerprint(None), hook_fingerprint(Some(&Stateless)));
    }

    #[test]
    fn atomic_file_roundtrip() {
        let snap = mid_run_snapshot();
        let dir = std::env::temp_dir().join(format!("btfs-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.snap");
        snap.write_file(&path).unwrap();
        // The temp file must not linger after the rename.
        assert!(!dir.join("ckpt.snap.tmp").exists());
        let back = Snapshot::read_file(&path).unwrap();
        assert_eq!(snap.to_bytes(), back.to_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
