//! Arrival-time policy assignment: ρ, cheater status and the per-peer
//! Adapt controller.

use crate::config::{AdaptSetup, SchemeKind};
use crate::peer::Peer;
use btfluid_core::adapt::AdaptController;
use btfluid_numkit::rng::RngCore;

/// Configures a freshly arrived peer's ρ/cheating/Adapt state according to
/// the scheme and (optional) Adapt setup.
///
/// * Non-CMFSD schemes: ρ is irrelevant, left at 1.
/// * CMFSD without Adapt: every peer obeys the configured default ρ.
/// * CMFSD with Adapt: a coin with the configured cheater fraction decides;
///   cheaters pin ρ = 1 (they never donate), obedient peers start at the
///   paper's recommended ρ = 0 and adapt from there.
pub fn assign_arrival_policy<R: RngCore + ?Sized>(
    peer: &mut Peer,
    scheme: SchemeKind,
    adapt: Option<&AdaptSetup>,
    rng: &mut R,
) {
    let SchemeKind::Cmfsd { rho } = scheme else {
        peer.rho = 1.0;
        return;
    };
    match adapt {
        None => {
            peer.rho = rho;
        }
        Some(setup) => {
            if rng.next_f64() < setup.cheater_fraction {
                peer.cheater = true;
                peer.rho = 1.0;
            } else {
                let ctrl = AdaptController::new(setup.controller)
                    .expect("setup validated by DesConfig::validate");
                peer.rho = ctrl.rho();
                peer.adapt = Some(ctrl);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_core::adapt::AdaptConfig;
    use btfluid_numkit::rng::Xoshiro256StarStar;

    fn peer() -> Peer {
        Peer::new(0, 0.0, vec![1, 2], vec![0, 1], 0.42)
    }

    fn setup(cheater_fraction: f64) -> AdaptSetup {
        AdaptSetup {
            controller: AdaptConfig::default_for_mu(0.02),
            epoch: 10.0,
            cheater_fraction,
        }
    }

    #[test]
    fn non_cmfsd_pins_rho_one() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for scheme in [SchemeKind::Mtsd, SchemeKind::Mtcd, SchemeKind::Mfcd] {
            let mut p = peer();
            assign_arrival_policy(&mut p, scheme, None, &mut rng);
            assert_eq!(p.rho, 1.0);
            assert!(!p.cheater);
            assert!(p.adapt.is_none());
        }
    }

    #[test]
    fn cmfsd_without_adapt_uses_default_rho() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let mut p = peer();
        assign_arrival_policy(&mut p, SchemeKind::Cmfsd { rho: 0.3 }, None, &mut rng);
        assert_eq!(p.rho, 0.3);
        assert!(p.adapt.is_none());
    }

    #[test]
    fn adapt_obedient_starts_at_zero() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut p = peer();
        assign_arrival_policy(
            &mut p,
            SchemeKind::Cmfsd { rho: 0.5 },
            Some(&setup(0.0)),
            &mut rng,
        );
        assert!(!p.cheater);
        assert_eq!(p.rho, 0.0);
        assert!(p.adapt.is_some());
    }

    #[test]
    fn all_cheaters_when_fraction_is_one() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let mut p = peer();
        assign_arrival_policy(
            &mut p,
            SchemeKind::Cmfsd { rho: 0.0 },
            Some(&setup(1.0)),
            &mut rng,
        );
        assert!(p.cheater);
        assert_eq!(p.rho, 1.0);
        assert!(p.adapt.is_none());
    }

    #[test]
    fn cheater_fraction_is_respected_statistically() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let s = setup(0.3);
        let n = 10_000;
        let cheaters = (0..n)
            .filter(|_| {
                let mut p = peer();
                assign_arrival_policy(&mut p, SchemeKind::Cmfsd { rho: 0.0 }, Some(&s), &mut rng);
                p.cheater
            })
            .count();
        let frac = cheaters as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "fraction = {frac}");
    }
}
