//! Independent replications in parallel, with merged summaries.

use crate::config::DesConfig;
use crate::engine::Simulation;
use crate::observer::SimOutcome;
use btfluid_numkit::stats::{Confidence, Welford};
use btfluid_numkit::NumError;
use rayon::prelude::*;

/// Aggregated results over `R` independent replications.
#[derive(Debug, Clone)]
pub struct ReplicationSummary {
    /// One accumulator over the per-replication *average online time per
    /// file* values (so the CI is a true replication CI).
    pub online_per_file: Welford,
    /// Same for download time per file.
    pub download_per_file: Welford,
    /// Per-class per-file online means, one accumulator per class.
    pub class_online_per_file: Vec<Welford>,
    /// Per-class per-file download means.
    pub class_download_per_file: Vec<Welford>,
    /// Mean final ρ of obedient multi-file peers, per replication.
    pub obedient_final_rho: Welford,
    /// Total censored users across replications.
    pub censored: usize,
    /// The individual outcomes (for deeper inspection).
    pub outcomes: Vec<SimOutcome>,
}

impl ReplicationSummary {
    /// 95% confidence half-width on the population online-per-file mean.
    pub fn online_ci95(&self) -> f64 {
        self.online_per_file.ci_half_width(Confidence::P95)
    }
}

/// Runs `replications` independent simulations (seeds `base_seed + r`) in
/// parallel and merges the results.
///
/// # Errors
/// Propagates configuration validation errors; a replication that records
/// no completed user also fails (enlarge the horizon or `λ₀`).
pub fn run_replications(
    cfg: &DesConfig,
    replications: usize,
    base_seed: u64,
) -> Result<ReplicationSummary, NumError> {
    if replications == 0 {
        return Err(NumError::InvalidInput {
            what: "run_replications",
            detail: "need at least one replication".into(),
        });
    }
    cfg.validate()?;
    let outcomes: Vec<Result<SimOutcome, NumError>> = (0..replications)
        .into_par_iter()
        .map(|r| {
            let mut c = cfg.clone();
            c.seed = base_seed.wrapping_add(r as u64);
            Ok(Simulation::new(c)?.run())
        })
        .collect();
    let mut merged = ReplicationSummary {
        online_per_file: Welford::new(),
        download_per_file: Welford::new(),
        class_online_per_file: vec![Welford::new(); cfg.model.k() as usize],
        class_download_per_file: vec![Welford::new(); cfg.model.k() as usize],
        obedient_final_rho: Welford::new(),
        censored: 0,
        outcomes: Vec::with_capacity(replications),
    };
    for outcome in outcomes {
        let o = outcome?;
        merged.online_per_file.push(o.avg_online_per_file()?);
        merged.download_per_file.push(o.avg_download_per_file()?);
        for (i, stats) in o.classes.iter().enumerate() {
            if stats.count() > 0 {
                let class = (i + 1) as f64;
                merged.class_online_per_file[i].push(stats.online.mean() / class);
                merged.class_download_per_file[i].push(stats.download.mean() / class);
            }
        }
        // Obedient multi-file peers' final ρ (Adapt evaluation), weighted
        // by per-class support.
        let mut rho_num = 0.0;
        let mut rho_den = 0.0;
        for (i, stats) in o.obedient.iter().enumerate() {
            if i >= 1 && stats.count() > 0 {
                rho_num += stats.rho.mean() * stats.count() as f64;
                rho_den += stats.count() as f64;
            }
        }
        if rho_den > 0.0 {
            merged.obedient_final_rho.push(rho_num / rho_den);
        }
        merged.censored += o.censored;
        merged.outcomes.push(o);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DesConfig, SchemeKind};

    fn small_cfg() -> DesConfig {
        let mut cfg = DesConfig::paper_small(SchemeKind::Mtsd, 0.4, 0).unwrap();
        // Keep the test fast.
        cfg.horizon = 2000.0;
        cfg.warmup = 500.0;
        cfg.drain = 2500.0;
        cfg
    }

    #[test]
    fn zero_replications_rejected() {
        assert!(run_replications(&small_cfg(), 0, 1).is_err());
    }

    #[test]
    fn replications_reduce_uncertainty() {
        let cfg = small_cfg();
        let s = run_replications(&cfg, 4, 100).unwrap();
        assert_eq!(s.outcomes.len(), 4);
        assert_eq!(s.online_per_file.count(), 4);
        // MTSD fluid prediction: 80 per file.
        let mean = s.online_per_file.mean();
        assert!((mean - 80.0).abs() < 8.0, "mean = {mean}");
        assert!(s.online_ci95().is_finite());
    }

    #[test]
    fn per_class_summaries_populated() {
        let cfg = small_cfg();
        let s = run_replications(&cfg, 2, 7).unwrap();
        // Class 1 always has support at p = 0.4.
        assert!(s.class_online_per_file[0].count() > 0);
        let c1 = s.class_online_per_file[0].mean();
        assert!((c1 - 80.0).abs() < 10.0, "class-1 online/file = {c1}");
    }

    #[test]
    fn distinct_base_seeds_give_distinct_results() {
        let cfg = small_cfg();
        let a = run_replications(&cfg, 1, 1).unwrap();
        let b = run_replications(&cfg, 1, 2).unwrap();
        assert_ne!(
            a.online_per_file.mean(),
            b.online_per_file.mean(),
            "different seeds should differ"
        );
    }

    #[test]
    fn same_base_seed_is_reproducible() {
        let cfg = small_cfg();
        let a = run_replications(&cfg, 2, 5).unwrap();
        let b = run_replications(&cfg, 2, 5).unwrap();
        assert_eq!(a.online_per_file.mean(), b.online_per_file.mean());
    }
}
