//! A focused single-torrent simulator with heterogeneous bandwidth
//! classes, validating the Section 2 multiclass fluid model
//! ([`btfluid_core::multiclass::MultiClassFluid`]).
//!
//! Peers of class `Cᵢ(μᵢ, cᵢ)` arrive Poisson(λᵢ), download one file, seed
//! for `Exp(γ)` and leave. Service follows the model's two assumptions
//! literally:
//!
//! * TFT: each downloader receives `η·μᵢ` (what it uploads, discounted);
//! * seeds: the pooled seed bandwidth `Σ μ·(seeds)` is split across
//!   downloaders in proportion to their download capacity `cᵢ`.
//!
//! The main multi-file engine fixes `(μᵢ, cᵢ) = (μ/i, c/i)`; this one frees
//! both, so the bandwidth-heterogeneity assumptions get exercised on their
//! own.

use btfluid_core::multiclass::{BandwidthClass, MultiClassFluid};
use btfluid_numkit::dist::{DiscreteCdf, Exponential};
use btfluid_numkit::rng::Xoshiro256StarStar;
use btfluid_numkit::stats::Welford;
use btfluid_numkit::NumError;

/// Configuration of the heterogeneous single-torrent simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleTorrentConfig {
    /// The bandwidth classes (upload, download, arrival rate each).
    pub classes: Vec<BandwidthClass>,
    /// Sharing efficiency η.
    pub eta: f64,
    /// Seed departure rate γ.
    pub gamma: f64,
    /// Arrivals stop at this time.
    pub horizon: f64,
    /// Users arriving before this time are not counted.
    pub warmup: f64,
    /// Extra time to let in-flight users finish.
    pub drain: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Per-class measurement.
#[derive(Debug, Clone, Default)]
pub struct SingleClassStats {
    /// Download-time accumulator.
    pub download: Welford,
    /// Online-time accumulator (download + seeding).
    pub online: Welford,
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct SingleTorrentOutcome {
    /// Per-class stats, parallel to the config's class list.
    pub classes: Vec<SingleClassStats>,
    /// Users still in flight at the hard stop.
    pub censored: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum MiniPhase {
    Downloading,
    Seeding,
}

#[derive(Debug, Clone, Copy)]
struct MiniPeer {
    class: usize,
    arrival: f64,
    remaining: f64,
    download_done_at: f64,
    seed_until: f64,
    phase: MiniPhase,
}

/// Runs the simulation.
///
/// # Errors
/// Returns [`NumError::InvalidInput`] for invalid parameters (delegated to
/// the fluid model's validation plus time-window checks).
pub fn run_single_torrent(cfg: &SingleTorrentConfig) -> Result<SingleTorrentOutcome, NumError> {
    // Reuse the fluid model's validation of classes/η/γ.
    let _fluid = MultiClassFluid::new(cfg.classes.clone(), cfg.eta, cfg.gamma)?;
    if !(cfg.horizon > 0.0) || !(cfg.warmup >= 0.0) || cfg.warmup >= cfg.horizon {
        return Err(NumError::InvalidInput {
            what: "run_single_torrent",
            detail: "need 0 <= warmup < horizon".into(),
        });
    }
    if !(cfg.drain >= 0.0) {
        return Err(NumError::InvalidInput {
            what: "run_single_torrent",
            detail: format!("drain must be >= 0, got {}", cfg.drain),
        });
    }

    let mut rng = Xoshiro256StarStar::stream(cfg.seed, 0);
    let total_rate: f64 = cfg.classes.iter().map(|c| c.lambda).sum();
    let gap = Exponential::new(total_rate)?;
    let gamma_dist = Exponential::new(cfg.gamma)?;
    let class_pick = DiscreteCdf::new(&cfg.classes.iter().map(|c| c.lambda).collect::<Vec<_>>())?;

    let mut peers: Vec<MiniPeer> = Vec::new();
    let mut stats = vec![SingleClassStats::default(); cfg.classes.len()];
    let mut t = 0.0;
    let mut next_arrival = gap.sample(&mut rng);
    let end = cfg.horizon + cfg.drain;

    loop {
        // Rates: seeds pool split by download capacity.
        let seed_pool: f64 = peers
            .iter()
            .filter(|p| p.phase == MiniPhase::Seeding)
            .map(|p| cfg.classes[p.class].mu)
            .sum();
        let capacity: f64 = peers
            .iter()
            .filter(|p| p.phase == MiniPhase::Downloading)
            .map(|p| cfg.classes[p.class].c)
            .sum();

        // Next event.
        let mut t_next = end;
        enum Ev {
            End,
            Arrival,
            Complete(usize),
            SeedOut(usize),
        }
        let mut ev = Ev::End;
        if next_arrival < cfg.horizon && next_arrival < t_next {
            t_next = next_arrival;
            ev = Ev::Arrival;
        }
        for (i, p) in peers.iter().enumerate() {
            match p.phase {
                MiniPhase::Downloading => {
                    let cl = &cfg.classes[p.class];
                    let rate = cfg.eta * cl.mu
                        + if capacity > 0.0 {
                            cl.c / capacity * seed_pool
                        } else {
                            0.0
                        };
                    if rate > 0.0 {
                        let tc = t + p.remaining / rate;
                        if tc < t_next {
                            t_next = tc;
                            ev = Ev::Complete(i);
                        }
                    }
                }
                MiniPhase::Seeding => {
                    if p.seed_until < t_next {
                        t_next = p.seed_until;
                        ev = Ev::SeedOut(i);
                    }
                }
            }
        }

        // Advance all downloads.
        let dt = (t_next - t).max(0.0);
        if dt > 0.0 {
            for p in peers.iter_mut() {
                if p.phase == MiniPhase::Downloading {
                    let cl = &cfg.classes[p.class];
                    let rate = cfg.eta * cl.mu
                        + if capacity > 0.0 {
                            cl.c / capacity * seed_pool
                        } else {
                            0.0
                        };
                    p.remaining = (p.remaining - rate * dt).max(0.0);
                }
            }
        }
        t = t_next;

        match ev {
            Ev::End => break,
            Ev::Arrival => {
                let class = class_pick.sample(&mut rng);
                peers.push(MiniPeer {
                    class,
                    arrival: t,
                    remaining: 1.0,
                    download_done_at: f64::NAN,
                    seed_until: f64::INFINITY,
                    phase: MiniPhase::Downloading,
                });
                next_arrival = t + gap.sample(&mut rng);
            }
            Ev::Complete(i) => {
                let p = &mut peers[i];
                p.remaining = 0.0;
                p.download_done_at = t;
                p.seed_until = t + gamma_dist.sample(&mut rng);
                p.phase = MiniPhase::Seeding;
            }
            Ev::SeedOut(i) => {
                let p = peers[i];
                if p.arrival >= cfg.warmup && p.arrival < cfg.horizon {
                    stats[p.class].download.push(p.download_done_at - p.arrival);
                    stats[p.class].online.push(t - p.arrival);
                }
                peers.swap_remove(i);
            }
        }
    }

    let censored = peers
        .iter()
        .filter(|p| p.arrival >= cfg.warmup && p.arrival < cfg.horizon)
        .count();
    Ok(SingleTorrentOutcome {
        classes: stats,
        censored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(mu: f64, c: f64, lambda: f64) -> BandwidthClass {
        BandwidthClass { mu, c, lambda }
    }

    fn cfg(classes: Vec<BandwidthClass>, seed: u64) -> SingleTorrentConfig {
        SingleTorrentConfig {
            classes,
            eta: 0.5,
            gamma: 0.05,
            horizon: 5000.0,
            warmup: 1500.0,
            drain: 3000.0,
            seed,
        }
    }

    #[test]
    fn validation() {
        let mut c = cfg(vec![class(0.02, 0.2, 0.5)], 1);
        c.warmup = c.horizon;
        assert!(run_single_torrent(&c).is_err());
        let mut c = cfg(vec![class(0.02, 0.2, 0.5)], 1);
        c.drain = -1.0;
        assert!(run_single_torrent(&c).is_err());
        assert!(run_single_torrent(&cfg(vec![], 1)).is_err());
    }

    #[test]
    fn homogeneous_matches_qiu_srikant() {
        // One class at the paper's parameters: download 60, online 80.
        let c = cfg(vec![class(0.02, 0.2, 0.5)], 7);
        let o = run_single_torrent(&c).unwrap();
        assert!(o.classes[0].download.count() > 400);
        let dl = o.classes[0].download.mean();
        let on = o.classes[0].online.mean();
        assert!((dl - 60.0).abs() < 5.0, "download = {dl}");
        assert!((on - 80.0).abs() < 6.0, "online = {on}");
        assert_eq!(o.censored, 0);
    }

    #[test]
    fn heterogeneous_matches_multiclass_fluid() {
        // Two very different classes; compare against the Section 2 fixed
        // point per class.
        let classes = vec![class(0.01, 0.1, 0.4), class(0.05, 0.5, 0.2)];
        let fluid = MultiClassFluid::new(classes.clone(), 0.5, 0.05)
            .unwrap()
            .steady_state()
            .unwrap();
        let mut c = cfg(classes, 11);
        c.horizon = 8000.0;
        c.warmup = 2500.0;
        let o = run_single_torrent(&c).unwrap();
        for (i, st) in o.classes.iter().enumerate() {
            assert!(st.download.count() > 200, "class {i} support");
            let sim = st.download.mean();
            let pred = fluid.download_times[i];
            let rel = ((sim - pred) / pred).abs();
            assert!(
                rel < 0.10,
                "class {i}: sim {sim:.1} vs fluid {pred:.1} ({:.0}% off)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn fast_uploader_finishes_first_in_sim_too() {
        let classes = vec![class(0.01, 0.2, 0.3), class(0.08, 0.2, 0.3)];
        let o = run_single_torrent(&cfg(classes, 3)).unwrap();
        assert!(
            o.classes[1].download.mean() < o.classes[0].download.mean(),
            "fast uploader should finish first"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let classes = vec![class(0.02, 0.2, 0.5)];
        let a = run_single_torrent(&cfg(classes.clone(), 5)).unwrap();
        let b = run_single_torrent(&cfg(classes, 5)).unwrap();
        assert_eq!(a.classes[0].download.mean(), b.classes[0].download.mean());
    }
}
