//! Scenario injection: the engine's window onto non-stationary workloads
//! and faults.
//!
//! A [`ScenarioHook`] describes everything about a run that varies with
//! time: the visitor arrival rate `λ₀(t)`, the request correlation `p(t)`,
//! the origin-seed count (seed crashes and recoveries), tracker
//! availability (blackouts defer entries), and a state-dependent peer
//! abort process with per-downloader rate `θ(t)`.
//!
//! The engine consults the hook only when one is attached
//! ([`crate::engine::Simulation::with_hook`]); a plain
//! [`crate::engine::Simulation::new`] run carries `None` and pays nothing
//! beyond a handful of `Option` checks per event, so the O(log N) event
//! path of the stationary engine is untouched.
//!
//! ## Sampling contracts
//!
//! * **Arrivals** are a non-homogeneous Poisson process realized by
//!   Lewis–Shedler thinning: candidates at the constant majorizing rate
//!   [`ScenarioHook::arrival_rate_bound`], each accepted with probability
//!   `λ₀(t)/bound`. Correctness requires `0 ≤ λ₀(t) ≤ bound` everywhere.
//! * **Aborts** are a state-dependent Poisson process with instantaneous
//!   rate `θ(t) · N(t)` (`N` = downloading peers). The engine thins
//!   against `abort_rate_bound() · N` and re-arms the candidate after
//!   every event — exact by memorylessness, since `N` is constant between
//!   events.
//! * **Tracker blackouts** defer entry: a visitor arriving while
//!   [`ScenarioHook::tracker_up`] is false joins at
//!   [`ScenarioHook::tracker_release`] instead (or never, if the tracker
//!   stays down past the arrival horizon). Request sets are still drawn at
//!   the arrival instant — the user decided what to fetch before the
//!   tracker went dark.
//! * **Origin-seed changes** take effect at [`ScenarioHook::next_boundary`]
//!   times, where the engine re-reads [`ScenarioHook::origin_seeds`] and
//!   updates the rate cache.
//!
//! All hook methods must be deterministic functions of `t`: the engine's
//! reproducibility and `exact_rates` bit-equivalence guarantees extend to
//! scenario runs only because the hook itself carries no hidden state.

use btfluid_workload::requests::FileId;

/// Time-varying workload and fault description consulted by the engine.
///
/// Implementations live outside this crate (the `btfluid-scenario`
/// registry); the trait sits next to the observer types so the engine's
/// dependencies stay pointed at abstractions.
pub trait ScenarioHook {
    /// Instantaneous visitor arrival rate `λ₀(t)`.
    fn arrival_rate(&self, t: f64) -> f64;

    /// Constant majorizer for [`Self::arrival_rate`]; must be finite,
    /// strictly positive, and `≥ λ₀(t)` for all `t`.
    fn arrival_rate_bound(&self) -> f64;

    /// Request correlation `p(t)` at the arrival instant. Values outside
    /// `[0, 1]` are clamped by the engine.
    fn correlation(&self, t: f64) -> f64;

    /// Instantaneous per-downloader abort rate `θ(t)`.
    fn abort_rate(&self, t: f64) -> f64;

    /// Constant majorizer for [`Self::abort_rate`]; must be finite,
    /// non-negative, and `≥ θ(t)` for all `t`. Zero disables aborts.
    fn abort_rate_bound(&self) -> f64;

    /// Number of origin publishers alive at `t` (seed crash/recovery
    /// windows).
    fn origin_seeds(&self, t: f64) -> usize;

    /// Whether the tracker admits new entries at `t`.
    fn tracker_up(&self, t: f64) -> bool;

    /// The earliest time strictly after `t` at which the origin-seed count
    /// or tracker state changes, or `None` when neither ever changes
    /// again. The engine schedules a control event at each boundary.
    fn next_boundary(&self, t: f64) -> Option<f64>;

    /// Serializes the hook's state for checkpointing.
    ///
    /// Hooks are required to be deterministic pure functions of `t`
    /// (see the module docs), so there is no *mutable* state to carry
    /// across a snapshot — the bytes act as a fingerprint: the engine
    /// embeds a digest of them in every [`crate::Snapshot`] and
    /// [`crate::engine::Simulation::restore_with_hook`] refuses a hook
    /// whose state bytes do not digest to the same value. Implementations
    /// should return a stable encoding of their full parameterization
    /// (e.g. a `Debug` rendering); the default — an empty vector — only
    /// ever matches another hook that also declares no state.
    fn hook_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Whether this hook *replays* a recorded arrival trace instead of
    /// describing a stochastic arrival process. When true, the engine
    /// bypasses Lewis–Shedler thinning entirely: it walks
    /// [`Self::replay_arrival`] by index (the cursor is snapshotted, so
    /// resumed runs continue the trace bit-identically) and draws nothing
    /// from the arrival RNG stream. [`Self::arrival_rate`] and
    /// [`Self::arrival_rate_bound`] must still return a finite positive
    /// summary rate (the empirical one) for attachment validation and
    /// observability; [`Self::correlation`] is never used for sampling.
    fn replays(&self) -> bool {
        false
    }

    /// The `idx`-th recorded arrival — `(time, files)` with a non-empty,
    /// strictly increasing file set — or `None` past the end of the
    /// trace. Times must be non-decreasing in `idx`. Only consulted when
    /// [`Self::replays`] returns true.
    fn replay_arrival(&self, idx: u64) -> Option<(f64, Vec<FileId>)> {
        let _ = idx;
        None
    }

    /// The earliest time `≥ t` at which the tracker is up — where an
    /// arrival at `t` actually joins. The default walks
    /// [`Self::next_boundary`] and returns `+∞` if the tracker never
    /// recovers.
    fn tracker_release(&self, t: f64) -> f64 {
        let mut s = t;
        // Bounded walk: a hook with pathological boundary chatter yields
        // +∞ (drop the arrival) instead of hanging the engine.
        for _ in 0..4096 {
            if self.tracker_up(s) {
                return s;
            }
            match self.next_boundary(s) {
                Some(b) => s = b,
                None => return f64::INFINITY,
            }
        }
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Constant-rate hook with one tracker blackout window.
    struct Blackout {
        from: f64,
        until: f64,
    }

    impl ScenarioHook for Blackout {
        fn arrival_rate(&self, _t: f64) -> f64 {
            1.0
        }
        fn arrival_rate_bound(&self) -> f64 {
            1.0
        }
        fn correlation(&self, _t: f64) -> f64 {
            0.5
        }
        fn abort_rate(&self, _t: f64) -> f64 {
            0.0
        }
        fn abort_rate_bound(&self) -> f64 {
            0.0
        }
        fn origin_seeds(&self, _t: f64) -> usize {
            0
        }
        fn tracker_up(&self, t: f64) -> bool {
            !(self.from..self.until).contains(&t)
        }
        fn next_boundary(&self, t: f64) -> Option<f64> {
            [self.from, self.until].into_iter().find(|&b| b > t)
        }
    }

    #[test]
    fn release_passes_through_when_up() {
        let h = Blackout {
            from: 10.0,
            until: 20.0,
        };
        assert_eq!(h.tracker_release(5.0), 5.0);
        assert_eq!(h.tracker_release(25.0), 25.0);
    }

    #[test]
    fn release_defers_to_window_end() {
        let h = Blackout {
            from: 10.0,
            until: 20.0,
        };
        assert_eq!(h.tracker_release(15.0), 20.0);
        assert_eq!(h.tracker_release(10.0), 20.0);
    }

    /// A tracker that never comes back.
    struct Dead;

    impl ScenarioHook for Dead {
        fn arrival_rate(&self, _t: f64) -> f64 {
            1.0
        }
        fn arrival_rate_bound(&self) -> f64 {
            1.0
        }
        fn correlation(&self, _t: f64) -> f64 {
            0.5
        }
        fn abort_rate(&self, _t: f64) -> f64 {
            0.0
        }
        fn abort_rate_bound(&self) -> f64 {
            0.0
        }
        fn origin_seeds(&self, _t: f64) -> usize {
            0
        }
        fn tracker_up(&self, _t: f64) -> bool {
            false
        }
        fn next_boundary(&self, _t: f64) -> Option<f64> {
            None
        }
    }

    #[test]
    fn dead_tracker_releases_at_infinity() {
        assert_eq!(Dead.tracker_release(3.0), f64::INFINITY);
    }
}
