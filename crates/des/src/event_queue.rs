//! Indexed future-event queue: a binary min-heap with lazy invalidation.
//!
//! The seed engine found the next event by scanning every peer's pending
//! completion and expiry deadline on every iteration — O(peers) per event.
//! This queue replaces the scan with a `BinaryHeap` keyed on event time, so
//! selection is O(log n).
//!
//! Entries are never removed eagerly when a deadline changes. Instead each
//! entry carries a `stamp` drawn from a global monotone counter, and the
//! engine stores the stamp of the *current* entry for each (peer, slot)
//! completion and each peer expiry on the peer itself
//! ([`crate::peer::Peer::comp_stamp`] / [`crate::peer::Peer::expiry_stamp`]).
//! An entry whose stamp no longer matches is stale and is discarded when it
//! reaches the top of the heap ("lazy invalidation"). The engine
//! periodically compacts the heap when stale entries dominate.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Rank of a download-completion entry (fires before expiries at a tie).
pub const RANK_COMPLETION: u8 = 0;
/// Rank of a seed-expiry / departure entry.
pub const RANK_EXPIRY: u8 = 1;
/// Rank of an aggregate group-completion entry (aggregate scheduling mode;
/// `Entry::peer` carries the group id). Ties behind per-peer events so the
/// tie-break order stays deterministic; the two kinds never coexist in one
/// run, so the relative rank is a convention, not a semantic choice.
pub const RANK_AGG: u8 = 2;

/// One scheduled future event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Absolute simulation time at which the event fires.
    pub time: f64,
    /// Tie-break rank: [`RANK_COMPLETION`] before [`RANK_EXPIRY`] before
    /// [`RANK_AGG`].
    pub rank: u8,
    /// Slab index of the peer the event belongs to, or the group id for
    /// [`RANK_AGG`] entries.
    pub peer: u32,
    /// Slot index (completions only; 0 for expiries).
    pub slot: u32,
    /// Validity stamp; must match the peer's stored stamp to be live.
    pub stamp: u64,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Deterministic total order: time, then completions before
        // expiries, then peer/slot/stamp so equal-time events pop in a
        // reproducible sequence regardless of heap internals.
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.rank.cmp(&other.rank))
            .then_with(|| self.peer.cmp(&other.peer))
            .then_with(|| self.slot.cmp(&other.slot))
            .then_with(|| self.stamp.cmp(&other.stamp))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of [`Entry`] values ordered by [`Entry::cmp`].
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an entry.
    pub fn push(&mut self, e: Entry) {
        self.heap.push(Reverse(e));
    }

    /// The earliest entry, stale or not.
    pub fn peek(&self) -> Option<Entry> {
        self.heap.peek().map(|r| r.0)
    }

    /// Removes and returns the earliest entry.
    pub fn pop(&mut self) -> Option<Entry> {
        self.heap.pop().map(|r| r.0)
    }

    /// Number of entries, including stale ones.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Empties the queue, returning all entries in arbitrary order
    /// (used by the engine's compaction pass to drop stale entries).
    pub fn drain(&mut self) -> Vec<Entry> {
        std::mem::take(&mut self.heap)
            .into_vec()
            .into_iter()
            .map(|r| r.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(time: f64, rank: u8, peer: u32, stamp: u64) -> Entry {
        Entry {
            time,
            rank,
            peer,
            slot: 0,
            stamp,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(entry(3.0, RANK_EXPIRY, 0, 1));
        q.push(entry(1.0, RANK_EXPIRY, 1, 2));
        q.push(entry(2.0, RANK_COMPLETION, 2, 3));
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_on_rank_then_peer() {
        let mut q = EventQueue::new();
        q.push(entry(5.0, RANK_EXPIRY, 0, 1));
        q.push(entry(5.0, RANK_COMPLETION, 9, 2));
        q.push(entry(5.0, RANK_COMPLETION, 3, 3));
        let order: Vec<(u8, u32)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.rank, e.peer))
            .collect();
        assert_eq!(
            order,
            vec![(RANK_COMPLETION, 3), (RANK_COMPLETION, 9), (RANK_EXPIRY, 0)]
        );
    }

    #[test]
    fn agg_rank_ties_behind_per_peer_ranks() {
        let mut q = EventQueue::new();
        q.push(entry(5.0, RANK_AGG, 0, 1));
        q.push(entry(5.0, RANK_EXPIRY, 0, 2));
        q.push(entry(5.0, RANK_COMPLETION, 0, 3));
        let order: Vec<u8> = std::iter::from_fn(|| q.pop()).map(|e| e.rank).collect();
        assert_eq!(order, vec![RANK_COMPLETION, RANK_EXPIRY, RANK_AGG]);
    }

    #[test]
    fn drain_returns_everything() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(entry(i as f64, RANK_COMPLETION, i, i as u64 + 1));
        }
        let drained = q.drain();
        assert_eq!(drained.len(), 10);
        assert!(q.is_empty());
    }

    #[test]
    fn stale_entries_coexist_with_fresh_ones() {
        // The queue itself does not know about staleness; it just orders.
        // Two entries for the same (peer, slot) with different stamps must
        // both survive until popped.
        let mut q = EventQueue::new();
        q.push(entry(4.0, RANK_COMPLETION, 7, 1));
        q.push(entry(2.0, RANK_COMPLETION, 7, 2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().stamp, 2);
        assert_eq!(q.pop().unwrap().stamp, 1);
    }
}
