//! Bandwidth allocation: turns the current peer population into per-download
//! service rates, mirroring the fluid model's two service assumptions.
//!
//! For every subtorrent `f` the snapshot aggregates
//!
//! * `pool_real[f]` — bandwidth of real seeds (and MTSD/MTCD per-file
//!   seeds) serving `f`;
//! * `pool_virtual[f]` — bandwidth of CMFSD virtual seeds serving `f`;
//! * `weight[f]` — total download-capacity weight of the downloaders in
//!   `f` (`1/class` under concurrent schemes, `1` under sequential ones).
//!
//! A downloader of `f` with own TFT upload `u` and weight `w` then receives
//!
//! ```text
//! rate = η·u + (w / weight[f]) · (pool_real[f] + pool_virtual[f])
//! ```
//!
//! which conserves bandwidth exactly: summing over downloaders of `f`
//! reproduces `η·Σu + pool_real[f] + pool_virtual[f]`, the fluid model's
//! per-torrent service capacity.
//!
//! ## Demand-aware CMFSD seeding
//!
//! The fluid model of Eq. (5) pools all virtual-seed and real-seed
//! bandwidth *globally* over the torrent's downloaders. A physical peer can
//! only serve files it has finished, so this simulator realizes the pooling
//! by splitting each CMFSD seed's bandwidth across its finished subtorrents
//! in proportion to their current downloader weight (a seed never wastes
//! bandwidth on an empty subtorrent). A naive alternative — pinning each
//! virtual seed to one randomly chosen finished file — matches the fluid
//! model at moderate ρ but collapses at ρ → 0, where downloaders have no
//! TFT income and starve whenever their subtorrent happens to attract no
//! donor; the paper's model implicitly assumes the perfectly mixed
//! allocation implemented here.
//!
//! MTCD/MFCD virtual peers, by contrast, are genuinely separate peers in
//! separate (sub)torrents with a fixed `μ/i` each (that is the scheme), so
//! their seed bandwidth stays pinned to its own file.

use crate::config::SchemeKind;
use crate::peer::{Peer, Phase};
use btfluid_core::FluidParams;

/// One active (peer, file-slot) download with its current rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveDownload {
    /// Index into the engine's peer vector.
    pub peer_idx: usize,
    /// File slot within that peer.
    pub slot: usize,
    /// Total download rate (files per time unit).
    pub rate: f64,
    /// Portion of [`ActiveDownload::rate`] received from *virtual seeds*
    /// (CMFSD Adapt accounting).
    pub vs_rate: f64,
}

/// The rate snapshot between two events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RateSnapshot {
    /// Every active download and its rate.
    pub downloads: Vec<ActiveDownload>,
    /// Per-peer bandwidth currently donated through a virtual seed and
    /// actually consumed by someone (parallel to the engine's peer vector;
    /// CMFSD only).
    pub donations: Vec<f64>,
}

/// A seed capacity source: `bandwidth` spread over `files` (demand-aware
/// when `files` has several entries).
struct SeedSource {
    files: Vec<usize>,
    bandwidth: f64,
    is_virtual: bool,
}

/// What a peer contributes and consumes under the configured scheme.
struct PeerView {
    /// Active downloads: `(slot, tft_upload, weight)`.
    active: Vec<(usize, f64, f64)>,
    /// Seed capacity sources.
    seeds: Vec<SeedSource>,
}

fn view(peer: &Peer, scheme: SchemeKind, params: &FluidParams) -> PeerView {
    let mu = params.mu();
    let class = peer.class() as f64;
    let mut v = PeerView {
        active: Vec::new(),
        seeds: Vec::new(),
    };
    match scheme {
        SchemeKind::Mtsd => match peer.phase {
            Phase::Downloading => {
                let slot = peer.current_slot();
                v.active.push((slot, mu, 1.0));
            }
            Phase::SeedingFile(slot) => {
                v.seeds.push(SeedSource {
                    files: vec![peer.files[slot] as usize],
                    bandwidth: mu,
                    is_virtual: false,
                });
            }
            Phase::SeedingAll | Phase::Departed => {}
        },
        SchemeKind::Mtcd | SchemeKind::Mfcd => {
            if peer.phase == Phase::Departed {
                return v;
            }
            let share = mu / class;
            for slot in 0..peer.class() {
                if !peer.finished(slot) {
                    v.active.push((slot, share, 1.0 / class));
                } else if peer.seed_until[slot].is_some() {
                    // Finished slot: this virtual peer seeds its own
                    // torrent (MTCD: until its deadline; MFCD: until the
                    // user departs).
                    v.seeds.push(SeedSource {
                        files: vec![peer.files[slot] as usize],
                        bandwidth: share,
                        is_virtual: false,
                    });
                }
            }
        }
        SchemeKind::Cmfsd { .. } => match peer.phase {
            Phase::Downloading => {
                let slot = peer.current_slot();
                if peer.done_count() >= 1 {
                    // Partial seed: ρμ plays TFT in the current subtorrent,
                    // (1−ρ)μ serves the finished files demand-aware.
                    let rho = peer.rho;
                    v.active.push((slot, rho * mu, 1.0));
                    let donated = (1.0 - rho) * mu;
                    if donated > 0.0 {
                        let files = peer
                            .finished_slots()
                            .into_iter()
                            .map(|s| peer.files[s] as usize)
                            .collect();
                        v.seeds.push(SeedSource {
                            files,
                            bandwidth: donated,
                            is_virtual: true,
                        });
                    }
                } else {
                    v.active.push((slot, mu, 1.0));
                }
            }
            Phase::SeedingAll => {
                // Real seed: μ over all its files, demand-aware.
                v.seeds.push(SeedSource {
                    files: peer.files.iter().map(|&f| f as usize).collect(),
                    bandwidth: mu,
                    is_virtual: false,
                });
            }
            Phase::SeedingFile(_) | Phase::Departed => {}
        },
    }
    v
}

/// Builds the rate snapshot for the current population.
///
/// `origin_seeds` is the number of permanent publisher seeds: under the
/// multi-torrent schemes each of the `K` torrents has that many publishers
/// (bandwidth `μ` each, pinned to their torrent); under the multi-file
/// schemes the single torrent has that many publishers, each splitting `μ`
/// demand-aware over the `K` subtorrents.
pub fn compute_rates(
    peers: &[Peer],
    scheme: SchemeKind,
    params: &FluidParams,
    k: usize,
    origin_seeds: usize,
) -> RateSnapshot {
    let eta = params.eta();
    let mut weight = vec![0.0; k];
    let mut pool_real = vec![0.0; k];
    let mut pool_virtual = vec![0.0; k];

    // Pass 1: build views and downloader weights.
    let mut views = Vec::with_capacity(peers.len());
    for peer in peers {
        let v = view(peer, scheme, params);
        for &(slot, _u, w) in &v.active {
            weight[peer.files[slot] as usize] += w;
        }
        views.push(v);
    }

    // Pass 2: seed capacity flows where there is demand.
    let mut snapshot = RateSnapshot {
        downloads: Vec::new(),
        donations: vec![0.0; peers.len()],
    };
    if origin_seeds > 0 {
        let bw = origin_seeds as f64 * params.mu();
        match scheme {
            SchemeKind::Mtsd | SchemeKind::Mtcd => {
                // One publisher per torrent, pinned.
                for pool in pool_real.iter_mut() {
                    *pool += bw;
                }
            }
            SchemeKind::Mfcd | SchemeKind::Cmfsd { .. } => {
                // One multi-file publisher, demand-aware over subtorrents.
                let demand: f64 = weight.iter().sum();
                if demand > 0.0 {
                    for f in 0..k {
                        if weight[f] > 0.0 {
                            pool_real[f] += bw * weight[f] / demand;
                        }
                    }
                }
            }
        }
    }
    for (peer_idx, v) in views.iter().enumerate() {
        for src in &v.seeds {
            let demand: f64 = src.files.iter().map(|&f| weight[f]).sum();
            if demand <= 0.0 {
                // Nobody to serve: the capacity idles.
                continue;
            }
            for &f in &src.files {
                if weight[f] > 0.0 {
                    let share = src.bandwidth * weight[f] / demand;
                    if src.is_virtual {
                        pool_virtual[f] += share;
                    } else {
                        pool_real[f] += share;
                    }
                }
            }
            if src.is_virtual {
                snapshot.donations[peer_idx] += src.bandwidth;
            }
        }
    }

    // Pass 3: per-download rates.
    for (peer_idx, (peer, v)) in peers.iter().zip(&views).enumerate() {
        for &(slot, u, w) in &v.active {
            let f = peer.files[slot] as usize;
            let share = if weight[f] > 0.0 { w / weight[f] } else { 0.0 };
            let from_real = share * pool_real[f];
            let from_virtual = share * pool_virtual[f];
            snapshot.downloads.push(ActiveDownload {
                peer_idx,
                slot,
                rate: eta * u + from_real + from_virtual,
                vs_rate: from_virtual,
            });
        }
    }
    snapshot
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_core::FluidParams;

    fn params() -> FluidParams {
        FluidParams::paper() // μ = 0.02, η = 0.5, γ = 0.05
    }

    fn peer(id: u64, files: Vec<u16>) -> Peer {
        let order: Vec<usize> = (0..files.len()).collect();
        Peer::new(id, 0.0, files, order, 1.0)
    }

    #[test]
    fn lone_mtsd_downloader_gets_only_tft() {
        let peers = vec![peer(0, vec![3])];
        let snap = compute_rates(&peers, SchemeKind::Mtsd, &params(), 10, 0);
        assert_eq!(snap.downloads.len(), 1);
        let d = snap.downloads[0];
        assert_eq!(d.slot, 0);
        // η·μ = 0.01
        assert!((d.rate - 0.01).abs() < 1e-15);
        assert_eq!(d.vs_rate, 0.0);
    }

    #[test]
    fn mtsd_seed_feeds_downloader() {
        let mut seeder = peer(0, vec![3]);
        seeder.remaining[0] = 0.0;
        seeder.phase = Phase::SeedingFile(0);
        let downloader = peer(1, vec![3]);
        let peers = vec![seeder, downloader];
        let snap = compute_rates(&peers, SchemeKind::Mtsd, &params(), 10, 0);
        assert_eq!(snap.downloads.len(), 1);
        // η·μ + μ (full seed bandwidth to the only downloader).
        assert!((snap.downloads[0].rate - (0.01 + 0.02)).abs() < 1e-15);
    }

    #[test]
    fn mtsd_seed_in_other_torrent_does_not_help() {
        let mut seeder = peer(0, vec![4]);
        seeder.remaining[0] = 0.0;
        seeder.phase = Phase::SeedingFile(0);
        let downloader = peer(1, vec![3]);
        let peers = vec![seeder, downloader];
        let snap = compute_rates(&peers, SchemeKind::Mtsd, &params(), 10, 0);
        assert!((snap.downloads[0].rate - 0.01).abs() < 1e-15);
    }

    #[test]
    fn mtcd_splits_bandwidth_across_torrents() {
        let peers = vec![peer(0, vec![0, 1, 2, 3])];
        let snap = compute_rates(&peers, SchemeKind::Mtcd, &params(), 10, 0);
        assert_eq!(snap.downloads.len(), 4);
        for d in &snap.downloads {
            // η·μ/4 each.
            assert!((d.rate - 0.5 * 0.02 / 4.0).abs() < 1e-15);
        }
    }

    #[test]
    fn mtcd_seed_share_weighted_by_inverse_class() {
        // A seed with μ/2 serves torrent 0; two downloaders compete: one of
        // class 1 (weight 1) and one of class 4 (weight 1/4).
        let mut seeder = peer(0, vec![0, 5]);
        seeder.remaining[0] = 0.0;
        seeder.seed_until[0] = Some(100.0);
        let d1 = peer(1, vec![0]);
        let d4 = peer(2, vec![0, 1, 2, 3]);
        let peers = vec![seeder, d1, d4];
        let snap = compute_rates(&peers, SchemeKind::Mtcd, &params(), 10, 0);
        let pool = 0.02 / 2.0; // seeder of class 2
        let total_w = 1.0 + 0.25;
        let r1 = snap
            .downloads
            .iter()
            .find(|d| d.peer_idx == 1)
            .unwrap()
            .rate;
        let r4 = snap
            .downloads
            .iter()
            .find(|d| d.peer_idx == 2 && d.slot == 0)
            .unwrap()
            .rate;
        assert!((r1 - (0.5 * 0.02 + 1.0 / total_w * pool)).abs() < 1e-15);
        assert!((r4 - (0.5 * 0.02 / 4.0 + 0.25 / total_w * pool)).abs() < 1e-15);
        // The seeder still downloads its unfinished slot 1.
        assert!(snap
            .downloads
            .iter()
            .any(|d| d.peer_idx == 0 && d.slot == 1));
    }

    #[test]
    fn mtcd_seed_bandwidth_stays_pinned_to_its_torrent() {
        // An MTCD virtual seed of torrent 0 idles when torrent 0 has no
        // downloaders — it cannot redirect to torrent 5.
        let mut seeder = peer(0, vec![0, 5]);
        seeder.remaining = vec![0.0, 0.0];
        seeder.seed_until = vec![Some(100.0), None];
        seeder.phase = Phase::SeedingAll;
        let other = peer(1, vec![5]);
        let peers = vec![seeder, other];
        let snap = compute_rates(&peers, SchemeKind::Mtcd, &params(), 10, 0);
        let r = snap
            .downloads
            .iter()
            .find(|d| d.peer_idx == 1)
            .unwrap()
            .rate;
        assert!((r - 0.01).abs() < 1e-15, "only TFT: {r}");
    }

    #[test]
    fn cmfsd_first_file_full_tft() {
        let mut p = peer(0, vec![2, 7]);
        p.rho = 0.3;
        let peers = vec![p];
        let snap = compute_rates(&peers, SchemeKind::Cmfsd { rho: 0.3 }, &params(), 10, 0);
        // No finished file yet: P = 1 → η·μ.
        assert!((snap.downloads[0].rate - 0.01).abs() < 1e-15);
        assert_eq!(snap.donations[0], 0.0);
    }

    #[test]
    fn cmfsd_partial_seed_splits_upload() {
        // Peer A finished slot 0, downloading slot 1; its virtual seed can
        // only serve file 2, where peer B downloads.
        let mut a = peer(0, vec![2, 7]);
        a.rho = 0.25;
        a.remaining[0] = 0.0;
        a.completed_at[0] = Some(1.0);
        a.cursor = 1;
        let b = peer(1, vec![2]);
        let peers = vec![a, b];
        let snap = compute_rates(&peers, SchemeKind::Cmfsd { rho: 0.25 }, &params(), 10, 0);
        // A's download: η·ρμ (nobody serves file 7).
        let ra = snap.downloads.iter().find(|d| d.peer_idx == 0).unwrap();
        assert!((ra.rate - 0.5 * 0.25 * 0.02).abs() < 1e-15);
        // B gets η·μ TFT + A's donated (1−ρ)μ as vs_rate.
        let rb = snap.downloads.iter().find(|d| d.peer_idx == 1).unwrap();
        let donated = 0.75 * 0.02;
        assert!((rb.rate - (0.01 + donated)).abs() < 1e-15);
        assert!((rb.vs_rate - donated).abs() < 1e-15);
        assert!((snap.donations[0] - donated).abs() < 1e-15);
    }

    #[test]
    fn cmfsd_virtual_seed_is_demand_aware() {
        // A has finished files 2 and 7. File 2 has two downloaders, file 7
        // has one — the donated bandwidth splits 2:1 by weight.
        let mut a = peer(0, vec![2, 7, 9]);
        a.rho = 0.0;
        a.remaining[0] = 0.0;
        a.remaining[1] = 0.0;
        a.completed_at[0] = Some(1.0);
        a.completed_at[1] = Some(2.0);
        a.cursor = 2;
        let b = peer(1, vec![2]);
        let c = peer(2, vec![2]);
        let d = peer(3, vec![7]);
        let peers = vec![a, b, c, d];
        let snap = compute_rates(&peers, SchemeKind::Cmfsd { rho: 0.0 }, &params(), 10, 0);
        let donated = 0.02;
        // Demand: weight(file 2) = 2, weight(file 7) = 1 → 2/3 vs 1/3.
        let rb = snap.downloads.iter().find(|x| x.peer_idx == 1).unwrap();
        assert!((rb.vs_rate - donated * (2.0 / 3.0) / 2.0).abs() < 1e-15);
        let rd = snap.downloads.iter().find(|x| x.peer_idx == 3).unwrap();
        assert!((rd.vs_rate - donated * (1.0 / 3.0)).abs() < 1e-15);
        assert!((snap.donations[0] - donated).abs() < 1e-15);
    }

    #[test]
    fn cmfsd_idle_virtual_seed_not_counted_as_donation() {
        // A's only finished file has no downloaders: capacity idles and Δ
        // accounting sees no donation.
        let mut a = peer(0, vec![2, 7]);
        a.rho = 0.0;
        a.remaining[0] = 0.0;
        a.completed_at[0] = Some(1.0);
        a.cursor = 1;
        let peers = vec![a];
        let snap = compute_rates(&peers, SchemeKind::Cmfsd { rho: 0.0 }, &params(), 10, 0);
        assert_eq!(snap.donations[0], 0.0);
    }

    #[test]
    fn cmfsd_real_seed_demand_aware_over_its_files() {
        let mut s = peer(0, vec![2, 7]);
        s.remaining = vec![0.0, 0.0];
        s.completed_at = vec![Some(1.0), Some(2.0)];
        s.phase = Phase::SeedingAll;
        let b = peer(1, vec![2]);
        let peers = vec![s, b];
        let snap = compute_rates(&peers, SchemeKind::Cmfsd { rho: 0.5 }, &params(), 10, 0);
        // Only file 2 has demand: the WHOLE μ goes there.
        let rb = snap.downloads.iter().find(|d| d.peer_idx == 1).unwrap();
        assert!((rb.rate - (0.01 + 0.02)).abs() < 1e-15);
        assert_eq!(rb.vs_rate, 0.0);
    }

    #[test]
    fn bandwidth_conservation_per_subtorrent() {
        // Sum of downloader rates in a subtorrent equals η·Σ uploads + pools.
        let mut a = peer(0, vec![0, 1, 2]);
        a.rho = 0.4;
        a.remaining[0] = 0.0;
        a.completed_at[0] = Some(1.0);
        a.cursor = 1;
        let b = peer(1, vec![1]);
        let c = peer(2, vec![1, 2]);
        let peers = vec![a, b, c];
        let snap = compute_rates(&peers, SchemeKind::Cmfsd { rho: 0.4 }, &params(), 10, 0);
        // Total received must equal η·ΣTFT + Σ consumed donations.
        let total_received: f64 = snap.downloads.iter().map(|d| d.rate).sum();
        let eta = 0.5;
        let tft = eta * (0.4 * 0.02 + 0.02 + 0.02);
        let donations: f64 = snap.donations.iter().sum();
        assert!(
            (total_received - (tft + donations)).abs() < 1e-12,
            "received {total_received} vs capacity {}",
            tft + donations
        );
    }

    #[test]
    fn departed_peers_contribute_nothing() {
        let mut p = peer(0, vec![1]);
        p.phase = Phase::Departed;
        let snap = compute_rates(&[p], SchemeKind::Mtcd, &params(), 10, 0);
        assert!(snap.downloads.is_empty());
    }

    #[test]
    fn mfcd_finished_slots_keep_seeding_until_departure() {
        let mut p = peer(0, vec![0, 1]);
        p.remaining[0] = 0.0;
        p.completed_at[0] = Some(5.0);
        p.seed_until[0] = Some(f64::INFINITY); // engine sets departure later
        let q = peer(1, vec![0]);
        let peers = vec![p, q];
        let snap = compute_rates(&peers, SchemeKind::Mfcd, &params(), 10, 0);
        let rq = snap
            .downloads
            .iter()
            .find(|d| d.peer_idx == 1)
            .unwrap()
            .rate;
        // q: η·μ + the virtual seed's μ/2.
        assert!((rq - (0.01 + 0.01)).abs() < 1e-15);
    }
}
