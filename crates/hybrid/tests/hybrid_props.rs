//! Property tests for the hybrid membrane and policy:
//! fluid→DES→fluid round-trips conserve class masses, sampling is
//! deterministic per seed, and hysteresis bands never chatter.

use btfluid_des::SchemeKind;
use btfluid_hybrid::{FluidModel, Regime, SwitchPolicy, HANDOFF_STREAM};
use btfluid_numkit::dist::Exponential;
use btfluid_numkit::rng::Xoshiro256StarStar;
use btfluid_scenario::registry;
use proptest::prelude::*;

fn model(scheme: SchemeKind) -> FluidModel {
    FluidModel::new(&registry::flash_crowd(), scheme).unwrap()
}

fn gamma() -> Exponential {
    Exponential::new(registry::flash_crowd().params.gamma()).unwrap()
}

/// Random non-negative fluid masses, enough components for either model
/// (MTCD uses 20, MTSD 110 at K = 10).
fn masses() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..6.0, 110)
}

proptest! {
    /// fold(sample(m)) reproduces the realized (quantized) masses to
    /// 1e-9 for both schemes — no user is created or destroyed crossing
    /// the membrane.
    #[test]
    fn round_trip_conserves_class_masses(raw in masses(), seed in any::<u64>()) {
        for scheme in [SchemeKind::Mtcd, SchemeKind::Mtsd] {
            let m = model(scheme);
            let state = &raw[..m.dim()];
            let mut rng = Xoshiro256StarStar::stream(seed, HANDOFF_STREAM);
            let (peers, realized) = m.sample(state, &mut rng, &gamma());
            let folded = m.fold(&peers);
            prop_assert_eq!(folded.len(), realized.len());
            for (idx, (&f, &r)) in folded.iter().zip(realized.iter()).enumerate() {
                prop_assert!(
                    (f - r).abs() < 1e-9,
                    "{:?} component {}: fold {} vs realized {}",
                    scheme, idx, f, r
                );
            }
            // Quantization never moves a mass by more than half a user.
            for (idx, (&r, &s)) in realized.iter().zip(state.iter()).enumerate() {
                prop_assert!(
                    (r - s).abs() <= 0.5 + 1e-9,
                    "{:?} component {}: realized {} vs requested {}",
                    scheme, idx, r, s
                );
            }
        }
    }

    /// The same seed samples the same population, peer for peer; the
    /// stream index is dedicated so this holds independently of any
    /// engine activity.
    #[test]
    fn sampling_is_deterministic_per_seed(raw in masses(), seed in any::<u64>()) {
        for scheme in [SchemeKind::Mtcd, SchemeKind::Mtsd] {
            let m = model(scheme);
            let state = &raw[..m.dim()];
            let mut a = Xoshiro256StarStar::stream(seed, HANDOFF_STREAM);
            let mut b = Xoshiro256StarStar::stream(seed, HANDOFF_STREAM);
            let (pa, ra) = m.sample(state, &mut a, &gamma());
            let (pb, rb) = m.sample(state, &mut b, &gamma());
            prop_assert_eq!(ra, rb);
            prop_assert_eq!(pa.len(), pb.len());
            for (x, y) in pa.iter().zip(pb.iter()) {
                prop_assert_eq!(format!("{:?}", x), format!("{:?}", y));
            }
        }
    }

    /// A population path strictly inside the hysteresis band (lo, hi)
    /// never flips the regime — the no-chatter guarantee.
    #[test]
    fn hysteresis_band_never_chatters(path in prop::collection::vec(any::<u8>(), 1..40)) {
        let program = registry::flash_crowd();
        let policy = SwitchPolicy::from_program(&program, 0.1).unwrap();
        let (lo, hi) = (policy.lo(), policy.hi());
        for start in [Regime::Fluid, Regime::Discrete] {
            let mut regime = start;
            for (step, &raw) in path.iter().enumerate() {
                // Map the byte strictly inside (lo, hi).
                let pop = lo + (hi - lo) * (f64::from(raw) + 1.0) / 257.0;
                prop_assert!(pop > lo && pop < hi);
                let t = step as f64 * program.record_every;
                let decided = policy.decide(t, pop, regime);
                prop_assert_eq!(
                    decided, regime,
                    "switch inside the band at t = {} pop = {}", t, pop
                );
                regime = decided;
            }
        }
    }

    /// Inside a forced window the decision is discrete no matter the
    /// population or prior regime.
    #[test]
    fn forced_windows_always_decide_discrete(pop in 0.0f64..1e7) {
        let program = registry::by_name("seed_outage").expect("registry scenario");
        let policy = SwitchPolicy::from_program(&program, 0.1).unwrap();
        prop_assert!(!policy.forced().is_empty());
        for &(s, e) in policy.forced() {
            for t in [s, 0.5 * (s + e), e - 1e-6] {
                prop_assert_eq!(policy.decide(t, pop, Regime::Fluid), Regime::Discrete);
                prop_assert_eq!(policy.decide(t, pop, Regime::Discrete), Regime::Discrete);
            }
        }
    }
}
