//! Snapshot v4 round-trips: a hybrid run stopped at any decision
//! boundary and resumed from its snapshot finishes bit-identical to the
//! uninterrupted run — across regimes, schemes, and both DES rate modes.

use btfluid_des::SchemeKind;
use btfluid_hybrid::{amplified_flash_crowd, HybridConfig, HybridOutcome, HybridRunner, Regime};

fn cfg(scheme: SchemeKind, aggregate: bool) -> HybridConfig {
    HybridConfig {
        program: amplified_flash_crowd(512.0, 0.005),
        scheme,
        seed: 29,
        tol: 0.1,
        aggregate,
    }
}

fn assert_bit_identical(a: &HybridOutcome, b: &HybridOutcome) {
    assert_eq!(a.class_means.len(), b.class_means.len());
    for (i, (x, y)) in a.class_means.iter().zip(b.class_means.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "class {} mean differs", i + 1);
    }
    assert_eq!(a.des_events, b.des_events);
    assert_eq!(a.fluid_steps, b.fluid_steps);
    assert_eq!(a.handoffs, b.handoffs);
    assert_eq!(a.final_t.to_bits(), b.final_t.to_bits());
}

/// Runs uninterrupted; then re-runs stopping at boundary `stop_at`,
/// snapshotting, resuming into a fresh runner, and finishing. Both
/// outcomes must match bit for bit.
fn round_trip(cfg: HybridConfig, stop_at: usize) {
    let reference = HybridRunner::run(cfg.clone()).unwrap();

    let mut victim = HybridRunner::new(cfg.clone()).unwrap();
    let mut steps = 0usize;
    let mut more = true;
    while more && steps < stop_at {
        more = victim.step_boundary().unwrap();
        steps += 1;
    }
    let bytes = victim.snapshot();
    drop(victim);

    let mut resumed = HybridRunner::resume(cfg, &bytes).unwrap();
    while resumed.step_boundary().unwrap() {}
    assert_bit_identical(&reference, &resumed.finish());
}

#[test]
fn resume_mid_discrete_segment_is_bit_identical() {
    // Boundary 1 is early: the run is still in its initial discrete
    // ramp, so the snapshot embeds a live engine.
    round_trip(cfg(SchemeKind::Mtcd, true), 1);
    round_trip(cfg(SchemeKind::Mtsd, false), 1);
}

#[test]
fn resume_mid_fluid_stretch_is_bit_identical() {
    // By mid-run the population has crossed hi and the state is fluid.
    let c = cfg(SchemeKind::Mtcd, true);
    let probe = {
        let mut r = HybridRunner::new(c.clone()).unwrap();
        let mut at_fluid = None;
        let mut n = 0usize;
        loop {
            let more = r.step_boundary().unwrap();
            n += 1;
            if r.regime() == Regime::Fluid && at_fluid.is_none() {
                at_fluid = Some(n + 2);
            }
            if !more {
                break;
            }
        }
        at_fluid.expect("λ₀ = 512 must reach the fluid regime")
    };
    round_trip(c, probe);
    round_trip(cfg(SchemeKind::Mtsd, true), probe);
}

#[test]
fn resume_at_every_early_boundary_is_bit_identical() {
    for stop_at in [0, 2, 4, 7] {
        round_trip(cfg(SchemeKind::Mtsd, true), stop_at);
    }
}

#[test]
fn snapshot_of_resumed_runner_matches_original_continuation() {
    // Chain two resumes: snapshot at 3, resume, snapshot at 6, resume.
    let c = cfg(SchemeKind::Mtcd, false);
    let reference = HybridRunner::run(c.clone()).unwrap();

    let mut first = HybridRunner::new(c.clone()).unwrap();
    for _ in 0..3 {
        first.step_boundary().unwrap();
    }
    let snap1 = first.snapshot();
    let mut second = HybridRunner::resume(c.clone(), &snap1).unwrap();
    for _ in 0..3 {
        second.step_boundary().unwrap();
    }
    let snap2 = second.snapshot();
    let mut third = HybridRunner::resume(c, &snap2).unwrap();
    while third.step_boundary().unwrap() {}
    assert_bit_identical(&reference, &third.finish());
}
