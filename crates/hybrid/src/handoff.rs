//! Bidirectional state handoff between the DES peer slab and the fluid
//! ODE state.
//!
//! **DES → fluid (fold).** Each live peer is projected onto the fluid
//! state exactly as the engine's own counters would count it:
//!
//! - MTCD's per-torrent symmetric state `[x₁..x_K, y₁..y_K]` counts
//!   download *pairs* and lingering per-file seeds divided by `K` (a
//!   class-`i` downloader holds `i − done` open downloads spread over
//!   `K` symmetric torrents).
//! - MTSD's staged state counts whole users: a class-`i` peer
//!   downloading its `j`-th file adds one to `x_{i,j}`, a peer seeding
//!   its `j`-th file adds one to `s_{i,j}`.
//!
//! **Fluid → DES (sample).** Each fluid mass is rounded to an integer
//! peer count and that many peers are materialized with file sets and
//! orders drawn on the *handoff* RNG stream, progress drawn uniform on
//! `(0, 1]` (the mean-residual-work distribution of a processor-shared
//! download), and seed timers drawn `Exp(γ)`. Sampling returns the
//! *realized* (quantized) masses alongside the peers so the round-trip
//! `fold(sample(m)) == realized(m)` holds to float-sum accuracy — the
//! conservation property the proptests pin down.

use crate::policy::Regime;
use btfluid_des::peer::{Peer, Phase};
use btfluid_des::SchemeKind;
use btfluid_numkit::dist::Exponential;
use btfluid_numkit::ode::{FixedStep, OdeSystem, Rk4};
use btfluid_numkit::rng::RngCore;
use btfluid_numkit::NumError;
use btfluid_scenario::{ScenarioProgram, ScheduledMtcd, ScheduledMtsd};
use btfluid_workload::{random_order, uniform_subset};

/// One recorded regime switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandoffRecord {
    /// Simulated time of the switch.
    pub t: f64,
    /// The regime switched *to*.
    pub to: Regime,
    /// Total downloading population at the switch.
    pub pop: f64,
}

/// The scheme ODE a hybrid run integrates, plus the handoff projections.
#[derive(Debug, Clone)]
pub enum FluidModel {
    /// Per-torrent symmetric MTCD state, `2K` components.
    Mtcd(ScheduledMtcd),
    /// System-wide staged MTSD state, `K(K+1)` components.
    Mtsd(ScheduledMtsd),
}

impl FluidModel {
    /// Builds the model for `scheme` from the program's schedules.
    ///
    /// # Errors
    /// Rejects schemes without a scheduled fluid counterpart (MFCD and
    /// CMFSD) and propagates program validation failures.
    pub fn new(program: &ScenarioProgram, scheme: SchemeKind) -> Result<Self, NumError> {
        match scheme {
            SchemeKind::Mtcd => Ok(Self::Mtcd(ScheduledMtcd::from_program(program)?)),
            SchemeKind::Mtsd => Ok(Self::Mtsd(ScheduledMtsd::from_program(program)?)),
            other => Err(NumError::InvalidInput {
                what: "FluidModel::new",
                detail: format!(
                    "hybrid runs need a scheduled fluid model; {} has none (use mtcd or mtsd)",
                    other.name()
                ),
            }),
        }
    }

    /// Number of classes `K`.
    pub fn k(&self) -> usize {
        match self {
            Self::Mtcd(m) => m.k(),
            Self::Mtsd(m) => m.k(),
        }
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        match self {
            Self::Mtcd(m) => m.dim(),
            Self::Mtsd(m) => m.dim(),
        }
    }

    /// Advances `state` from `t` by `h` with one classical RK4 step.
    pub fn rk4_step(&self, t: f64, state: &mut [f64], h: f64) {
        match self {
            Self::Mtcd(m) => Rk4.step(m, t, state, h),
            Self::Mtsd(m) => Rk4.step(m, t, state, h),
        }
    }

    /// Per-class downloading *users* (index `class − 1`), clamped at
    /// zero. MTCD's per-torrent pairs convert via `K·xᵢ/i`; MTSD's
    /// stages sum directly.
    pub fn class_downloaders(&self, state: &[f64], out: &mut [f64]) {
        match self {
            Self::Mtcd(m) => {
                let k = m.k();
                for (i, slot) in out.iter_mut().enumerate().take(k) {
                    *slot = k as f64 * state[i].max(0.0) / (i + 1) as f64;
                }
            }
            Self::Mtsd(m) => m.class_downloaders(state, out),
        }
    }

    /// Total downloading users.
    pub fn total_downloaders(&self, state: &[f64]) -> f64 {
        let mut out = vec![0.0; self.k()];
        self.class_downloaders(state, &mut out);
        out.iter().sum()
    }

    /// Folds a DES peer slab into fluid state (DES → fluid handoff).
    /// Departed tombstones are skipped; everything else projects exactly
    /// as the engine's pair/seed counters would count it.
    pub fn fold(&self, peers: &[Peer]) -> Vec<f64> {
        let mut state = vec![0.0; self.dim()];
        match self {
            Self::Mtcd(m) => {
                let k = m.k() as f64;
                for p in peers {
                    if p.phase == Phase::Departed {
                        continue;
                    }
                    let class = p.class();
                    if p.phase == Phase::Downloading {
                        state[class - 1] += (class - p.done_count()) as f64 / k;
                    }
                    let lingering = p.seed_until.iter().flatten().count();
                    state[m.k() + class - 1] += lingering as f64 / k;
                }
            }
            Self::Mtsd(m) => {
                let half = m.dim() / 2;
                for p in peers {
                    match p.phase {
                        Phase::Downloading => {
                            // Stage j = files finished + 1.
                            state[m.stage_index(p.class(), p.done_count() + 1)] += 1.0;
                        }
                        Phase::SeedingFile(_) => {
                            // Seeding the done_count()-th finished file.
                            state[half + m.stage_index(p.class(), p.done_count())] += 1.0;
                        }
                        Phase::SeedingAll | Phase::Departed => {}
                    }
                }
            }
        }
        state
    }

    /// Samples a peer population from fluid state (fluid → DES handoff).
    ///
    /// All randomness comes from `rng` — the dedicated handoff stream —
    /// so engine streams never advance and same-seed runs sample the
    /// same population. Seed timers are drawn `Exp(γ)` relative to the
    /// new DES segment's local `t = 0`; injected peers carry arrival
    /// `−1.0` so statistics windows never count them as arrivals.
    ///
    /// Returns the peers and the realized (integer-quantized) fluid
    /// masses actually represented.
    pub fn sample<R: RngCore + ?Sized>(
        &self,
        state: &[f64],
        rng: &mut R,
        gamma: &Exponential,
    ) -> (Vec<Peer>, Vec<f64>) {
        let mut peers = Vec::new();
        let mut realized = vec![0.0; self.dim()];
        match self {
            Self::Mtcd(m) => {
                let k = m.k();
                for class in 1..=k {
                    // Downloaders: x_i per-torrent pairs ↔ K·x_i/i users,
                    // each holding `class` fresh concurrent downloads.
                    let n_dl = (k as f64 * state[class - 1].max(0.0) / class as f64).round();
                    for _ in 0..n_dl as usize {
                        let files = uniform_subset(rng, k, class);
                        let order = random_order(rng, class);
                        let mut p = Peer::new(0, -1.0, files, order, 1.0);
                        for slot in 0..class {
                            p.remaining[slot] = rng.next_f64_open();
                        }
                        realized[class - 1] += class as f64 / k as f64;
                        peers.push(p);
                    }
                    // Seeds: y_i per-torrent seeds ↔ K·y_i/i all-done
                    // users, each lingering on every file.
                    let n_sd = (k as f64 * state[k + class - 1].max(0.0) / class as f64).round();
                    for _ in 0..n_sd as usize {
                        let files = uniform_subset(rng, k, class);
                        let order = random_order(rng, class);
                        let mut p = Peer::new(0, -1.0, files, order, 1.0);
                        for slot in 0..class {
                            p.remaining[slot] = 0.0;
                            p.completed_at[slot] = Some(0.0);
                            let dur = gamma.sample(rng);
                            p.seed_until[slot] = Some(dur);
                            p.seed_duration[slot] = dur;
                        }
                        p.cursor = class;
                        p.phase = Phase::SeedingAll;
                        realized[k + class - 1] += class as f64 / k as f64;
                        peers.push(p);
                    }
                }
            }
            Self::Mtsd(m) => {
                let k = m.k();
                let half = m.dim() / 2;
                for class in 1..=k {
                    for stage in 1..=class {
                        let idx = m.stage_index(class, stage);
                        // Downloading stage j: j−1 files finished, the
                        // j-th in progress with uniform residual work.
                        let n_dl = state[idx].max(0.0).round();
                        for _ in 0..n_dl as usize {
                            let files = uniform_subset(rng, k, class);
                            let order = random_order(rng, class);
                            let mut p = Peer::new(0, -1.0, files, order, 1.0);
                            for pos in 0..stage - 1 {
                                let slot = p.order[pos];
                                p.remaining[slot] = 0.0;
                                p.completed_at[slot] = Some(0.0);
                            }
                            p.cursor = stage - 1;
                            let slot = p.order[p.cursor];
                            p.remaining[slot] = rng.next_f64_open();
                            realized[idx] += 1.0;
                            peers.push(p);
                        }
                        // Seeding stage j: j files finished, lingering on
                        // the j-th before moving to file j+1 (or leaving).
                        let n_sd = state[half + idx].max(0.0).round();
                        for _ in 0..n_sd as usize {
                            let files = uniform_subset(rng, k, class);
                            let order = random_order(rng, class);
                            let mut p = Peer::new(0, -1.0, files, order, 1.0);
                            for pos in 0..stage {
                                let slot = p.order[pos];
                                p.remaining[slot] = 0.0;
                                p.completed_at[slot] = Some(0.0);
                            }
                            p.cursor = stage - 1;
                            let slot = p.order[p.cursor];
                            let dur = gamma.sample(rng);
                            p.seed_until[slot] = Some(dur);
                            p.seed_duration[slot] = dur;
                            p.phase = Phase::SeedingFile(slot);
                            realized[half + idx] += 1.0;
                            peers.push(p);
                        }
                    }
                }
            }
        }
        (peers, realized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_numkit::rng::Xoshiro256StarStar;
    use btfluid_scenario::registry;

    fn model(scheme: SchemeKind) -> FluidModel {
        FluidModel::new(&registry::flash_crowd(), scheme).unwrap()
    }

    #[test]
    fn unsupported_schemes_rejected() {
        let program = registry::flash_crowd();
        assert!(FluidModel::new(&program, SchemeKind::Mfcd).is_err());
        assert!(FluidModel::new(&program, SchemeKind::Cmfsd { rho: 0.5 }).is_err());
    }

    #[test]
    fn mtcd_round_trip_conserves_mass() {
        let m = model(SchemeKind::Mtcd);
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let gamma = Exponential::new(0.05).unwrap();
        let mut state = vec![0.0; m.dim()];
        for (i, s) in state.iter_mut().enumerate() {
            *s = (i as f64 * 0.37 + 0.9) % 4.0;
        }
        let (peers, realized) = m.sample(&state, &mut rng, &gamma);
        let folded = m.fold(&peers);
        for (idx, (&f, &r)) in folded.iter().zip(realized.iter()).enumerate() {
            assert!(
                (f - r).abs() < 1e-9,
                "component {idx}: fold {f}, realized {r}"
            );
        }
    }

    #[test]
    fn mtsd_round_trip_is_exact_counts() {
        let m = model(SchemeKind::Mtsd);
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let gamma = Exponential::new(0.05).unwrap();
        let mut state = vec![0.0; m.dim()];
        for (i, s) in state.iter_mut().enumerate() {
            *s = (i as f64 * 1.13) % 3.0;
        }
        let (peers, realized) = m.sample(&state, &mut rng, &gamma);
        let folded = m.fold(&peers);
        assert_eq!(folded, realized, "stage counts are integers — exact");
    }

    #[test]
    fn sampled_population_matches_downloader_projection() {
        let m = model(SchemeKind::Mtsd);
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let gamma = Exponential::new(0.05).unwrap();
        let mut state = vec![0.0; m.dim()];
        state[m.dim() / 4] = 12.0;
        let (peers, realized) = m.sample(&state, &mut rng, &gamma);
        let downloading = peers
            .iter()
            .filter(|p| p.phase == Phase::Downloading)
            .count();
        assert_eq!(downloading as f64, m.total_downloaders(&realized));
    }
}
