//! The multiscale driver: one clock, two engines.
//!
//! A [`HybridRunner`] walks a grid of *decision boundaries* (every
//! `record_every`, plus forced-window edges) from 0 to the horizon. Between
//! boundaries it advances whichever engine the [`SwitchPolicy`] last
//! selected — the scheme ODE for large populations, the DES for small or
//! critical ones — and accumulates per-class downloading-user time
//! integrals over the stationary window `[warmup, horizon]` in *global*
//! time, so the reported means are engine-agnostic. At each boundary the
//! policy re-decides; on a change the full system state crosses the
//! fluid↔DES membrane via [`FluidModel::fold`] / [`FluidModel::sample`].
//!
//! Discrete stretches run as one engine instance with a *shifted* scenario
//! hook (segment-local `t = 0` maps to the global segment start), a
//! deterministic per-segment seed, and no statistics window of their own —
//! the driver does all accounting. Handoff randomness lives on a dedicated
//! stream ([`HANDOFF_STREAM`]) so segment engines stay bit-reproducible.

use crate::handoff::{FluidModel, HandoffRecord};
use crate::policy::{Regime, SwitchPolicy};
use btfluid_des::{DesConfig, DesError, ScenarioHook, SchemeKind, Simulation};
use btfluid_numkit::dist::Exponential;
use btfluid_numkit::rng::{SplitMix64, Xoshiro256StarStar};
use btfluid_numkit::NumError;
use btfluid_scenario::{registry, ProgramHook, ScenarioProgram};
use btfluid_telemetry::{FlightKind, FlightRecord, SharedRecorder, SharedSink};
use std::fmt;
use std::time::Instant;

/// RNG stream index of the handoff sampler (engine streams use 0–3).
pub const HANDOFF_STREAM: u64 = 16;

/// Everything a hybrid run is parameterized by. The config (not any
/// derived state) is what the snapshot digest covers.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// The scenario to run.
    pub program: ScenarioProgram,
    /// Scheme — MTCD or MTSD (the schemes with scheduled fluid models).
    pub scheme: SchemeKind,
    /// Master seed; segment and handoff streams derive from it.
    pub seed: u64,
    /// Relative error budget in `(0, 1]`; maps to hysteresis thresholds
    /// `hi = ⌈1/tol²⌉`, `lo = hi/2`.
    pub tol: f64,
    /// Run DES segments in class-aggregated mode (PR 6) instead of
    /// incremental per-peer mode.
    pub aggregate: bool,
}

/// Errors a hybrid run can surface.
#[derive(Debug)]
pub enum HybridError {
    /// Invalid configuration or numerics.
    Num(NumError),
    /// A DES segment failed (checked-mode invariant, restore mismatch).
    Des(DesError),
    /// A hybrid snapshot failed to decode.
    Snapshot(String),
}

impl fmt::Display for HybridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Num(e) => write!(f, "{e}"),
            Self::Des(e) => write!(f, "{e}"),
            Self::Snapshot(msg) => write!(f, "hybrid snapshot: {msg}"),
        }
    }
}

impl std::error::Error for HybridError {}

impl From<NumError> for HybridError {
    fn from(e: NumError) -> Self {
        Self::Num(e)
    }
}

impl From<DesError> for HybridError {
    fn from(e: DesError) -> Self {
        Self::Des(e)
    }
}

/// What a finished hybrid run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridOutcome {
    /// Time-averaged downloading users per class over
    /// `[warmup, horizon]` (index `class − 1`).
    pub class_means: Vec<f64>,
    /// Every regime switch, in time order.
    pub handoffs: Vec<HandoffRecord>,
    /// DES events dispatched across all discrete segments.
    pub des_events: u64,
    /// RK4 substeps taken across all fluid stretches.
    pub fluid_steps: u64,
    /// Final simulated time (the horizon).
    pub final_t: f64,
}

impl HybridOutcome {
    /// Total time-averaged downloading users.
    pub fn total_mean(&self) -> f64 {
        self.class_means.iter().sum()
    }
}

/// A [`ScenarioHook`] that replays another hook on a shifted time axis:
/// segment-local `t` maps to global `t + offset`. Pure function of time,
/// exactly as the engine requires; the fingerprint state appends the
/// offset so a restore with the wrong segment anchor is rejected.
#[derive(Debug)]
pub struct ShiftedHook {
    inner: ProgramHook,
    offset: f64,
}

impl ShiftedHook {
    /// Wraps `inner`, mapping local time `t` to `t + offset`.
    pub fn new(inner: ProgramHook, offset: f64) -> Self {
        Self { inner, offset }
    }
}

impl ScenarioHook for ShiftedHook {
    fn arrival_rate(&self, t: f64) -> f64 {
        self.inner.arrival_rate(t + self.offset)
    }

    fn arrival_rate_bound(&self) -> f64 {
        self.inner.arrival_rate_bound()
    }

    fn correlation(&self, t: f64) -> f64 {
        self.inner.correlation(t + self.offset)
    }

    fn abort_rate(&self, t: f64) -> f64 {
        self.inner.abort_rate(t + self.offset)
    }

    fn abort_rate_bound(&self) -> f64 {
        self.inner.abort_rate_bound()
    }

    fn origin_seeds(&self, t: f64) -> usize {
        self.inner.origin_seeds(t + self.offset)
    }

    fn tracker_up(&self, t: f64) -> bool {
        self.inner.tracker_up(t + self.offset)
    }

    fn next_boundary(&self, t: f64) -> Option<f64> {
        self.inner
            .next_boundary(t + self.offset)
            .map(|b| b - self.offset)
    }

    fn tracker_release(&self, t: f64) -> f64 {
        self.inner.tracker_release(t + self.offset) - self.offset
    }

    fn hook_state(&self) -> Vec<u8> {
        let mut state = self.inner.hook_state();
        state.extend_from_slice(&self.offset.to_bits().to_le_bytes());
        state
    }
}

/// Derives the engine seed for discrete segment `segment` of a run.
fn segment_seed(master: u64, segment: u64) -> u64 {
    SplitMix64::new(master ^ segment.wrapping_mul(0x9E37_79B9_7F4A_7C15)).split()
}

/// The multiscale driver. See the module docs for the regime model.
pub struct HybridRunner {
    cfg: HybridConfig,
    policy: SwitchPolicy,
    model: FluidModel,
    gamma: Exponential,
    boundaries: Vec<f64>,
    pub(crate) next_boundary: usize,
    pub(crate) t: f64,
    pub(crate) regime: Regime,
    pub(crate) fluid: Vec<f64>,
    pub(crate) sim: Option<Simulation>,
    pub(crate) seg_t0: f64,
    pub(crate) seg_seed: u64,
    pub(crate) segment: u64,
    pub(crate) rng_handoff: Xoshiro256StarStar,
    pub(crate) integrals: Vec<f64>,
    pub(crate) des_events: u64,
    pub(crate) fluid_steps: u64,
    pub(crate) handoffs: Vec<HandoffRecord>,
    sink: Option<SharedSink>,
    flight: Option<SharedRecorder>,
    fluid_h: f64,
    scratch: Vec<f64>,
}

impl HybridRunner {
    /// Builds a runner at `t = 0` in the discrete regime (the swarm
    /// starts empty — below any threshold).
    ///
    /// # Errors
    /// Propagates program/scheme/tolerance validation failures.
    pub fn new(cfg: HybridConfig) -> Result<Self, HybridError> {
        let policy = SwitchPolicy::from_program(&cfg.program, cfg.tol)?;
        let model = FluidModel::new(&cfg.program, cfg.scheme)?;
        let gamma = Exponential::new(cfg.program.params.gamma())?;
        let boundaries = decision_boundaries(&cfg.program, &policy);
        let k = model.k();
        let dim = model.dim();
        let fluid_h = (cfg.program.record_every / 8.0).min(0.5);
        let rng_handoff = Xoshiro256StarStar::stream(cfg.seed, HANDOFF_STREAM);
        Ok(Self {
            cfg,
            policy,
            model,
            gamma,
            boundaries,
            next_boundary: 0,
            t: 0.0,
            regime: Regime::Discrete,
            fluid: vec![0.0; dim],
            sim: None,
            seg_t0: 0.0,
            seg_seed: 0,
            segment: 0,
            rng_handoff,
            integrals: vec![0.0; k],
            des_events: 0,
            fluid_steps: 0,
            handoffs: Vec::new(),
            sink: None,
            flight: None,
            fluid_h,
            scratch: vec![0.0; k],
        })
    }

    /// Convenience: build, run to the horizon, finish.
    ///
    /// # Errors
    /// Propagates construction and stepping failures.
    pub fn run(cfg: HybridConfig) -> Result<HybridOutcome, HybridError> {
        let mut runner = Self::new(cfg)?;
        while runner.step_boundary()? {}
        Ok(runner.finish())
    }

    /// The configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.cfg
    }

    /// The switching policy in force.
    pub fn policy(&self) -> &SwitchPolicy {
        &self.policy
    }

    /// Current simulated time (a decision boundary, between steps).
    pub fn sim_time(&self) -> f64 {
        self.t
    }

    /// The active regime.
    pub fn regime(&self) -> Regime {
        self.regime
    }

    /// Regime switches so far.
    pub fn handoffs(&self) -> &[HandoffRecord] {
        &self.handoffs
    }

    /// Attaches a telemetry sink for handoff spans. Observer-only: the
    /// sink is excluded from snapshots and never affects results.
    pub fn attach_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    /// Attaches a flight recorder that receives a [`FlightKind::Handoff`]
    /// record at every regime switch. Observer-only, like the sink.
    pub fn attach_flight(&mut self, flight: SharedRecorder) {
        self.flight = Some(flight);
    }

    /// Total downloading users under the active engine.
    pub fn population(&self) -> f64 {
        match self.regime {
            Regime::Fluid => self.model.total_downloaders(&self.fluid),
            Regime::Discrete => self
                .sim
                .as_ref()
                .map_or(0.0, |s| s.class_downloaders().iter().sum::<usize>() as f64),
        }
    }

    /// Advances to the next decision boundary, re-evaluates the policy,
    /// and performs a handoff if the regime changes. Returns `false`
    /// once the horizon is reached.
    ///
    /// # Errors
    /// Propagates DES segment errors.
    pub fn step_boundary(&mut self) -> Result<bool, HybridError> {
        if self.next_boundary >= self.boundaries.len() {
            return Ok(false);
        }
        let target = self.boundaries[self.next_boundary];
        match self.regime {
            Regime::Fluid => self.advance_fluid(target),
            Regime::Discrete => self.advance_discrete(target)?,
        }
        self.t = target;
        self.next_boundary += 1;
        if self.next_boundary < self.boundaries.len() {
            let pop = self.population();
            let decided = self.policy.decide(self.t, pop, self.regime);
            if decided != self.regime {
                self.switch_to(decided, pop)?;
            }
        }
        Ok(self.next_boundary < self.boundaries.len())
    }

    /// Finishes the run: folds any live segment's event count and
    /// normalizes the integrals into means.
    pub fn finish(mut self) -> HybridOutcome {
        if let Some(sim) = self.sim.take() {
            self.des_events += sim.events();
        }
        let window = self.cfg.program.horizon - self.cfg.program.warmup;
        HybridOutcome {
            class_means: self.integrals.iter().map(|v| v / window).collect(),
            handoffs: self.handoffs,
            des_events: self.des_events,
            fluid_steps: self.fluid_steps,
            final_t: self.t,
        }
    }

    /// Integrates the fluid state from `self.t` to `target`, trapezoid-
    /// accumulating per-class downloaders clipped to the stationary
    /// window.
    fn advance_fluid(&mut self, target: f64) {
        let (warmup, horizon) = (self.cfg.program.warmup, self.cfg.program.horizon);
        let k = self.model.k();
        let mut t = self.t;
        let mut d_prev = vec![0.0; k];
        let mut d_now = vec![0.0; k];
        self.model.class_downloaders(&self.fluid, &mut d_prev);
        while t < target - 1e-12 {
            let h = self.fluid_h.min(target - t);
            self.model.rk4_step(t, &mut self.fluid, h);
            self.fluid_steps += 1;
            self.model.class_downloaders(&self.fluid, &mut d_now);
            let lo = t.max(warmup);
            let hi = (t + h).min(horizon);
            if hi > lo {
                let w = 0.5 * (hi - lo);
                for c in 0..k {
                    self.integrals[c] += w * (d_prev[c] + d_now[c]);
                }
            }
            d_prev.copy_from_slice(&d_now);
            t += h;
        }
    }

    /// Steps the live DES segment until its clock reaches the boundary
    /// (building the segment first if none is live), accumulating
    /// pre-event per-class counts over each inter-event interval in
    /// global time.
    fn advance_discrete(&mut self, target: f64) -> Result<(), HybridError> {
        if self.sim.is_none() {
            self.build_segment(Vec::new())?;
        }
        let (warmup, horizon) = (self.cfg.program.warmup, self.cfg.program.horizon);
        let seg_t0 = self.seg_t0;
        let local_target = target - seg_t0;
        let sim = self.sim.as_mut().expect("segment built above");
        loop {
            let before = sim.sim_time();
            if before >= local_target - 1e-12 {
                break;
            }
            for (slot, &n) in self.scratch.iter_mut().zip(sim.class_downloaders()) {
                *slot = n as f64;
            }
            let more = sim.step()?;
            let after = sim.sim_time();
            let lo = (seg_t0 + before).max(warmup);
            let hi = (seg_t0 + after).min(horizon);
            if hi > lo {
                let w = hi - lo;
                for (acc, &n) in self.integrals.iter_mut().zip(self.scratch.iter()) {
                    *acc += w * n;
                }
            }
            if !more {
                break;
            }
        }
        Ok(())
    }

    /// Crosses the membrane at the current boundary.
    fn switch_to(&mut self, decided: Regime, pop: f64) -> Result<(), HybridError> {
        let started = Instant::now();
        match decided {
            Regime::Fluid => {
                let sim = self.sim.take().expect("discrete regime has a live segment");
                self.des_events += sim.events();
                self.fluid = self.model.fold(sim.peers());
            }
            Regime::Discrete => {
                let (peers, realized) =
                    self.model
                        .sample(&self.fluid, &mut self.rng_handoff, &self.gamma);
                self.fluid = realized;
                self.build_segment(peers)?;
            }
        }
        self.regime = decided;
        self.handoffs.push(HandoffRecord {
            t: self.t,
            to: decided,
            pop,
        });
        if let Some(sink) = &self.sink {
            let name = match decided {
                Regime::Fluid => "handoff:des->fluid",
                Regime::Discrete => "handoff:fluid->des",
            };
            sink.lock().expect("trace sink poisoned").span_at(
                name,
                started.elapsed().as_micros() as u64,
                self.t,
            );
        }
        if let Some(flight) = &self.flight {
            // Direction code 0 = DES->fluid, 1 = fluid->DES; payload `b`
            // carries the population at the membrane, rounded.
            flight
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .record(FlightRecord {
                    t: self.t,
                    events: self.des_events,
                    kind: FlightKind::Handoff,
                    a: match decided {
                        Regime::Fluid => 0,
                        Regime::Discrete => 1,
                    },
                    b: pop.round() as u64,
                });
        }
        Ok(())
    }

    /// Builds a fresh DES segment starting at global `self.t`, seeded
    /// deterministically, with the driver's statistics windows disabled
    /// (the driver accounts in global time itself).
    fn build_segment(&mut self, inject: Vec<btfluid_des::peer::Peer>) -> Result<(), HybridError> {
        let seed = segment_seed(self.cfg.seed, self.segment);
        self.segment += 1;
        let mut sim = Simulation::new(segment_config(&self.cfg, self.t, seed)?)?;
        if !inject.is_empty() {
            sim.inject_peers(inject)?;
        }
        sim.attach_hook(Box::new(ShiftedHook::new(self.cfg.program.hook(), self.t)))?;
        self.seg_t0 = self.t;
        self.seg_seed = seed;
        self.sim = Some(sim);
        Ok(())
    }
}

/// The DES configuration of a discrete segment anchored at global `t0`:
/// the program's config with a shifted, statistics-free window.
pub(crate) fn segment_config(
    cfg: &HybridConfig,
    t0: f64,
    seed: u64,
) -> Result<DesConfig, NumError> {
    let mut des = cfg.program.des_config(cfg.scheme, seed)?;
    des.horizon = cfg.program.horizon - t0;
    des.warmup = 0.0;
    des.drain = 0.0;
    des.record_every = None;
    des.aggregate = cfg.aggregate;
    des.validate()?;
    Ok(des)
}

/// The sorted decision grid: every `record_every` plus forced-window
/// edges, in `(0, horizon]`.
pub(crate) fn decision_boundaries(program: &ScenarioProgram, policy: &SwitchPolicy) -> Vec<f64> {
    let mut b = Vec::new();
    let mut t = program.record_every;
    while t < program.horizon - 1e-9 {
        b.push(t);
        t += program.record_every;
    }
    for &(s, e) in policy.forced() {
        for v in [s, e] {
            if v > 1e-9 && v < program.horizon - 1e-9 {
                b.push(v);
            }
        }
    }
    b.push(program.horizon);
    b.sort_by(f64::total_cmp);
    b.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    b
}

/// The flash_crowd scenario amplified to `peak` visitors per time unit
/// (base load scales proportionally) on a time axis compressed by
/// `time_scale` — the workload the hybrid oracle check and the
/// `hybrid_scale` bench share. With `peak = 2048`, `time_scale = 0.005`
/// the spike hits the acceptance-criteria scale in a horizon of 20 time
/// units.
pub fn amplified_flash_crowd(peak: f64, time_scale: f64) -> ScenarioProgram {
    let base = registry::by_name("flash_crowd").expect("flash_crowd is a registry scenario");
    let factor = peak / base.lambda0.upper_bound();
    let mut program = base.time_scaled(time_scale);
    program.lambda0 = program.lambda0.rate_scaled(factor);
    program.name = format!("flash_crowd@{peak}");
    program
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(scheme: SchemeKind, aggregate: bool) -> HybridConfig {
        HybridConfig {
            program: amplified_flash_crowd(512.0, 0.005),
            scheme,
            seed: 41,
            tol: 0.1,
            aggregate,
        }
    }

    #[test]
    fn boundaries_are_sorted_unique_and_end_at_horizon() {
        let cfg = small_cfg(SchemeKind::Mtcd, false);
        let policy = SwitchPolicy::from_program(&cfg.program, cfg.tol).unwrap();
        let b = decision_boundaries(&cfg.program, &policy);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!((b.last().unwrap() - cfg.program.horizon).abs() < 1e-9);
        assert!(b[0] > 0.0);
    }

    #[test]
    fn shifted_hook_replays_global_schedules() {
        let program = amplified_flash_crowd(512.0, 1.0);
        let hook = program.hook();
        let shifted = ShiftedHook::new(program.hook(), 1700.0);
        // Global t = 1700 is inside the flash-crowd spike window.
        assert_eq!(shifted.arrival_rate(0.0), hook.arrival_rate(1700.0));
        assert_eq!(shifted.arrival_rate(600.0), hook.arrival_rate(2300.0));
        assert_eq!(
            shifted.next_boundary(0.0).map(|b| b + 1700.0),
            hook.next_boundary(1700.0)
        );
        // Fingerprints of different offsets differ.
        assert_ne!(
            shifted.hook_state(),
            ShiftedHook::new(program.hook(), 0.0).hook_state()
        );
    }

    #[test]
    fn segment_seeds_are_deterministic_and_distinct() {
        assert_eq!(segment_seed(41, 3), segment_seed(41, 3));
        assert_ne!(segment_seed(41, 3), segment_seed(41, 4));
        assert_ne!(segment_seed(41, 3), segment_seed(42, 3));
    }

    #[test]
    fn hybrid_run_switches_to_fluid_under_load() {
        let out = HybridRunner::run(small_cfg(SchemeKind::Mtcd, true)).unwrap();
        assert!(
            out.handoffs.iter().any(|h| h.to == Regime::Fluid),
            "λ₀ = 512 must push the population over the threshold: {:?}",
            out.handoffs
        );
        assert!(out.total_mean() > 100.0, "means: {:?}", out.class_means);
        assert!(out.fluid_steps > 0 && out.des_events > 0);
        assert!((out.final_t - small_cfg(SchemeKind::Mtcd, true).program.horizon).abs() < 1e-9);
    }

    #[test]
    fn same_seed_same_outcome_across_modes_of_invocation() {
        let a = HybridRunner::run(small_cfg(SchemeKind::Mtsd, false)).unwrap();
        let mut runner = HybridRunner::new(small_cfg(SchemeKind::Mtsd, false)).unwrap();
        while runner.step_boundary().unwrap() {}
        let b = runner.finish();
        assert_eq!(a, b);
    }
}
