//! Snapshot v4: checkpoint/resume for hybrid runs.
//!
//! A hybrid checkpoint is taken *between decision boundaries* and captures
//! everything the driver cannot re-derive from its config: the clock, the
//! active regime, the fluid state vector or the embedded engine snapshot
//! (the DES layer's own v2/v3 codec, verbatim), the handoff RNG stream,
//! the per-class integrals, and the handoff log. Boundaries, policy, and
//! the fluid model are pure functions of the config and are rebuilt on
//! restore; a config digest plus an FNV-1a checksum reject mismatched or
//! torn files with typed errors. Restore-then-run is bit-identical to
//! never having stopped — the same contract the engine snapshot keeps.

use crate::driver::{segment_config, HybridConfig, HybridError, HybridRunner, ShiftedHook};
use crate::handoff::HandoffRecord;
use crate::policy::Regime;
use btfluid_des::{Simulation, Snapshot};
use btfluid_numkit::rng::Xoshiro256StarStar;

/// Shared magic with the engine codec — the version field disambiguates.
const MAGIC: &[u8; 4] = b"BTFS";
/// Hybrid snapshots are version 4 (the engine owns v2/v3).
pub const HYBRID_SNAPSHOT_VERSION: u32 = 4;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Digest of everything that parameterizes a run. Debug formatting of the
/// program is stable, covers every schedule/fault field, and is the same
/// representation the scenario hook fingerprint relies on.
fn config_digest(cfg: &HybridConfig) -> u64 {
    let mut bytes = format!("{:?}", cfg.program).into_bytes();
    bytes.extend_from_slice(cfg.scheme.name().as_bytes());
    bytes.extend_from_slice(&cfg.seed.to_le_bytes());
    bytes.extend_from_slice(&cfg.tol.to_bits().to_le_bytes());
    bytes.push(u8::from(cfg.aggregate));
    fnv1a(&bytes)
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], HybridError> {
        if self.pos + n > self.buf.len() {
            return Err(HybridError::Snapshot(format!(
                "truncated at byte {} (wanted {n} more of {})",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, HybridError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, HybridError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, HybridError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, HybridError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

impl HybridRunner {
    /// Serializes the full driver state (between decision boundaries).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(MAGIC);
        push_u32(&mut out, HYBRID_SNAPSHOT_VERSION);
        push_u64(&mut out, config_digest(self.config()));
        push_f64(&mut out, self.t);
        out.push(match self.regime {
            Regime::Fluid => 0,
            Regime::Discrete => 1,
        });
        push_f64(&mut out, self.seg_t0);
        push_u64(&mut out, self.seg_seed);
        push_u64(&mut out, self.segment);
        push_u64(&mut out, self.next_boundary as u64);
        for w in self.rng_handoff.state() {
            push_u64(&mut out, w);
        }
        push_u64(&mut out, self.des_events);
        push_u64(&mut out, self.fluid_steps);
        push_u32(&mut out, self.integrals.len() as u32);
        for &v in &self.integrals {
            push_f64(&mut out, v);
        }
        push_u32(&mut out, self.fluid.len() as u32);
        for &v in &self.fluid {
            push_f64(&mut out, v);
        }
        push_u32(&mut out, self.handoffs.len() as u32);
        for h in &self.handoffs {
            push_f64(&mut out, h.t);
            out.push(match h.to {
                Regime::Fluid => 0,
                Regime::Discrete => 1,
            });
            push_f64(&mut out, h.pop);
        }
        match &self.sim {
            Some(sim) => {
                out.push(1);
                let engine = sim.snapshot().to_bytes();
                push_u64(&mut out, engine.len() as u64);
                out.extend_from_slice(&engine);
            }
            None => out.push(0),
        }
        let sum = fnv1a(&out);
        push_u64(&mut out, sum);
        out
    }

    /// Rebuilds a runner from `cfg` and a snapshot taken by an identical
    /// config; stepping on is bit-identical to never having stopped.
    ///
    /// # Errors
    /// Typed [`HybridError::Snapshot`] on truncation, checksum or digest
    /// mismatch, bad magic/version; propagates embedded-engine restore
    /// failures.
    pub fn resume(cfg: HybridConfig, bytes: &[u8]) -> Result<Self, HybridError> {
        if bytes.len() < 20 {
            return Err(HybridError::Snapshot("file too short".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(HybridError::Snapshot(
                "checksum mismatch (torn write?)".into(),
            ));
        }
        let mut r = Reader { buf: body, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(HybridError::Snapshot("bad magic".into()));
        }
        let version = r.u32()?;
        if version != HYBRID_SNAPSHOT_VERSION {
            return Err(HybridError::Snapshot(format!(
                "version {version}, expected {HYBRID_SNAPSHOT_VERSION}"
            )));
        }
        let digest = r.u64()?;
        if digest != config_digest(&cfg) {
            return Err(HybridError::Snapshot(
                "config digest mismatch (snapshot from a different run)".into(),
            ));
        }
        let mut runner = Self::new(cfg)?;
        runner.t = r.f64()?;
        runner.regime = match r.u8()? {
            0 => Regime::Fluid,
            1 => Regime::Discrete,
            other => {
                return Err(HybridError::Snapshot(format!("unknown regime tag {other}")));
            }
        };
        runner.seg_t0 = r.f64()?;
        runner.seg_seed = r.u64()?;
        runner.segment = r.u64()?;
        runner.next_boundary = r.u64()? as usize;
        let mut rng_state = [0u64; 4];
        for w in &mut rng_state {
            *w = r.u64()?;
        }
        runner.rng_handoff = Xoshiro256StarStar::from_state(rng_state);
        runner.des_events = r.u64()?;
        runner.fluid_steps = r.u64()?;
        let n_int = r.u32()? as usize;
        if n_int != runner.integrals.len() {
            return Err(HybridError::Snapshot(format!(
                "integral count {n_int} does not match K = {}",
                runner.integrals.len()
            )));
        }
        for slot in &mut runner.integrals {
            *slot = r.f64()?;
        }
        let n_fluid = r.u32()? as usize;
        if n_fluid != runner.fluid.len() {
            return Err(HybridError::Snapshot(format!(
                "fluid dim {n_fluid} does not match model dim {}",
                runner.fluid.len()
            )));
        }
        for slot in &mut runner.fluid {
            *slot = r.f64()?;
        }
        let n_handoffs = r.u32()? as usize;
        runner.handoffs = Vec::with_capacity(n_handoffs);
        for _ in 0..n_handoffs {
            let t = r.f64()?;
            let to = match r.u8()? {
                0 => Regime::Fluid,
                1 => Regime::Discrete,
                other => {
                    return Err(HybridError::Snapshot(format!(
                        "unknown handoff regime tag {other}"
                    )));
                }
            };
            let pop = r.f64()?;
            runner.handoffs.push(HandoffRecord { t, to, pop });
        }
        if r.u8()? == 1 {
            let len = r.u64()? as usize;
            let engine_bytes = r.take(len)?;
            let snap = Snapshot::from_bytes(engine_bytes)
                .map_err(|e| HybridError::Snapshot(format!("embedded engine: {e}")))?;
            let seg_cfg = segment_config(runner.config(), runner.seg_t0, runner.seg_seed)?;
            let hook = Box::new(ShiftedHook::new(
                runner.config().program.hook(),
                runner.seg_t0,
            ));
            runner.sim = Some(Simulation::restore_with_hook(seg_cfg, &snap, hook)?);
        }
        Ok(runner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::amplified_flash_crowd;
    use btfluid_des::SchemeKind;

    fn cfg() -> HybridConfig {
        HybridConfig {
            program: amplified_flash_crowd(512.0, 0.005),
            scheme: SchemeKind::Mtcd,
            seed: 17,
            tol: 0.1,
            aggregate: true,
        }
    }

    #[test]
    fn corrupt_and_mismatched_snapshots_yield_typed_errors() {
        let runner = HybridRunner::new(cfg()).unwrap();
        let bytes = runner.snapshot();

        assert!(matches!(
            HybridRunner::resume(cfg(), b"BTFSgarbage"),
            Err(HybridError::Snapshot(_))
        ));
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            HybridRunner::resume(cfg(), &flipped),
            Err(HybridError::Snapshot(_))
        ));
        let mut other = cfg();
        other.seed = 18;
        assert!(matches!(
            HybridRunner::resume(other, &bytes),
            Err(HybridError::Snapshot(_))
        ));
        // The pristine bytes restore fine.
        assert!(HybridRunner::resume(cfg(), &bytes).is_ok());
    }
}
