//! Regime-switching policy: population hysteresis bands plus
//! fault-plan windows that force the discrete engine.
//!
//! The Kesidis–Konstantopoulos–Sousi fluid limit says the ODE error on a
//! population of `N` well-mixed users scales like `1/√N`, so an error
//! budget `tol` buys a switching threshold `N ≳ 1/tol²`. The policy turns
//! that into a *hysteresis band* — switch to fluid at `hi = ⌈1/tol²⌉`,
//! back to discrete at `lo = hi/2` — so a population hovering near the
//! threshold never chatters between engines. Fault windows (seed outages,
//! tracker blackouts, abort storms) are forced discrete regardless of
//! population: the fluid model has no notion of an individual publisher
//! dying or a blocked visitor queueing at a dark tracker.

use btfluid_numkit::NumError;
use btfluid_scenario::{ScenarioProgram, Schedule};

/// Which engine integrates the system right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// The scheme ODE (deterministic, O(K²) per step).
    Fluid,
    /// The discrete-event simulator (exact, O(events)).
    Discrete,
}

/// Hysteresis bands + forced-discrete windows, evaluated at decision
/// boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchPolicy {
    hi: f64,
    lo: f64,
    forced: Vec<(f64, f64)>,
}

impl SwitchPolicy {
    /// Derives the policy from a program's fault plan and the error
    /// budget `tol` (relative error on per-class means, `0 < tol ≤ 1`).
    ///
    /// Forced windows are the union of the plan's seed outages and
    /// tracker blackouts, plus the abort schedule's support: a quiet
    /// `Constant(0)` schedule forces nothing, an abort `Spike` forces its
    /// `[t0, t1)` burst, and any other shape with positive mass forces
    /// the whole run (the policy cannot bound its support).
    ///
    /// # Errors
    /// Rejects `tol` outside `(0, 1]`.
    pub fn from_program(program: &ScenarioProgram, tol: f64) -> Result<Self, NumError> {
        if !(tol > 0.0 && tol <= 1.0) {
            return Err(NumError::InvalidInput {
                what: "SwitchPolicy::from_program",
                detail: format!("hybrid tolerance must be in (0, 1], got {tol}"),
            });
        }
        let hi = (1.0 / (tol * tol)).ceil();
        let mut forced: Vec<(f64, f64)> = Vec::new();
        forced.extend_from_slice(&program.faults.seed_outages);
        forced.extend_from_slice(&program.faults.tracker_blackouts);
        match &program.faults.abort {
            Schedule::Spike { peak, t0, t1, base } if *base == 0.0 => {
                if *peak > 0.0 {
                    forced.push((*t0, *t1));
                }
            }
            other => {
                if other.upper_bound() > 0.0 {
                    forced.push((0.0, program.horizon));
                }
            }
        }
        forced.retain(|&(s, e)| e > s);
        forced.sort_by(|a, b| a.0.total_cmp(&b.0));
        Ok(Self {
            hi,
            lo: hi / 2.0,
            forced,
        })
    }

    /// The switch-to-fluid threshold `⌈1/tol²⌉`.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// The switch-back-to-discrete threshold `hi/2`.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// The forced-discrete windows `[start, end)`, sorted by start.
    pub fn forced(&self) -> &[(f64, f64)] {
        &self.forced
    }

    /// Whether `t` falls inside a forced-discrete window.
    pub fn forced_at(&self, t: f64) -> bool {
        self.forced.iter().any(|&(s, e)| t >= s && t < e)
    }

    /// The regime to run in from time `t` onward, given the total
    /// downloading population `pop` and the regime currently active.
    ///
    /// Forced windows dominate; otherwise `pop ≥ hi` selects fluid,
    /// `pop ≤ lo` selects discrete, and anything strictly inside the band
    /// keeps the current regime (the hysteresis guarantee).
    pub fn decide(&self, t: f64, pop: f64, current: Regime) -> Regime {
        if self.forced_at(t) {
            return Regime::Discrete;
        }
        if pop >= self.hi {
            Regime::Fluid
        } else if pop <= self.lo {
            Regime::Discrete
        } else {
            current
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_scenario::registry;

    fn quiet_policy(tol: f64) -> SwitchPolicy {
        SwitchPolicy::from_program(&registry::flash_crowd(), tol).unwrap()
    }

    #[test]
    fn tolerance_maps_to_clt_thresholds() {
        let p = quiet_policy(0.1);
        assert_eq!(p.hi(), 100.0);
        assert_eq!(p.lo(), 50.0);
        let tight = quiet_policy(0.02);
        assert_eq!(tight.hi(), 2500.0);
    }

    #[test]
    fn invalid_tolerance_rejected() {
        let program = registry::flash_crowd();
        assert!(SwitchPolicy::from_program(&program, 0.0).is_err());
        assert!(SwitchPolicy::from_program(&program, -0.5).is_err());
        assert!(SwitchPolicy::from_program(&program, 1.5).is_err());
    }

    #[test]
    fn hysteresis_band_keeps_current_regime() {
        let p = quiet_policy(0.1);
        for pop in [51.0, 75.0, 99.9] {
            assert_eq!(p.decide(10.0, pop, Regime::Fluid), Regime::Fluid);
            assert_eq!(p.decide(10.0, pop, Regime::Discrete), Regime::Discrete);
        }
        assert_eq!(p.decide(10.0, 100.0, Regime::Discrete), Regime::Fluid);
        assert_eq!(p.decide(10.0, 50.0, Regime::Fluid), Regime::Discrete);
    }

    #[test]
    fn fault_windows_force_discrete() {
        let program = registry::by_name("seed_outage").expect("registry scenario");
        assert!(
            !program.faults.seed_outages.is_empty(),
            "seed_outage scenario must carry outage windows"
        );
        let p = SwitchPolicy::from_program(&program, 0.1).unwrap();
        let (s, e) = p.forced()[0];
        let mid = 0.5 * (s + e);
        assert_eq!(p.decide(mid, 1e6, Regime::Fluid), Regime::Discrete);
        assert!(
            p.forced_at(s) && !p.forced_at(e),
            "windows are [start, end)"
        );
    }

    #[test]
    fn abort_spike_forces_only_its_burst() {
        let mut program = registry::flash_crowd();
        program.faults.abort = Schedule::Spike {
            base: 0.0,
            peak: 0.05,
            t0: 1000.0,
            t1: 1500.0,
        };
        let p = SwitchPolicy::from_program(&program, 0.1).unwrap();
        assert_eq!(p.forced(), &[(1000.0, 1500.0)]);
        // A shape the policy cannot bound forces the whole run.
        program.faults.abort = Schedule::Constant(0.01);
        let p = SwitchPolicy::from_program(&program, 0.1).unwrap();
        assert_eq!(p.forced(), &[(0.0, program.horizon)]);
    }
}
