//! # btfluid-hybrid — the multiscale fluid–DES switching engine
//!
//! The paper's evaluation is pure fluid ODE; the workspace's DES is exact
//! but pays per event. Kesidis–Konstantopoulos–Sousi (arXiv:0811.1003)
//! prove the peer-level stochastic model converges to the deterministic
//! fluid limit as populations grow, so above a tolerance-derived
//! threshold the ODE carries everything the DES knows — and below it
//! (flash-crowd onset, seed outages, abort storms, endgame drain) only
//! the DES is honest. This crate runs both, switching per decision
//! boundary:
//!
//! - [`SwitchPolicy`] — hysteresis bands `hi = ⌈1/tol²⌉`, `lo = hi/2` on
//!   the total downloading population, plus fault-plan windows forced
//!   discrete ([`policy`]).
//! - [`FluidModel`] — the scheme ODE (MTCD per-torrent or MTSD staged)
//!   plus the membrane: `fold` projects a peer slab onto fluid state,
//!   `sample` materializes peers from fluid masses on a dedicated RNG
//!   stream ([`handoff`]).
//! - [`HybridRunner`] — the driver: one global clock, per-class
//!   downloading-user integrals accumulated engine-agnostically,
//!   discrete segments with shifted hooks and derived seeds
//!   ([`driver`]).
//! - Snapshot v4 — deterministic checkpoint/resume of the whole hybrid
//!   state, embedded engine snapshot included ([`snapshot`]).
//!
//! Handoffs are observable as telemetry trace spans
//! (`handoff:des->fluid` / `handoff:fluid->des`, anchored to simulated
//! time) and `btfluid inspect` summarizes them and flags switch thrash.

pub mod driver;
pub mod handoff;
pub mod policy;
pub mod snapshot;

pub use driver::{
    amplified_flash_crowd, HybridConfig, HybridError, HybridOutcome, HybridRunner, ShiftedHook,
    HANDOFF_STREAM,
};
pub use handoff::{FluidModel, HandoffRecord};
pub use policy::{Regime, SwitchPolicy};
pub use snapshot::HYBRID_SNAPSHOT_VERSION;
