//! Workspace-local stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! This build environment cannot reach a crate registry, so the real
//! criterion cannot be fetched. This crate provides the subset of its API
//! the workspace benches use — `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock harness:
//!
//! * one untimed warm-up iteration, then up to `sample_size` timed
//!   iterations (early-stopped after a ~2 s budget per benchmark);
//! * reports min / mean / max per-iteration time on stdout in a
//!   criterion-like `time: [..]` line;
//! * when invoked with `--test` (as `cargo test --benches` does) each
//!   benchmark runs exactly once, so test runs stay fast.
//!
//! No statistics, plots, or baselines. Swap the workspace dependency back
//! to the real criterion when the environment can resolve crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark once warmed up.
const SAMPLE_BUDGET: Duration = Duration::from_secs(2);

/// How a batched benchmark's per-iteration inputs are sized (accepted for
/// API compatibility; the harness treats all variants identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup cost assumed negligible.
    SmallInput,
    /// Large inputs: setup cost assumed significant.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over several iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = routine(); // warm-up, untimed
        let budget_start = Instant::now();
        for i in 0..self.effective_samples() {
            let t0 = Instant::now();
            let _ = routine();
            self.recorded.push(t0.elapsed());
            if i > 0 && budget_start.elapsed() > SAMPLE_BUDGET {
                break;
            }
        }
    }

    /// Times `routine` with a fresh `setup()` input each iteration; the
    /// setup is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = routine(setup()); // warm-up, untimed
        let budget_start = Instant::now();
        for i in 0..self.effective_samples() {
            let input = setup();
            let t0 = Instant::now();
            let _ = routine(input);
            self.recorded.push(t0.elapsed());
            if i > 0 && budget_start.elapsed() > SAMPLE_BUDGET {
                break;
            }
        }
    }

    fn effective_samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.samples.max(1)
        }
    }
}

/// Entry point mirroring criterion's `Criterion` struct.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the default number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, self.test_mode, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            parent: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a named benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.parent.test_mode, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, test_mode: bool, mut f: F) {
    let mut b = Bencher {
        samples,
        test_mode,
        recorded: Vec::new(),
    };
    f(&mut b);
    if b.recorded.is_empty() {
        println!("{id:<40} (no samples recorded)");
        return;
    }
    let min = b.recorded.iter().min().expect("nonempty");
    let max = b.recorded.iter().max().expect("nonempty");
    let mean = b.recorded.iter().sum::<Duration>() / b.recorded.len() as u32;
    println!(
        "{id:<40} time: [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        b.recorded.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        let mut calls = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_run_batched_benches() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: false,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut setups = 0usize;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 3); // 1 warm-up + 2 samples
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 50,
            test_mode: true,
        };
        let mut calls = 0usize;
        c.bench_function("quick", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 2); // warm-up + 1
    }
}
