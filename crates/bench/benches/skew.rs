//! Criterion bench for the popularity-skew extension (X8): K MTCD fluid
//! solves per sweep point over Poisson-binomial class rates.

use btfluid_bench::skew::{run, SkewConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_skew(c: &mut Criterion) {
    let r = run(&SkewConfig::default()).expect("skew sweep runs");
    println!("\n{}", r.table().render());

    c.bench_function("skew/sweep_7_exponents", |b| {
        let cfg = SkewConfig::default();
        b.iter(|| black_box(run(&cfg).expect("runs")))
    });
}

criterion_group!(benches, bench_skew);
criterion_main!(benches);
