//! Criterion bench for the discrete-event simulator engine and the
//! fluid-vs-simulation validation experiment (X3), plus the `des_scale`
//! scaling study comparing the forced full-recompute baseline, the
//! incremental rate engine, and the class-aggregated completion engine
//! (written to `BENCH_des.json`).

use btfluid_bench::validate::{run as validate, ValidateConfig};
use btfluid_des::{DesConfig, SchemeKind, Simulation};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// True when `BTFLUID_AGG_SMOKE=1`: the CI aggregate-smoke job wants the
/// `des_scale` guards and nothing else from this bench target — the
/// multi-second checkpoint/telemetry studies (the latter with a
/// machine-noise-sensitive overhead guard) would dominate its wall budget.
fn agg_smoke_only() -> bool {
    std::env::var_os("BTFLUID_AGG_SMOKE").is_some()
}

/// True when `BTFLUID_HYBRID_SMOKE=1`: the CI hybrid-smoke job wants the
/// `hybrid_scale` speedup guard and nothing else.
fn hybrid_smoke_only() -> bool {
    std::env::var_os("BTFLUID_HYBRID_SMOKE").is_some()
}

/// True when either CI smoke job is driving this target: every bench not
/// belonging to that job stays silent.
fn smoke_only() -> bool {
    agg_smoke_only() || hybrid_smoke_only()
}

fn bench_engine(c: &mut Criterion) {
    if smoke_only() {
        return;
    }
    let mut group = c.benchmark_group("des");
    group.sample_size(10);
    for (name, scheme) in [
        ("mtsd", SchemeKind::Mtsd),
        ("mtcd", SchemeKind::Mtcd),
        ("cmfsd", SchemeKind::Cmfsd { rho: 0.3 }),
    ] {
        group.bench_function(&format!("engine_{name}_2000tu"), |b| {
            b.iter(|| {
                let mut cfg = DesConfig::paper_small(scheme, 0.5, 7).expect("valid");
                cfg.horizon = 2000.0;
                cfg.warmup = 500.0;
                cfg.drain = 2000.0;
                black_box(Simulation::new(cfg).expect("valid").run())
            })
        });
    }
    group.finish();
}

fn bench_validation(c: &mut Criterion) {
    if smoke_only() {
        return;
    }
    // Print the X3 comparison once for the record.
    let cfg = ValidateConfig {
        replications: 2,
        horizon: 3000.0,
        warmup: 800.0,
        ..Default::default()
    };
    let r = validate(&cfg).expect("validation runs");
    println!("\n{}", r.table().render());

    let mut group = c.benchmark_group("des");
    group.sample_size(10);
    group.bench_function("validate_x3_small", |b| {
        let cfg = ValidateConfig {
            schemes: vec![SchemeKind::Mtsd],
            replications: 1,
            horizon: 1500.0,
            warmup: 400.0,
            ..Default::default()
        };
        b.iter(|| black_box(validate(&cfg).expect("runs")))
    });
    group.finish();
}

/// One sizing point of the scaling study: the horizon shrinks as `λ₀`
/// grows so every point dispatches a comparable number of events while the
/// concurrent population — the thing the per-event cost depends on —
/// spans three orders of magnitude. The exact (full-recompute) baseline is
/// only timed up to λ₀ = 128; beyond that it would take minutes per point
/// for no information the 2–128 trend doesn't already carry.
const SCALE_POINTS: [(f64, f64, f64, f64); 6] = [
    // (λ₀, horizon, warmup, drain)
    (2.0, 600.0, 150.0, 300.0),
    (8.0, 300.0, 75.0, 150.0),
    (32.0, 150.0, 40.0, 80.0),
    (128.0, 80.0, 20.0, 40.0),
    (512.0, 40.0, 10.0, 20.0),
    (2048.0, 20.0, 5.0, 10.0),
];

/// Largest point at which the exact baseline is still timed.
const EXACT_MAX_LAMBDA0: f64 = 128.0;

fn scale_config(lambda0: f64, horizon: f64, warmup: f64, drain: f64) -> DesConfig {
    let mut cfg = DesConfig::paper_small(SchemeKind::Mtsd, 0.5, 7).expect("valid");
    cfg.model = btfluid_workload::CorrelationModel::new(10, 0.5, lambda0).expect("valid");
    cfg.horizon = horizon;
    cfg.warmup = warmup;
    cfg.drain = drain;
    cfg.origin_seeds = 1;
    cfg
}

/// Times one run and returns `(wall seconds, events dispatched)`.
fn time_run(cfg: DesConfig) -> (f64, u64) {
    let sim = Simulation::new(cfg).expect("valid");
    let start = Instant::now();
    let outcome = black_box(sim.run());
    (start.elapsed().as_secs_f64(), outcome.events)
}

/// Times one aggregate-mode run at a scale point.
fn time_agg(lambda0: f64, horizon: f64, warmup: f64, drain: f64) -> (f64, u64) {
    let mut cfg = scale_config(lambda0, horizon, warmup, drain);
    cfg.aggregate = true;
    time_run(cfg)
}

/// Scaling study: events/sec of the three scheduling modes — the forced
/// full-recompute baseline (up to λ₀ = 128), the incremental rate cache,
/// and the class-aggregated completion engine — at
/// λ₀ ∈ {2, 8, 32, 128, 512, 2048}, written to `BENCH_des.json` at the
/// repository root. The criterion group samples the incremental engine up
/// to λ₀ = 128; everything else is timed once per point (the exact
/// baseline is an order of magnitude slower already at λ₀ = 128 —
/// sampling it ten times would dominate the bench for no information).
///
/// Two guards make the scaling claims regressions instead of prose: the
/// aggregate engine must be ≥ 5× the incremental one at λ₀ = 128, and its
/// per-event cost must stay flat — ev/s at λ₀ = 512 within 2× of
/// λ₀ = 32. Setting `BTFLUID_AGG_SMOKE=1` (the CI job does) runs only
/// those two guards on one-shot timings, skips the JSON artifact, and
/// silences every other bench in this target (see [`agg_smoke_only`]).
fn bench_des_scale(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let agg_smoke = std::env::var_os("BTFLUID_AGG_SMOKE").is_some();

    if agg_smoke {
        agg_smoke_guards();
        return;
    }
    if hybrid_smoke_only() {
        return;
    }

    let mut group = c.benchmark_group("des_scale");
    group.sample_size(10);
    for &(lambda0, horizon, warmup, drain) in &SCALE_POINTS {
        if (test_mode && lambda0 > 8.0) || lambda0 > EXACT_MAX_LAMBDA0 {
            continue; // keep `cargo test --benches` and criterion sampling fast
        }
        group.bench_function(&format!("incremental_lambda{lambda0}"), |b| {
            b.iter(|| {
                let cfg = scale_config(lambda0, horizon, warmup, drain);
                black_box(Simulation::new(cfg).expect("valid").run())
            })
        });
    }
    group.finish();

    if test_mode {
        // Smoke-check the modes on the smallest point; skip the artifact.
        let (lambda0, horizon, warmup, drain) = SCALE_POINTS[0];
        let mut exact_cfg = scale_config(lambda0, horizon, warmup, drain);
        exact_cfg.exact_rates = true;
        let (_, exact_events) = time_run(exact_cfg);
        let (_, incr_events) = time_run(scale_config(lambda0, horizon, warmup, drain));
        assert_eq!(
            exact_events, incr_events,
            "modes dispatched different events"
        );
        let (_, agg_events) = time_agg(lambda0, horizon, warmup, drain);
        assert!(agg_events > 0, "aggregate mode dispatched no events");
        return;
    }

    let mut rows = Vec::new();
    let mut speedup_at_128 = 0.0;
    let mut agg_speedup_at_128 = 0.0;
    let mut agg_eps_at_32 = 0.0;
    let mut agg_eps_at_512 = 0.0;
    for &(lambda0, horizon, warmup, drain) in &SCALE_POINTS {
        let (incr_s, incr_events) = time_run(scale_config(lambda0, horizon, warmup, drain));
        let incr_eps = incr_events as f64 / incr_s;
        let (agg_s, agg_events) = time_agg(lambda0, horizon, warmup, drain);
        let agg_eps = agg_events as f64 / agg_s;
        let agg_speedup = agg_eps / incr_eps;

        // The exact baseline (where affordable): bit-identical to the
        // incremental path, so the event counts must match.
        let exact_json = if lambda0 <= EXACT_MAX_LAMBDA0 {
            let mut exact_cfg = scale_config(lambda0, horizon, warmup, drain);
            exact_cfg.exact_rates = true;
            let (exact_s, exact_events) = time_run(exact_cfg);
            assert_eq!(
                exact_events, incr_events,
                "modes dispatched different events"
            );
            let exact_eps = exact_events as f64 / exact_s;
            let speedup = incr_eps / exact_eps;
            if lambda0 == 128.0 {
                speedup_at_128 = speedup;
            }
            println!(
                "des_scale λ₀={lambda0}: exact {exact_s:.3}s ({exact_eps:.0} ev/s), \
                 incremental speedup {speedup:.1}×"
            );
            format!(
                "\"exact\": {{\"wall_s\": {exact_s:.6}, \"events_per_s\": {exact_eps:.1}}}, \
                 \"speedup\": {speedup:.3}, "
            )
        } else {
            String::new()
        };

        if lambda0 == 128.0 {
            agg_speedup_at_128 = agg_speedup;
        }
        if lambda0 == 32.0 {
            agg_eps_at_32 = agg_eps;
        }
        if lambda0 == 512.0 {
            agg_eps_at_512 = agg_eps;
        }
        println!(
            "des_scale λ₀={lambda0}: incremental {incr_s:.3}s ({incr_eps:.0} ev/s, \
             {incr_events} events), aggregate {agg_s:.3}s ({agg_eps:.0} ev/s, \
             {agg_events} events), aggregate speedup {agg_speedup:.1}×"
        );
        rows.push(format!(
            "    {{\"lambda0\": {lambda0}, \"horizon\": {horizon}, \"events\": {incr_events}, \
             {exact_json}\
             \"incremental\": {{\"wall_s\": {incr_s:.6}, \"events_per_s\": {incr_eps:.1}}}, \
             \"aggregate\": {{\"wall_s\": {agg_s:.6}, \"events\": {agg_events}, \
             \"events_per_s\": {agg_eps:.1}}}, \
             \"aggregate_speedup\": {agg_speedup:.3}}}"
        ));
    }
    let flatness = agg_eps_at_512 / agg_eps_at_32;
    println!(
        "des_scale: aggregate speedup at λ₀=128 {agg_speedup_at_128:.1}×, \
         flatness 512/32 {flatness:.2}"
    );
    assert!(
        agg_speedup_at_128 >= 5.0,
        "aggregate engine only {agg_speedup_at_128:.2}× over incremental at λ₀ = 128 \
         (claim is ≥ 5×)"
    );
    assert!(
        flatness >= 0.5,
        "aggregate ev/s fell to {flatness:.2}× between λ₀ = 32 and λ₀ = 512 \
         (claim is flat within 2×)"
    );
    let json = format!(
        "{{\n  \"bench\": \"des_scale\",\n  \"scheme\": \"MTSD\",\n  \"p\": 0.5,\n  \
         \"origin_seeds\": 1,\n  \"points\": [\n{}\n  ],\n  \
         \"speedup_at_lambda0_128\": {speedup_at_128:.3},\n  \
         \"aggregate_speedup_at_lambda0_128\": {agg_speedup_at_128:.3},\n  \
         \"aggregate_flatness_512_over_32\": {flatness:.3}\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_des.json");
    std::fs::write(path, json).expect("write BENCH_des.json");
    println!("wrote {path}");
}

/// The CI smoke: one-shot timings of the two aggregate scaling guards
/// (≥ 5× over incremental at λ₀ = 128, flat ev/s from λ₀ = 32 to 512),
/// fast enough for a wall-time-budgeted job.
fn agg_smoke_guards() {
    let (incr_s, incr_events) = time_run(scale_config(128.0, 80.0, 20.0, 40.0));
    let (agg128_s, agg128_events) = time_agg(128.0, 80.0, 20.0, 40.0);
    let incr_eps = incr_events as f64 / incr_s;
    let agg128_eps = agg128_events as f64 / agg128_s;
    let speedup = agg128_eps / incr_eps;

    let (agg32_s, agg32_events) = time_agg(32.0, 150.0, 40.0, 80.0);
    let (agg512_s, agg512_events) = time_agg(512.0, 40.0, 10.0, 20.0);
    let agg32_eps = agg32_events as f64 / agg32_s;
    let agg512_eps = agg512_events as f64 / agg512_s;
    let flatness = agg512_eps / agg32_eps;

    println!(
        "agg_smoke λ₀=128: incremental {incr_eps:.0} ev/s, aggregate {agg128_eps:.0} ev/s \
         ({speedup:.1}×); flatness 512/32 {flatness:.2} \
         ({agg32_eps:.0} → {agg512_eps:.0} ev/s)"
    );
    assert!(
        speedup >= 5.0,
        "aggregate engine only {speedup:.2}× over incremental at λ₀ = 128 (claim is ≥ 5×)"
    );
    assert!(
        flatness >= 0.5,
        "aggregate ev/s fell to {flatness:.2}× between λ₀ = 32 and λ₀ = 512 \
         (claim is flat within 2×)"
    );
}

/// Checkpoint-overhead guard: the crash-safe driver with checkpointing
/// disabled must cost ~nothing over `Simulation::run` — they are the same
/// loop (`while step {}; finish`), asserted here by event-count equality
/// and a loose wall-clock guard — and a coarse on-disk cadence
/// (5 snapshots per run) must cost < 3%.
///
/// End-to-end wall clocks on a shared machine are too noisy to resolve a
/// percent-level effect (repeated identical runs here spread ±15%), so
/// the cadence overhead is derived from the directly-measured
/// per-checkpoint cost: `snapshot() + write_file()` timed at the *end* of
/// a finished run, where the accumulated statistics make the snapshot
/// largest — an upper bound for every earlier checkpoint. Recorded under
/// `"checkpoint_overhead"` in `BENCH_des.json`.
fn bench_checkpoint_overhead(_c: &mut Criterion) {
    if smoke_only() {
        return;
    }
    let test_mode = std::env::args().any(|a| a == "--test");
    // Non-test mode runs a long horizon: checkpoint cost is a fixed price
    // per snapshot (clone + serialize + atomic write), so the percentage
    // is only meaningful on a run long enough to amortize a coarse cadence.
    let (lambda0, horizon, warmup, drain) = if test_mode {
        SCALE_POINTS[0]
    } else {
        (8.0, 1200.0, 150.0, 600.0)
    };
    let cfg = || scale_config(lambda0, horizon, warmup, drain);
    let reps = if test_mode { 1 } else { 5 };

    let drive_events = |plan: Option<&btfluid_harness::CheckpointPlan>| {
        let report = btfluid_harness::drive(
            cfg(),
            None,
            plan,
            false,
            &btfluid_harness::RunLimits::default(),
            None,
            None,
            None,
        )
        .expect("drive runs");
        report.events
    };

    // Interleave plain/driver reps so machine-load drift hits both alike;
    // keep the minimum (least noisy statistic for a deterministic run).
    let mut base_s = f64::INFINITY;
    let mut disabled_s = f64::INFINITY;
    let mut base_events = 0;
    for _ in 0..reps {
        let start = Instant::now();
        base_events = Simulation::new(cfg()).expect("valid").run().events;
        base_s = base_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let disabled_events = drive_events(None);
        disabled_s = disabled_s.min(start.elapsed().as_secs_f64());
        assert_eq!(
            base_events, disabled_events,
            "driver dispatched different events than Simulation::run"
        );
    }

    // Per-checkpoint cost at the end-of-run state (largest snapshot).
    let dir = std::env::temp_dir().join("btfluid_bench_checkpoint");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let cp = dir.join("cp.snap");
    let mut sim = Simulation::new(cfg()).expect("valid");
    while sim.step().expect("step") {}
    let mut ckpt_s = f64::INFINITY;
    let mut snap_bytes = 0;
    for _ in 0..reps.max(3) {
        let start = Instant::now();
        let snap = sim.snapshot();
        snap.write_file(&cp).expect("write checkpoint");
        ckpt_s = ckpt_s.min(start.elapsed().as_secs_f64());
        snap_bytes = snap.to_bytes().len();
    }

    // One end-to-end coarse run for the record (noisy; not the guard).
    let plan = btfluid_harness::CheckpointPlan {
        path: Some(cp.clone()),
        every_events: (base_events / 5).max(1),
        retry: btfluid_harness::RetryPolicy::default(),
    };
    let start = Instant::now();
    let coarse_events = drive_events(Some(&plan));
    let coarse_s = start.elapsed().as_secs_f64();
    assert_eq!(base_events, coarse_events, "checkpointing changed the run");
    let _ = std::fs::remove_dir_all(&dir);

    let disabled_pct = (disabled_s / base_s - 1.0) * 100.0;
    let coarse_pct = 5.0 * ckpt_s / disabled_s * 100.0;
    println!(
        "checkpoint_overhead λ₀={lambda0}: {base_events} events — plain {base_s:.3}s, \
         driver/no-checkpoint {disabled_s:.3}s ({disabled_pct:+.1}%), \
         per-checkpoint {:.1}ms ({snap_bytes} bytes) → 5-snapshot cadence \
         {coarse_pct:+.2}% (end-to-end coarse run {coarse_s:.3}s)",
        ckpt_s * 1e3
    );
    if test_mode {
        // One rep of a ~50ms run can't resolve percent-level overheads;
        // the event-count equalities above are the smoke check. The
        // guards below run on the full bench.
        return;
    }
    // Same code path; anything past noise means the driver grew real
    // per-event work.
    assert!(
        disabled_pct < 25.0,
        "checkpointing-disabled driver overhead {disabled_pct:.1}% blew the guard"
    );
    assert!(
        coarse_pct < 3.0,
        "coarse checkpointing overhead {coarse_pct:.2}% blew the 3% guard"
    );

    // Merge into BENCH_des.json (bench_des_scale wrote it just before us).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_des.json");
    let body = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".into());
    let trimmed = body.trim_end();
    let head = trimmed
        .strip_suffix('}')
        .expect("BENCH_des.json ends with an object")
        .trim_end();
    let sep = if head.ends_with('{') { "" } else { "," };
    let merged = format!(
        "{head}{sep}\n  \"checkpoint_overhead\": {{\"lambda0\": {lambda0}, \
         \"events\": {base_events}, \"snapshots\": 5, \
         \"plain_wall_s\": {base_s:.6}, \"driver_wall_s\": {disabled_s:.6}, \
         \"driver_overhead_pct\": {disabled_pct:.2}, \
         \"snapshot_bytes\": {snap_bytes}, \"per_checkpoint_s\": {ckpt_s:.6}, \
         \"coarse_cadence_overhead_pct\": {coarse_pct:.3}, \
         \"coarse_end_to_end_wall_s\": {coarse_s:.6}}}\n}}\n"
    );
    std::fs::write(path, merged).expect("write BENCH_des.json");
    println!("updated {path} with checkpoint_overhead");
}

/// Fault-injector seam guard: with the injector disarmed (the normal
/// state), every seam consultation is one relaxed atomic load, and the
/// run must stay within 1% of a des_scale run. Shared-machine wall
/// clocks can't resolve sub-percent effects (repeated identical runs
/// spread ±15%), so the guard is arithmetic: micro-time the disarmed
/// `write_plan` consult, then bound the *worst imaginable* seam traffic
/// — one consult per dispatched event, vastly more than the real
/// per-checkpoint-write rate — against the run's measured wall time.
/// Recorded under `"injector_overhead"` in `BENCH_des.json`.
fn bench_injector_overhead(_c: &mut Criterion) {
    use btfluid_telemetry::faults::{self, FaultSite, WritePlan};
    if smoke_only() {
        return;
    }
    let test_mode = std::env::args().any(|a| a == "--test");
    let (lambda0, horizon, warmup, drain) = if test_mode {
        SCALE_POINTS[0]
    } else {
        (8.0, 1200.0, 150.0, 600.0)
    };

    assert!(!faults::armed(), "bench requires a disarmed injector");
    // Micro-time the disarmed consult (and pin its answer).
    let consults = 1_000_000u64;
    let start = Instant::now();
    for _ in 0..consults {
        let plan = std::hint::black_box(faults::write_plan(FaultSite::CheckpointWrite, 1024));
        assert!(
            matches!(plan, WritePlan::Full),
            "disarmed injector must plan a full write"
        );
    }
    let per_consult_s = start.elapsed().as_secs_f64() / consults as f64;

    // A real des_scale run for the denominator (with the seam live on its
    // checkpoint path, as in production).
    let start = Instant::now();
    let events = Simulation::new(scale_config(lambda0, horizon, warmup, drain))
        .expect("valid")
        .run()
        .events;
    let wall_s = start.elapsed().as_secs_f64();

    let bound_pct = per_consult_s * events as f64 / wall_s * 100.0;
    println!(
        "injector_overhead λ₀={lambda0}: disarmed consult {:.1}ns; {events} events in \
         {wall_s:.3}s → even one consult per event bounds overhead at {bound_pct:.4}% \
         (real traffic is per checkpoint write, orders of magnitude rarer)",
        per_consult_s * 1e9
    );
    assert!(
        bound_pct < 1.0,
        "disarmed-injector overhead bound {bound_pct:.4}% blew the 1% guard"
    );
    if test_mode {
        return;
    }

    // Merge into BENCH_des.json (checkpoint_overhead wrote it just before us).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_des.json");
    let body = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".into());
    let trimmed = body.trim_end();
    let head = trimmed
        .strip_suffix('}')
        .expect("BENCH_des.json ends with an object")
        .trim_end();
    let sep = if head.ends_with('{') { "" } else { "," };
    let merged = format!(
        "{head}{sep}\n  \"injector_overhead\": {{\"lambda0\": {lambda0}, \
         \"events\": {events}, \"per_consult_ns\": {:.2}, \
         \"run_wall_s\": {wall_s:.6}, \
         \"per_event_bound_pct\": {bound_pct:.4}}}\n}}\n",
        per_consult_s * 1e9
    );
    std::fs::write(path, merged).expect("write BENCH_des.json");
    println!("updated {path} with injector_overhead");
}

/// Median of a sample set, plus its (min, max) spread. Interleaved reps
/// of identical deterministic work differ only by machine-load noise;
/// the per-variant *minimum* used previously is a biased order statistic
/// of that noise (whichever variant got lucky once wins, which is how a
/// "-7.9% overhead" landed in the artifact), so the guards and the
/// recorded numbers now use the median and publish the spread so the
/// perf observatory can see run quality.
fn median_spread(samples: &mut [f64]) -> (f64, f64, f64) {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    let median = if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    };
    (median, samples[0], samples[n - 1])
}

/// Telemetry-overhead guard: with a no-op probe attached the engine must
/// stay within 2% of the bare run (the issue's budget for "zero overhead
/// when disabled"), full JSONL tracing at the default cadence within
/// 10%, and the flight recorder — which rings every event pop — within
/// 15%. Bare/no-op/traced/flight reps are interleaved and the
/// per-variant *median* kept (see [`median_spread`]). Recorded under
/// `"telemetry_overhead"` in `BENCH_des.json` with min/max spreads.
fn bench_telemetry_overhead(_c: &mut Criterion) {
    use btfluid_des::{shared_recorder, NoopProbe, RecorderProbe, SinkProbe, TraceSink};
    use btfluid_telemetry::{DEFAULT_FLIGHT_CAPACITY, DEFAULT_SAMPLE_EVERY};

    if smoke_only() {
        return;
    }
    let test_mode = std::env::args().any(|a| a == "--test");
    let (lambda0, horizon, warmup, drain) = if test_mode {
        SCALE_POINTS[0]
    } else {
        SCALE_POINTS[2] // λ₀ = 32: large enough population to resolve %
    };
    let cfg = || scale_config(lambda0, horizon, warmup, drain);
    let reps = if test_mode { 1 } else { 9 };

    let dir = std::env::temp_dir().join("btfluid_bench_telemetry");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("overhead.jsonl");

    let mut bare_samples = Vec::with_capacity(reps);
    let mut noop_samples = Vec::with_capacity(reps);
    let mut sink_samples = Vec::with_capacity(reps);
    let mut flight_samples = Vec::with_capacity(reps);
    let mut bare_events = 0;
    let mut trace_lines = 0;
    let mut flight_total = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        bare_events = Simulation::new(cfg()).expect("valid").run().events;
        bare_samples.push(start.elapsed().as_secs_f64());

        let mut sim = Simulation::new(cfg()).expect("valid");
        sim.attach_probe(Box::new(NoopProbe));
        let start = Instant::now();
        let noop_events = sim.run().events;
        noop_samples.push(start.elapsed().as_secs_f64());
        assert_eq!(bare_events, noop_events, "no-op probe changed the run");

        let _ = std::fs::remove_file(&trace);
        let sink = TraceSink::create(&trace).expect("sink").shared();
        let mut sim = Simulation::new(cfg()).expect("valid");
        sim.attach_probe(Box::new(SinkProbe::new(sink.clone(), DEFAULT_SAMPLE_EVERY)));
        let start = Instant::now();
        let sink_events = sim.run().events;
        sink_samples.push(start.elapsed().as_secs_f64());
        assert_eq!(bare_events, sink_events, "trace probe changed the run");
        let mut guard = sink.lock().unwrap_or_else(|e| e.into_inner());
        trace_lines = guard.lines();
        guard.finish().expect("trace finishes");

        let ring = shared_recorder(DEFAULT_FLIGHT_CAPACITY);
        let mut sim = Simulation::new(cfg()).expect("valid");
        sim.attach_probe(Box::new(RecorderProbe::new(ring.clone())));
        let start = Instant::now();
        let flight_events = sim.run().events;
        flight_samples.push(start.elapsed().as_secs_f64());
        assert_eq!(
            bare_events, flight_events,
            "flight recorder changed the run"
        );
        flight_total = ring.lock().unwrap_or_else(|e| e.into_inner()).total();
        assert!(flight_total >= bare_events, "recorder missed event pops");
    }
    let _ = std::fs::remove_dir_all(&dir);

    let (bare_s, bare_lo, bare_hi) = median_spread(&mut bare_samples);
    let (noop_s, noop_lo, noop_hi) = median_spread(&mut noop_samples);
    let (sink_s, sink_lo, sink_hi) = median_spread(&mut sink_samples);
    let (flight_s, flight_lo, flight_hi) = median_spread(&mut flight_samples);
    let noop_pct = (noop_s / bare_s - 1.0) * 100.0;
    let sink_pct = (sink_s / bare_s - 1.0) * 100.0;
    let flight_pct = (flight_s / bare_s - 1.0) * 100.0;
    println!(
        "telemetry_overhead λ₀={lambda0}: {bare_events} events — bare {bare_s:.3}s \
         [{bare_lo:.3}, {bare_hi:.3}], no-op probe {noop_s:.3}s ({noop_pct:+.2}%, \
         [{noop_lo:.3}, {noop_hi:.3}]), traced@{DEFAULT_SAMPLE_EVERY} {sink_s:.3}s \
         ({sink_pct:+.2}%, [{sink_lo:.3}, {sink_hi:.3}], {trace_lines} trace lines), \
         flight@{DEFAULT_FLIGHT_CAPACITY} {flight_s:.3}s ({flight_pct:+.2}%, \
         [{flight_lo:.3}, {flight_hi:.3}], {flight_total} records)"
    );
    if test_mode {
        // One rep of a tiny run can't resolve percent-level overheads; the
        // event-count equalities above are the smoke check.
        return;
    }
    assert!(
        noop_pct < 2.0,
        "no-op probe median overhead {noop_pct:.2}% blew the 2% guard"
    );
    assert!(
        sink_pct < 10.0,
        "default-cadence tracing median overhead {sink_pct:.2}% blew the 10% guard"
    );
    assert!(
        flight_pct < 15.0,
        "flight-recorder median overhead {flight_pct:.2}% blew the 15% guard"
    );

    // Merge into BENCH_des.json (written by bench_des_scale earlier in
    // this group).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_des.json");
    let body = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".into());
    let trimmed = body.trim_end();
    let head = trimmed
        .strip_suffix('}')
        .expect("BENCH_des.json ends with an object")
        .trim_end();
    let sep = if head.ends_with('{') { "" } else { "," };
    let merged = format!(
        "{head}{sep}\n  \"telemetry_overhead\": {{\"lambda0\": {lambda0}, \
         \"events\": {bare_events}, \"reps\": {reps}, \
         \"bare_wall_s\": {bare_s:.6}, \"bare_spread_s\": [{bare_lo:.6}, {bare_hi:.6}], \
         \"noop_wall_s\": {noop_s:.6}, \"noop_spread_s\": [{noop_lo:.6}, {noop_hi:.6}], \
         \"noop_overhead_pct\": {noop_pct:.3}, \
         \"sample_every\": {DEFAULT_SAMPLE_EVERY}, \"trace_lines\": {trace_lines}, \
         \"traced_wall_s\": {sink_s:.6}, \"traced_spread_s\": [{sink_lo:.6}, {sink_hi:.6}], \
         \"traced_overhead_pct\": {sink_pct:.3}, \
         \"flight_capacity\": {DEFAULT_FLIGHT_CAPACITY}, \
         \"flight_wall_s\": {flight_s:.6}, \
         \"flight_spread_s\": [{flight_lo:.6}, {flight_hi:.6}], \
         \"flight_overhead_pct\": {flight_pct:.3}}}\n}}\n"
    );
    std::fs::write(path, merged).expect("write BENCH_des.json");
    println!("updated {path} with telemetry_overhead");
}

/// Hybrid-vs-DES scaling study: the amplified flash crowd at
/// λ₀ ∈ {128, 2048}, each point run through the multiscale hybrid driver
/// and through the pure class-aggregated DES (both MTSD, same seed,
/// both observed as per-class mean downloading users). The per-event DES
/// cost is flat (the PR 6 guard above), so the hybrid's win is
/// *event count*: above the fluid threshold the ODE replaces the event
/// stream entirely and the wall-clock ratio grows with λ₀.
///
/// Two in-bench guards make the headline claims regressions instead of
/// prose: at λ₀ = 2048 the hybrid must be ≥ 3× faster than the pure
/// aggregate DES *and* agree with it on total mean downloading users
/// within the 0.1 tolerance it was configured with. Recorded under
/// `"hybrid_scale"` in `BENCH_des.json`. `BTFLUID_HYBRID_SMOKE=1` (the
/// CI hybrid-smoke job) runs only the λ₀ = 2048 guards on one-shot
/// timings and skips the artifact.
fn bench_hybrid_scale(_c: &mut Criterion) {
    use btfluid_hybrid::{amplified_flash_crowd, HybridConfig, HybridOutcome, HybridRunner};

    if agg_smoke_only() {
        return;
    }
    let test_mode = std::env::args().any(|a| a == "--test");
    let smoke = hybrid_smoke_only();
    const TOL: f64 = 0.1;
    const SEED: u64 = 7;
    // Time-compressed like the oracle's accuracy check but 2× longer, so
    // the pure-DES side dispatches enough events for a stable ratio.
    const TIME_SCALE: f64 = 0.01;

    let hybrid_run = |lambda0: f64| -> (f64, HybridOutcome) {
        let cfg = HybridConfig {
            program: amplified_flash_crowd(lambda0, TIME_SCALE),
            scheme: SchemeKind::Mtsd,
            seed: SEED,
            tol: TOL,
            aggregate: true,
        };
        let start = Instant::now();
        let outcome = black_box(HybridRunner::run(cfg).expect("hybrid runs"));
        (start.elapsed().as_secs_f64(), outcome)
    };
    let pure_run = |lambda0: f64| -> (f64, f64, u64) {
        let program = amplified_flash_crowd(lambda0, TIME_SCALE);
        let mut cfg = program
            .des_config(SchemeKind::Mtsd, SEED)
            .expect("valid program");
        cfg.aggregate = true;
        cfg.drain = 0.0;
        cfg.record_every = None;
        cfg.validate().expect("valid config");
        let hook = Box::new(program.hook());
        let sim = Simulation::with_hook(cfg, hook).expect("valid");
        let start = Instant::now();
        let outcome = black_box(sim.try_run().expect("pure DES runs"));
        let wall = start.elapsed().as_secs_f64();
        let total: f64 = (1..=outcome.k())
            .map(|i| outcome.population.avg_downloader_peers(i))
            .sum();
        (wall, total, outcome.events)
    };
    // Deterministic identical work: best-of-N is the noise-robust
    // statistic, and one rep suffices for the smoke/test paths.
    let reps = if test_mode || smoke { 1 } else { 3 };
    let best = |f: &dyn Fn() -> f64| (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min);

    if test_mode {
        // Smallest point, one shot: both paths run and agree on shape.
        let (_, outcome) = hybrid_run(128.0);
        let (_, _, events) = pure_run(128.0);
        assert!(events > 0, "pure DES dispatched no events");
        assert!(outcome.final_t > 0.0, "hybrid run did not advance");
        return;
    }

    let mut rows = Vec::new();
    let mut speedup_at_2048 = 0.0;
    for lambda0 in [128.0, 2048.0] {
        if smoke && lambda0 < 2048.0 {
            continue; // the CI job only needs the headline guard
        }
        let hyb_s = best(&|| hybrid_run(lambda0).0);
        let (_, outcome) = hybrid_run(lambda0);
        let pure_s = best(&|| pure_run(lambda0).0);
        let (_, pure_total, pure_events) = pure_run(lambda0);
        let speedup = pure_s / hyb_s;
        let rel = (outcome.total_mean() - pure_total).abs() / pure_total.max(1e-9);
        println!(
            "hybrid_scale λ₀={lambda0}: hybrid {hyb_s:.4}s ({} DES events, \
             {} fluid substeps, {} handoffs), pure aggregate {pure_s:.4}s \
             ({pure_events} events) — speedup {speedup:.1}×, total mean rel {rel:.3}",
            outcome.des_events,
            outcome.fluid_steps,
            outcome.handoffs.len()
        );
        if lambda0 == 2048.0 {
            speedup_at_2048 = speedup;
            assert!(
                !outcome.handoffs.is_empty(),
                "hybrid never left the discrete regime at λ₀ = 2048 — \
                 the speedup would be vacuous"
            );
            assert!(
                rel <= TOL,
                "hybrid total mean off by {rel:.3} (> tol {TOL}) at λ₀ = 2048"
            );
        }
        rows.push(format!(
            "    {{\"lambda0\": {lambda0}, \"hybrid_wall_s\": {hyb_s:.6}, \
             \"hybrid_des_events\": {}, \"hybrid_fluid_steps\": {}, \
             \"handoffs\": {}, \"pure_wall_s\": {pure_s:.6}, \
             \"pure_events\": {pure_events}, \"speedup\": {speedup:.3}, \
             \"total_mean_rel\": {rel:.4}}}",
            outcome.des_events,
            outcome.fluid_steps,
            outcome.handoffs.len()
        ));
    }
    assert!(
        speedup_at_2048 >= 3.0,
        "hybrid only {speedup_at_2048:.2}× over pure aggregate DES at λ₀ = 2048 \
         (claim is ≥ 3×)"
    );
    if smoke {
        return;
    }

    // Merge into BENCH_des.json (written by bench_des_scale earlier in
    // this group).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_des.json");
    let body = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".into());
    let trimmed = body.trim_end();
    let head = trimmed
        .strip_suffix('}')
        .expect("BENCH_des.json ends with an object")
        .trim_end();
    let sep = if head.ends_with('{') { "" } else { "," };
    let merged = format!(
        "{head}{sep}\n  \"hybrid_scale\": {{\"scheme\": \"MTSD\", \"tol\": {TOL}, \
         \"time_scale\": {TIME_SCALE}, \"points\": [\n{}\n  ], \
         \"speedup_at_lambda0_2048\": {speedup_at_2048:.3}}}\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(path, merged).expect("write BENCH_des.json");
    println!("updated {path} with hybrid_scale");
}

criterion_group!(
    benches,
    bench_engine,
    bench_validation,
    bench_des_scale,
    bench_checkpoint_overhead,
    bench_injector_overhead,
    bench_telemetry_overhead,
    bench_hybrid_scale
);
criterion_main!(benches);
