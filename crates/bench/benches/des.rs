//! Criterion bench for the discrete-event simulator engine and the
//! fluid-vs-simulation validation experiment (X3).

use btfluid_bench::validate::{run as validate, ValidateConfig};
use btfluid_des::{DesConfig, SchemeKind, Simulation};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("des");
    group.sample_size(10);
    for (name, scheme) in [
        ("mtsd", SchemeKind::Mtsd),
        ("mtcd", SchemeKind::Mtcd),
        ("cmfsd", SchemeKind::Cmfsd { rho: 0.3 }),
    ] {
        group.bench_function(format!("engine_{name}_2000tu"), |b| {
            b.iter(|| {
                let mut cfg = DesConfig::paper_small(scheme, 0.5, 7).expect("valid");
                cfg.horizon = 2000.0;
                cfg.warmup = 500.0;
                cfg.drain = 2000.0;
                black_box(Simulation::new(cfg).expect("valid").run())
            })
        });
    }
    group.finish();
}

fn bench_validation(c: &mut Criterion) {
    // Print the X3 comparison once for the record.
    let cfg = ValidateConfig {
        replications: 2,
        horizon: 3000.0,
        warmup: 800.0,
        ..Default::default()
    };
    let r = validate(&cfg).expect("validation runs");
    println!("\n{}", r.table().render());

    let mut group = c.benchmark_group("des");
    group.sample_size(10);
    group.bench_function("validate_x3_small", |b| {
        let cfg = ValidateConfig {
            schemes: vec![SchemeKind::Mtsd],
            replications: 1,
            horizon: 1500.0,
            warmup: 400.0,
            ..Default::default()
        };
        b.iter(|| black_box(validate(&cfg).expect("runs")))
    });
    group.finish();
}

criterion_group!(benches, bench_engine, bench_validation);
criterion_main!(benches);
