//! Micro-benchmarks of the numeric kernels underneath every figure:
//! the ODE integrators, the CMFSD fixed-point solver, and the steady-state
//! relaxation driver.

use btfluid_core::cmfsd::Cmfsd;
use btfluid_core::mtcd::Mtcd;
use btfluid_core::FluidParams;
use btfluid_numkit::ode::{
    steady_state, Dopri5, Dopri5Options, FixedStep, LinearSystem, OdeSystem, Rk4, SteadyOptions,
};
use btfluid_workload::CorrelationModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_integrators(c: &mut Criterion) {
    let sys = LinearSystem::new(vec![0.0, 1.0, -1.0, 0.0], vec![0.0, 0.0]);
    let mut group = c.benchmark_group("integrators");
    group.bench_function("rk4_oscillator_1000_steps", |b| {
        b.iter(|| {
            let mut x = vec![1.0, 0.0];
            Rk4.integrate(&sys, 0.0, &mut x, 10.0, 0.01);
            black_box(x)
        })
    });
    group.bench_function("dopri5_oscillator", |b| {
        b.iter(|| {
            let mut x = vec![1.0, 0.0];
            Dopri5
                .integrate(&sys, 0.0, &mut x, 10.0, Dopri5Options::default(), |_, _| {})
                .expect("integrates");
            black_box(x)
        })
    });
    group.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let params = FluidParams::paper();
    let model = CorrelationModel::new(10, 0.7, 1.0).expect("valid");
    let cmfsd = Cmfsd::new(params, model.class_rates(), 0.4).expect("valid");
    let mtcd = Mtcd::new(params, model.per_torrent_rates()).expect("valid");

    let mut group = c.benchmark_group("solvers");
    group.bench_function("cmfsd_fixed_point", |b| {
        b.iter(|| black_box(cmfsd.steady_state().expect("solves")))
    });
    group.bench_function("mtcd_closed_form", |b| {
        b.iter(|| black_box(mtcd.steady_state().expect("solves")))
    });
    group.sample_size(10);
    group.bench_function("cmfsd_ode_relaxation", |b| {
        b.iter(|| {
            let x0 = vec![0.0; cmfsd.dim()];
            black_box(
                steady_state(
                    &cmfsd,
                    &x0,
                    SteadyOptions {
                        residual_tol: 1e-8,
                        ..Default::default()
                    },
                )
                .expect("relaxes"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_integrators, bench_solvers);
criterion_main!(benches);
