//! Criterion bench for the Adapt evaluation (X4), the paper's future-work
//! experiment.

use btfluid_bench::adapt_exp::{run, AdaptExpConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_adapt(c: &mut Criterion) {
    // Print the sweep once for the record.
    let cfg = AdaptExpConfig {
        replications: 2,
        horizon: 3000.0,
        warmup: 800.0,
        ..Default::default()
    };
    let r = run(&cfg).expect("adapt sweep runs");
    println!("\n{}", r.table().render());

    let mut group = c.benchmark_group("adapt");
    group.sample_size(10);
    group.bench_function("single_point_1500tu", |b| {
        let cfg = AdaptExpConfig {
            cheater_fractions: vec![0.5],
            replications: 1,
            horizon: 1500.0,
            warmup: 400.0,
            ..Default::default()
        };
        b.iter(|| black_box(run(&cfg).expect("runs")))
    });
    group.finish();
}

criterion_group!(benches, bench_adapt);
criterion_main!(benches);
