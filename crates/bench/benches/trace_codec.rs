//! Criterion bench for the trace pipeline: codec encode/decode
//! throughput for both wire formats, moment-matching fit cost, and
//! trace-replay engine throughput (written to `BENCH_trace.json`).
//!
//! The subject trace is a measured-preset synthesis (diurnal λ₀(t),
//! Pareto session tails, 70% leechers) over 20k time units — a few
//! thousand arrivals, the size a calibration workflow actually handles.

use btfluid_des::{SchemeKind, Simulation};
use btfluid_numkit::rng::Xoshiro256StarStar;
use btfluid_scenario::{trace_program, TraceHook, TraceShaper};
use btfluid_workload::{fit_model, ArrivalTrace};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 11;

fn subject() -> ArrivalTrace {
    let shaper = TraceShaper::measured(10, 20_000.0);
    let mut rng = Xoshiro256StarStar::seed_from_u64(SEED);
    shaper
        .synthesize(&mut rng)
        .expect("measured preset synthesizes")
}

/// Times `reps` calls of `f` and returns total wall seconds.
fn time_reps<T>(reps: u64, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        black_box(f());
    }
    start.elapsed().as_secs_f64()
}

fn bench_trace(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let trace = subject();
    let csv = trace.to_csv();
    let jsonl = trace.to_jsonl();

    let mut group = c.benchmark_group("trace");
    group.sample_size(10);
    group.bench_function("csv_round_trip", |b| {
        b.iter(|| black_box(ArrivalTrace::from_csv(&trace.to_csv()).expect("round trip")))
    });
    group.bench_function("fit_model", |b| {
        b.iter(|| black_box(fit_model(&trace).expect("fit")))
    });
    group.finish();

    if test_mode {
        // Smoke-check every measured path once; skip the JSON artifact.
        assert_eq!(ArrivalTrace::from_csv(&csv).expect("csv"), trace);
        assert_eq!(ArrivalTrace::from_jsonl(&jsonl).expect("jsonl"), trace);
        fit_model(&trace).expect("fit");
        return;
    }

    let n = trace.len() as f64;
    let reps = 40;
    let enc_csv_s = time_reps(reps, || trace.to_csv());
    let dec_csv_s = time_reps(reps, || ArrivalTrace::from_csv(&csv).expect("csv"));
    let enc_jsonl_s = time_reps(reps, || trace.to_jsonl());
    let dec_jsonl_s = time_reps(reps, || ArrivalTrace::from_jsonl(&jsonl).expect("jsonl"));
    let fit_s = time_reps(reps, || fit_model(&trace).expect("fit"));

    // Replay throughput: the recorded arrivals driven through MTCD.
    let program = trace_program(&trace, 8, 5000.0).expect("trace program");
    let mut replay_s = 0.0;
    let mut replay_events = 0;
    for rep in 0..5u64 {
        let cfg = program
            .des_config(SchemeKind::Mtcd, SEED + rep)
            .expect("valid config");
        let sim = Simulation::with_hook(cfg, Box::new(TraceHook::new(&trace).expect("hook")))
            .expect("valid");
        let start = Instant::now();
        let outcome = black_box(sim.run());
        replay_s += start.elapsed().as_secs_f64();
        replay_events += outcome.events;
    }

    let per_s = |wall: f64| n * reps as f64 / wall;
    let replay_eps = replay_events as f64 / replay_s;
    println!(
        "trace_codec: {} arrivals; csv enc {:.0}/s dec {:.0}/s, jsonl enc {:.0}/s \
         dec {:.0}/s, fit {:.0} traces/s, replay {replay_eps:.0} ev/s",
        trace.len(),
        per_s(enc_csv_s),
        per_s(dec_csv_s),
        per_s(enc_jsonl_s),
        per_s(dec_jsonl_s),
        reps as f64 / fit_s
    );

    let json = format!(
        "{{\n  \"bench\": \"trace\",\n  \"seed\": {SEED},\n  \"arrivals\": {},\n  \
         \"csv_bytes\": {},\n  \"jsonl_bytes\": {},\n  \
         \"csv_encode_arrivals_per_s\": {:.1},\n  \
         \"csv_decode_arrivals_per_s\": {:.1},\n  \
         \"jsonl_encode_arrivals_per_s\": {:.1},\n  \
         \"jsonl_decode_arrivals_per_s\": {:.1},\n  \
         \"fit_per_s\": {:.1},\n  \
         \"replay\": {{\"events\": {replay_events}, \"wall_s\": {replay_s:.6}, \
         \"events_per_s\": {replay_eps:.1}}}\n}}\n",
        trace.len(),
        csv.len(),
        jsonl.len(),
        per_s(enc_csv_s),
        per_s(dec_csv_s),
        per_s(enc_jsonl_s),
        per_s(dec_jsonl_s),
        reps as f64 / fit_s,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(path, json).expect("write BENCH_trace.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
