//! Criterion bench for Figures 4(b) and 4(c).

use btfluid_bench::fig4bc::{run, Fig4bcConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig4bc(c: &mut Criterion) {
    let r = run(&Fig4bcConfig::default()).expect("fig4bc must solve");
    for t in r.tables() {
        println!("\n{}", t.render());
    }

    c.bench_function("fig4bc/both_panels", |b| {
        let cfg = Fig4bcConfig::default();
        b.iter(|| black_box(run(&cfg).expect("solves")))
    });
}

criterion_group!(benches, bench_fig4bc);
criterion_main!(benches);
