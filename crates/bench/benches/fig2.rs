//! Criterion bench for the Figure 2 sweep (MTCD vs MTSD over correlation).
//!
//! Also prints the regenerated series once, so `cargo bench` output doubles
//! as the figure's data table.

use btfluid_bench::fig2::{run, Fig2Config};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    // Print the paper series once for the record.
    let full = run(&Fig2Config::default()).expect("fig2 must solve");
    println!("\n{}", full.table().render());

    let mut group = c.benchmark_group("fig2");
    group.bench_function("sweep_50_points", |b| {
        b.iter_batched(
            Fig2Config::default,
            |cfg| black_box(run(&cfg).expect("solves")),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("single_point", |b| {
        let cfg = Fig2Config {
            points: 2,
            ..Default::default()
        };
        b.iter(|| black_box(run(&cfg).expect("solves")))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
