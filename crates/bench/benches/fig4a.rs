//! Criterion bench for the Figure 4(a) grid: 10×11 CMFSD steady states.

use btfluid_bench::fig4a::{run, Fig4aConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig4a(c: &mut Criterion) {
    let r = run(&Fig4aConfig::default()).expect("fig4a must solve");
    println!("\n{}", r.table().render());

    let mut group = c.benchmark_group("fig4a");
    group.sample_size(20);
    group.bench_function("grid_10x11", |b| {
        let cfg = Fig4aConfig::default();
        b.iter(|| black_box(run(&cfg).expect("solves")))
    });
    group.bench_function("single_cell", |b| {
        let cfg = Fig4aConfig {
            ps: vec![0.9],
            rhos: vec![0.1],
            ..Default::default()
        };
        b.iter(|| black_box(run(&cfg).expect("solves")))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4a);
criterion_main!(benches);
