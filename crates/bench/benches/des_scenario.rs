//! Criterion bench tracking the cost of the scenario hook: flash-crowd
//! events/sec vs. a stationary baseline (written to `BENCH_scenario.json`).
//!
//! Three timed configurations, all MTCD at the registry's paper geometry:
//!
//! * `baseline` — stationary λ₀, no hook attached (the pure PR-1 engine);
//! * `stationary_hook` — the same workload with a constant-schedule hook
//!   attached, isolating the per-event overhead of hook dispatch;
//! * `flash_crowd` — the registry's flash-crowd program, whose thinned
//!   arrival stream and spiking population exercise the full scenario path.

use btfluid_des::{SchemeKind, Simulation};
use btfluid_scenario::{registry, ScenarioProgram, Schedule};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 7;

fn stationary_program() -> ScenarioProgram {
    let mut p = registry::flash_crowd();
    p.lambda0 = Schedule::Constant(0.25);
    p
}

/// Repetitions per timed point; single runs are ~20 ms and too noisy.
const REPS: u64 = 20;

/// Times `REPS` runs (distinct seeds) and returns the total
/// `(wall seconds, events dispatched)`.
fn time_run(program: &ScenarioProgram, hook: bool) -> (f64, u64) {
    let mut wall = 0.0;
    let mut events = 0;
    for rep in 0..REPS {
        let cfg = program
            .des_config(SchemeKind::Mtcd, SEED + rep)
            .expect("valid config");
        let sim = if hook {
            Simulation::with_hook(cfg, Box::new(program.hook())).expect("valid")
        } else {
            Simulation::new(cfg).expect("valid")
        };
        let start = Instant::now();
        let outcome = black_box(sim.run());
        wall += start.elapsed().as_secs_f64();
        events += outcome.events;
    }
    (wall, events)
}

fn bench_scenario(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");

    let mut group = c.benchmark_group("des_scenario");
    group.sample_size(10);
    let smoke = registry::flash_crowd().time_scaled(0.25);
    group.bench_function("flash_crowd_smoke", |b| {
        b.iter(|| {
            let cfg = smoke.des_config(SchemeKind::Mtcd, SEED).expect("valid");
            black_box(
                Simulation::with_hook(cfg, Box::new(smoke.hook()))
                    .expect("valid")
                    .run(),
            )
        })
    });
    group.finish();

    if test_mode {
        // Smoke-check both paths dispatch work; skip the JSON artifact.
        let stationary = stationary_program().time_scaled(0.25);
        let (_, without) = time_run(&stationary, false);
        let (_, with) = time_run(&stationary, true);
        assert!(without > 0 && with > 0, "a run dispatched no events");
        return;
    }

    // The hooked arrival path draws one extra thinning-acceptance uniform
    // per candidate, so the hooked realization differs from the no-hook
    // one even under constant schedules; the comparison is events/sec,
    // not event-for-event.
    let stationary = stationary_program();
    let crowd = registry::flash_crowd();
    let (base_s, base_events) = time_run(&stationary, false);
    let (hook_s, hook_events) = time_run(&stationary, true);
    let (crowd_s, crowd_events) = time_run(&crowd, true);

    let base_eps = base_events as f64 / base_s;
    let hook_eps = hook_events as f64 / hook_s;
    let crowd_eps = crowd_events as f64 / crowd_s;
    let hook_overhead = base_eps / hook_eps;
    println!(
        "des_scenario: baseline {base_events} events ({base_eps:.0} ev/s), \
         stationary+hook {hook_eps:.0} ev/s (overhead {hook_overhead:.3}×), \
         flash crowd {crowd_events} events ({crowd_eps:.0} ev/s)"
    );

    let json = format!(
        "{{\n  \"bench\": \"des_scenario\",\n  \"scheme\": \"MTCD\",\n  \
         \"seed\": {SEED},\n  \"baseline\": {{\"events\": {base_events}, \
         \"wall_s\": {base_s:.6}, \"events_per_s\": {base_eps:.1}}},\n  \
         \"stationary_hook\": {{\"events\": {hook_events}, \"wall_s\": {hook_s:.6}, \
         \"events_per_s\": {hook_eps:.1}}},\n  \"flash_crowd\": {{\"events\": \
         {crowd_events}, \"wall_s\": {crowd_s:.6}, \"events_per_s\": {crowd_eps:.1}}},\n  \
         \"hook_overhead\": {hook_overhead:.3}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scenario.json");
    std::fs::write(path, json).expect("write BENCH_scenario.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_scenario);
criterion_main!(benches);
