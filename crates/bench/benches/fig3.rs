//! Criterion bench for the Figure 3 per-class evaluation.

use btfluid_bench::fig3::{run, Fig3Config};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let r = run(&Fig3Config::default()).expect("fig3 must solve");
    for t in r.tables() {
        println!("\n{}", t.render());
    }

    c.bench_function("fig3/both_panels", |b| {
        let cfg = Fig3Config::default();
        b.iter(|| black_box(run(&cfg).expect("solves")))
    });
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
