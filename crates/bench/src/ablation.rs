//! Experiment X6 (ablation): parameter elasticities of every scheme.
//!
//! For each scheme, the percentage change of the average online time per
//! file caused by a 1% change in each model parameter — quantifying which
//! of the paper's conclusions lean on which assumption. Headline readings:
//!
//! * `E_p` is ≈ 0 for MTSD (sequential downloading is correlation-blind)
//!   and positive for every concurrent scheme;
//! * `E_γ` nearly vanishes for collaborative CMFSD at small ρ: virtual
//!   seeds replace the real ones, so the scheme is almost immune to how
//!   quickly seeds leave — while MTSD's online time moves 0.25% per 1% of
//!   γ. Collaboration buys robustness, not just speed.

use crate::table::Table;
use btfluid_core::sensitivity::{elasticities, Elasticity, Knob};
use btfluid_core::{FluidParams, Scheme};
use btfluid_numkit::NumError;
use btfluid_workload::CorrelationModel;

/// Configuration of the ablation table.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationConfig {
    /// Fluid parameters (base point).
    pub params: FluidParams,
    /// Workload (base point).
    pub model: CorrelationModel,
    /// Schemes to ablate.
    pub schemes: Vec<Scheme>,
}

impl Default for AblationConfig {
    fn default() -> Self {
        Self {
            params: FluidParams::paper(),
            model: CorrelationModel::new(10, 0.7, 1.0).expect("valid workload"),
            schemes: vec![
                Scheme::Mtsd,
                Scheme::Mtcd,
                Scheme::Mfcd,
                Scheme::Cmfsd { rho: 0.1 },
                Scheme::Cmfsd { rho: 0.9 },
            ],
        }
    }
}

/// One scheme's elasticities.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Scheme name.
    pub scheme: String,
    /// Base metric (average online time per file).
    pub base: f64,
    /// Elasticities in [`Knob::all`] order.
    pub elasticities: Vec<Elasticity>,
}

/// The ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// One row per scheme.
    pub rows: Vec<AblationRow>,
}

impl AblationResult {
    /// Renders the table (`% change of online/file per 1% change of θ`).
    pub fn table(&self) -> Table {
        let mut headers = vec!["scheme".to_string(), "online/file".to_string()];
        headers.extend(Knob::all().iter().map(|k| format!("E_{}", k.name())));
        let mut t = Table::new(
            "X6 — elasticities of the average online time per file",
            headers.iter().map(String::as_str).collect(),
        );
        for row in &self.rows {
            let mut cells = vec![row.scheme.clone(), format!("{:.2}", row.base)];
            cells.extend(
                row.elasticities
                    .iter()
                    .map(|e| format!("{:+.3}", e.elasticity)),
            );
            t.push_row(cells);
        }
        t
    }
}

/// Runs the ablation.
///
/// # Errors
/// Propagates sensitivity-computation failures.
pub fn run(cfg: &AblationConfig) -> Result<AblationResult, NumError> {
    let mut rows = Vec::with_capacity(cfg.schemes.len());
    for &scheme in &cfg.schemes {
        let es = elasticities(cfg.params, &cfg.model, scheme)?;
        rows.push(AblationRow {
            scheme: scheme.name(),
            base: es[0].base_metric,
            elasticities: es,
        });
    }
    Ok(AblationResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_and_orders_knobs() {
        let r = run(&AblationConfig::default()).unwrap();
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            assert_eq!(row.elasticities.len(), 4);
            assert!(row.base > 0.0);
        }
        let table = r.table();
        assert!(table.render().contains("E_γ"));
        assert_eq!(table.len(), 5);
    }

    #[test]
    fn headline_readings_hold() {
        let r = run(&AblationConfig::default()).unwrap();
        let find = |name: &str| {
            r.rows
                .iter()
                .find(|row| row.scheme == name)
                .unwrap_or_else(|| panic!("row {name}"))
        };
        let e_of = |row: &AblationRow, k: Knob| {
            row.elasticities
                .iter()
                .find(|e| e.knob == k)
                .unwrap()
                .elasticity
        };
        // MTSD is correlation-blind; concurrent schemes are not.
        assert!(e_of(find("MTSD"), Knob::P).abs() < 1e-6);
        assert!(e_of(find("MTCD"), Knob::P) > 0.0);
        // Collaboration nearly decouples CMFSD from the seed departure
        // rate (virtual seeds substitute for real ones), while MTSD pays
        // ~0.25% per 1% of γ.
        let e_gamma_collab = e_of(find("CMFSD(ρ=0.1)"), Knob::Gamma);
        let e_gamma_mtsd = e_of(find("MTSD"), Knob::Gamma);
        assert!(
            e_gamma_collab.abs() < 0.1 * e_gamma_mtsd,
            "collaboration should suppress γ dependence: {e_gamma_collab} vs {e_gamma_mtsd}"
        );
    }
}
