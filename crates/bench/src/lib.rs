//! # btfluid-bench
//!
//! The experiment harness: one function per figure of the paper, each
//! returning a structured result that renders as an aligned table (what the
//! CLI prints) and as CSV (what EXPERIMENTS.md records).
//!
//! | Experiment | Paper artifact | Function |
//! |---|---|---|
//! | F2  | Figure 2 — MTCD vs MTSD online time per file vs correlation | [`fig2::run`] |
//! | F3  | Figure 3 — per-class times at `p = 0.1` and `p = 1.0` | [`fig3::run`] |
//! | F4a | Figure 4(a) — CMFSD online time per file over `(p, ρ)` | [`fig4a::run`] |
//! | F4b/c | Figure 4(b),(c) — per-class CMFSD vs MFCD at `p = 0.9 / 0.1` | [`fig4bc::run`] |
//! | X3  | fluid vs simulator validation | [`validate::run`] |
//! | X4  | Adapt under cheaters (paper's future work) | [`adapt_exp::run`] |
//! | X5  | flash-crowd transients (ablation) | [`transient::run`] |
//! | X6  | parameter elasticities (ablation) | [`ablation::run`] |
//! | X8  | Zipf popularity skew (extension) | [`skew::run`] |
//!
//! Parameter sweeps are embarrassingly parallel and run on rayon.

#![forbid(unsafe_code)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it also
// rejects NaN, which is exactly what parameter validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod ablation;
pub mod adapt_exp;
pub mod fig2;
pub mod fig3;
pub mod fig4a;
pub mod fig4bc;
pub mod skew;
pub mod table;
pub mod transient;
pub mod validate;

pub use table::Table;

/// Convenience error alias.
pub type BenchError = btfluid_numkit::NumError;
