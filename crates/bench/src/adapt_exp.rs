//! Experiment X4: the Adapt mechanism under cheaters — the systematic
//! evaluation the paper lists as future work.
//!
//! Obedient peers join a CMFSD torrent at ρ = 0 and adapt from the observed
//! virtual-seed imbalance Δ; cheaters pin ρ = 1. The experiment sweeps the
//! cheater fraction and reports where the obedient population's ρ settles
//! and what everyone's per-file times become.
//!
//! Expected shape: with no cheaters, Δ hovers around 0 and obedient peers
//! stay near ρ = 0 (full collaboration); as the cheater fraction grows the
//! obedient peers consistently donate more than they receive, their ρ
//! rises, and the system degenerates toward MFCD — exactly the
//! self-protection story of Section 4.3.

use crate::table::Table;
use btfluid_core::adapt::AdaptConfig;
use btfluid_core::FluidParams;
use btfluid_des::{run_replications, AdaptSetup, DesConfig, OrderPolicy, SchemeKind};
use btfluid_numkit::stats::Welford;
use btfluid_numkit::NumError;
use btfluid_workload::CorrelationModel;

/// Configuration of the Adapt sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptExpConfig {
    /// Fluid parameters.
    pub params: FluidParams,
    /// Workload.
    pub model: CorrelationModel,
    /// Cheater fractions to sweep.
    pub cheater_fractions: Vec<f64>,
    /// Adapt controller constants.
    pub controller: AdaptConfig,
    /// Observation epoch.
    pub epoch: f64,
    /// DES replications per point.
    pub replications: usize,
    /// DES horizon.
    pub horizon: f64,
    /// Warm-up cut.
    pub warmup: f64,
    /// Base seed.
    pub seed: u64,
}

impl Default for AdaptExpConfig {
    fn default() -> Self {
        Self {
            params: FluidParams::paper(),
            model: CorrelationModel::new(10, 0.9, 0.25).expect("valid workload"),
            cheater_fractions: vec![0.0, 0.25, 0.5, 0.75],
            controller: AdaptConfig::default_for_mu(0.02),
            epoch: 20.0,
            replications: 3,
            horizon: 4000.0,
            warmup: 1000.0,
            seed: 43,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptPoint {
    /// Cheater fraction.
    pub cheater_fraction: f64,
    /// Mean final ρ of obedient multi-file peers.
    pub obedient_rho: f64,
    /// Fluid prediction of the obedient equilibrium ρ*
    /// ([`btfluid_core::cmfsd_mixed::adapt_equilibrium`]).
    pub fluid_rho_star: f64,
    /// Obedient peers' mean online time per file.
    pub obedient_online_per_file: f64,
    /// Cheaters' mean online time per file (NaN when there are none).
    pub cheater_online_per_file: f64,
    /// Population mean online time per file.
    pub online_per_file: f64,
}

/// The Adapt sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptResult {
    /// Points in sweep order.
    pub points: Vec<AdaptPoint>,
}

impl AdaptResult {
    /// Renders the sweep table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "X4 — Adapt under cheaters (CMFSD, obedient peers start at ρ = 0)",
            vec![
                "cheaters",
                "obedient ρ",
                "fluid ρ*",
                "obedient online/file",
                "cheater online/file",
                "population online/file",
            ],
        );
        for p in &self.points {
            t.push_row(vec![
                format!("{:.2}", p.cheater_fraction),
                format!("{:.3}", p.obedient_rho),
                format!("{:.3}", p.fluid_rho_star),
                format!("{:.2}", p.obedient_online_per_file),
                if p.cheater_online_per_file.is_nan() {
                    "-".into()
                } else {
                    format!("{:.2}", p.cheater_online_per_file)
                },
                format!("{:.2}", p.online_per_file),
            ]);
        }
        t
    }
}

/// Runs the sweep.
///
/// # Errors
/// Propagates configuration and simulation errors.
pub fn run(cfg: &AdaptExpConfig) -> Result<AdaptResult, NumError> {
    let mut points = Vec::with_capacity(cfg.cheater_fractions.len());
    for &frac in &cfg.cheater_fractions {
        let des_cfg = DesConfig {
            params: cfg.params,
            model: cfg.model,
            scheme: SchemeKind::Cmfsd { rho: 0.0 },
            horizon: cfg.horizon,
            warmup: cfg.warmup,
            drain: cfg.horizon,
            seed: cfg.seed,
            adapt: Some(AdaptSetup {
                controller: cfg.controller,
                epoch: cfg.epoch,
                cheater_fraction: frac,
            }),
            origin_seeds: 1,
            warm_start: false,
            order_policy: OrderPolicy::default(),
            record_every: None,
            exact_rates: false,
            aggregate: false,
            checked: false,
        };
        let summary = run_replications(&des_cfg, cfg.replications, cfg.seed)?;
        // Aggregate per-record so classes weight naturally.
        let mut rho = Welford::new();
        let mut obedient_online = Welford::new();
        let mut cheater_online = Welford::new();
        let mut online = Welford::new();
        for outcome in &summary.outcomes {
            for r in &outcome.records {
                let per_file = r.online_fluid / r.class as f64;
                online.push(per_file);
                if r.cheater {
                    cheater_online.push(per_file);
                } else {
                    obedient_online.push(per_file);
                    if r.class >= 2 {
                        rho.push(r.final_rho);
                    }
                }
            }
        }
        // Fluid prediction: split the workload by the cheater fraction.
        let all = cfg.model.class_rates();
        let obedient_rates: Vec<f64> = all.iter().map(|l| l * (1.0 - frac)).collect();
        let cheater_rates: Vec<f64> = all.iter().map(|l| l * frac).collect();
        let fluid_rho_star = btfluid_core::cmfsd_mixed::adapt_equilibrium(
            cfg.params,
            obedient_rates,
            cheater_rates,
            &cfg.controller,
        )?;
        points.push(AdaptPoint {
            cheater_fraction: frac,
            obedient_rho: rho.mean(),
            fluid_rho_star,
            obedient_online_per_file: obedient_online.mean(),
            cheater_online_per_file: if cheater_online.count() > 0 {
                cheater_online.mean()
            } else {
                f64::NAN
            },
            online_per_file: online.mean(),
        });
    }
    Ok(AdaptResult { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapt_reacts_to_cheaters() {
        let cfg = AdaptExpConfig {
            cheater_fractions: vec![0.0, 0.6],
            replications: 2,
            horizon: 3000.0,
            warmup: 800.0,
            ..Default::default()
        };
        let r = run(&cfg).unwrap();
        assert_eq!(r.points.len(), 2);
        let honest = &r.points[0];
        let infested = &r.points[1];
        // With no cheaters the obedient ρ stays low…
        assert!(
            honest.obedient_rho < 0.35,
            "honest swarm ρ = {}",
            honest.obedient_rho
        );
        // …and rises when the majority cheat.
        assert!(
            infested.obedient_rho > honest.obedient_rho,
            "ρ should rise with cheaters: {} vs {}",
            infested.obedient_rho,
            honest.obedient_rho
        );
        // Cheater column present only when there are cheaters.
        assert!(honest.cheater_online_per_file.is_nan());
        assert!(infested.cheater_online_per_file.is_finite());
        assert!(r.table().render().contains("obedient"));
    }
}
