//! Figure 3: per-class online and download time *per file* under MTCD and
//! MTSD, at `p = 0.1` and `p = 1.0`.
//!
//! Expected shape: MTSD is flat (80 online / 60 download per file for every
//! class). MTCD's download per file is the fair constant `G` and its online
//! per file is `G + 1/(iγ)` — decreasing in the class `i`, so peers
//! requesting more files do better per file.

use crate::table::Table;
use btfluid_core::mtcd::Mtcd;
use btfluid_core::mtsd::Mtsd;
use btfluid_core::FluidParams;
use btfluid_numkit::NumError;
use btfluid_workload::CorrelationModel;
use rayon::prelude::*;

/// Configuration of the Figure 3 evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Config {
    /// Fluid parameters.
    pub params: FluidParams,
    /// Number of files `K`.
    pub k: u32,
    /// The correlations to evaluate (paper: 0.1 and 1.0).
    pub correlations: Vec<f64>,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Self {
            params: FluidParams::paper(),
            k: 10,
            correlations: vec![0.1, 1.0],
        }
    }
}

/// Per-class numbers at one correlation value.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Panel {
    /// File correlation of this panel.
    pub p: f64,
    /// Per-class MTCD online time per file (index 0 ↔ class 1).
    pub mtcd_online: Vec<f64>,
    /// Per-class MTCD download time per file.
    pub mtcd_download: Vec<f64>,
    /// Per-class MTSD online time per file.
    pub mtsd_online: Vec<f64>,
    /// Per-class MTSD download time per file.
    pub mtsd_download: Vec<f64>,
}

/// The full Figure 3 result (one panel per correlation).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Result {
    /// The panels, in the order of [`Fig3Config::correlations`].
    pub panels: Vec<Fig3Panel>,
}

impl Fig3Result {
    /// Renders one aligned table per panel.
    pub fn tables(&self) -> Vec<Table> {
        self.panels
            .iter()
            .map(|panel| {
                let mut t = Table::new(
                    format!(
                        "Figure 3 — per-class times per file at p = {} (online / download)",
                        panel.p
                    ),
                    vec!["class", "MTCD online", "MTCD dl", "MTSD online", "MTSD dl"],
                );
                for i in 0..panel.mtcd_online.len() {
                    t.push_row(vec![
                        format!("{}", i + 1),
                        format!("{:.3}", panel.mtcd_online[i]),
                        format!("{:.3}", panel.mtcd_download[i]),
                        format!("{:.3}", panel.mtsd_online[i]),
                        format!("{:.3}", panel.mtsd_download[i]),
                    ]);
                }
                t
            })
            .collect()
    }
}

/// Evaluates the panels.
///
/// # Errors
/// Propagates model validity errors.
pub fn run(cfg: &Fig3Config) -> Result<Fig3Result, NumError> {
    // Panels are independent; evaluate them in parallel, order preserved.
    let panels = cfg
        .correlations
        .par_iter()
        .map(|&p| -> Result<Fig3Panel, NumError> {
            let model = CorrelationModel::new(cfg.k, p, 1.0)?;
            let mtcd = Mtcd::new(cfg.params, model.per_torrent_rates())?.class_times()?;
            let mtsd = Mtsd::new(cfg.params).class_times(cfg.k as usize)?;
            Ok(Fig3Panel {
                p,
                mtcd_online: mtcd.online_per_file_vec(),
                mtcd_download: mtcd.download_per_file_vec(),
                mtsd_online: mtsd.online_per_file_vec(),
                mtsd_download: mtsd.download_per_file_vec(),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Fig3Result { panels })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_reproduced() {
        let r = run(&Fig3Config::default()).unwrap();
        assert_eq!(r.panels.len(), 2);
        for panel in &r.panels {
            // MTSD: flat 80 / 60.
            for i in 0..10 {
                assert!((panel.mtsd_online[i] - 80.0).abs() < 1e-9);
                assert!((panel.mtsd_download[i] - 60.0).abs() < 1e-9);
            }
            // MTCD online per file decreases with class.
            for w in panel.mtcd_online.windows(2) {
                assert!(w[1] < w[0]);
            }
            // MTCD download per file is the same G for every class.
            let g = panel.mtcd_download[0];
            for &d in &panel.mtcd_download {
                assert!((d - g).abs() < 1e-9);
            }
        }
        // At p = 1.0, G = 96; at p = 0.1, G ≈ 73.9.
        assert!((r.panels[1].mtcd_download[0] - 96.0).abs() < 1e-9);
        assert!((r.panels[0].mtcd_download[0] - 73.947).abs() < 0.01);
    }

    #[test]
    fn low_correlation_multi_file_peers_beat_mtsd() {
        // The paper's observation: at p = 0.1, high classes have a lower
        // online time per file under MTCD than MTSD, but class 1 is worse.
        let r = run(&Fig3Config::default()).unwrap();
        let panel = &r.panels[0];
        assert!(panel.mtcd_online[9] < panel.mtsd_online[9]);
        assert!(panel.mtcd_online[0] > panel.mtsd_online[0]);
    }

    #[test]
    fn high_correlation_mtcd_loses_everywhere() {
        // At p = 1.0 both metrics are worse under MTCD for every class.
        let r = run(&Fig3Config::default()).unwrap();
        let panel = &r.panels[1];
        for i in 0..10 {
            assert!(panel.mtcd_download[i] > panel.mtsd_download[i]);
        }
        // Online: all classes ≥ 96 + 2 = 98 ≥ ... > 80? The per-file online
        // is G + 1/(iγ) ≥ 96 + 2 = 98 > 80 for every class.
        for i in 0..10 {
            assert!(panel.mtcd_online[i] > panel.mtsd_online[i]);
        }
    }

    #[test]
    fn tables_render() {
        let r = run(&Fig3Config::default()).unwrap();
        let tables = r.tables();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 10);
        assert!(tables[0].render().contains("MTCD online"));
    }
}
