//! Experiment X3: fluid-model predictions vs the peer-level simulator.
//!
//! For each scheme the harness runs independent DES replications and
//! compares the measured average online/download time per file against the
//! fluid steady state — the peer-level check the paper itself never ran.

use crate::table::Table;
use btfluid_core::{evaluate_scheme, FluidParams, Scheme};
use btfluid_des::{run_replications, DesConfig, OrderPolicy, SchemeKind};
use btfluid_numkit::NumError;
use btfluid_workload::CorrelationModel;

/// Configuration of the validation experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateConfig {
    /// Fluid parameters.
    pub params: FluidParams,
    /// Workload (the DES scales `λ₀` directly from this model).
    pub model: CorrelationModel,
    /// Schemes to validate.
    pub schemes: Vec<SchemeKind>,
    /// DES replications per scheme.
    pub replications: usize,
    /// DES horizon.
    pub horizon: f64,
    /// Warm-up cut.
    pub warmup: f64,
    /// Base seed.
    pub seed: u64,
}

impl Default for ValidateConfig {
    fn default() -> Self {
        Self {
            params: FluidParams::paper(),
            model: CorrelationModel::new(10, 0.5, 0.25).expect("valid workload"),
            schemes: vec![
                SchemeKind::Mtsd,
                SchemeKind::Mtcd,
                SchemeKind::Mfcd,
                SchemeKind::Cmfsd { rho: 0.5 },
            ],
            replications: 4,
            horizon: 4000.0,
            warmup: 1000.0,
            seed: 2006,
        }
    }
}

/// One scheme's fluid-vs-simulation comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateRow {
    /// Scheme name.
    pub scheme: String,
    /// Fluid-model average online time per file.
    pub fluid_online: f64,
    /// Simulated mean (over replications).
    pub sim_online: f64,
    /// 95% CI half-width of the simulated mean.
    pub sim_online_ci: f64,
    /// Fluid-model average download time per file.
    pub fluid_download: f64,
    /// Simulated mean.
    pub sim_download: f64,
    /// Censored users across replications (should be 0).
    pub censored: usize,
}

/// The validation result.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateResult {
    /// One row per scheme.
    pub rows: Vec<ValidateRow>,
}

impl ValidateResult {
    /// Renders the comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "X3 — fluid model vs peer-level simulation (online/download time per file)",
            vec![
                "scheme",
                "fluid online",
                "sim online",
                "±95%",
                "fluid dl",
                "sim dl",
                "censored",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.scheme.clone(),
                format!("{:.2}", r.fluid_online),
                format!("{:.2}", r.sim_online),
                format!("{:.2}", r.sim_online_ci),
                format!("{:.2}", r.fluid_download),
                format!("{:.2}", r.sim_download),
                format!("{}", r.censored),
            ]);
        }
        t
    }

    /// Largest relative online-time error across schemes.
    pub fn worst_online_error(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| ((r.sim_online - r.fluid_online) / r.fluid_online).abs())
            .fold(0.0, f64::max)
    }
}

fn to_fluid_scheme(kind: SchemeKind) -> Scheme {
    match kind {
        SchemeKind::Mtsd => Scheme::Mtsd,
        SchemeKind::Mtcd => Scheme::Mtcd,
        SchemeKind::Mfcd => Scheme::Mfcd,
        SchemeKind::Cmfsd { rho } => Scheme::Cmfsd { rho },
    }
}

/// Runs the validation.
///
/// # Errors
/// Propagates fluid-model and simulation errors.
pub fn run(cfg: &ValidateConfig) -> Result<ValidateResult, NumError> {
    let mut rows = Vec::with_capacity(cfg.schemes.len());
    for &kind in &cfg.schemes {
        let fluid = evaluate_scheme(cfg.params, &cfg.model, to_fluid_scheme(kind))?;
        let des_cfg = DesConfig {
            params: cfg.params,
            model: cfg.model,
            scheme: kind,
            horizon: cfg.horizon,
            warmup: cfg.warmup,
            drain: cfg.horizon,
            seed: cfg.seed,
            adapt: None,
            origin_seeds: 0,
            warm_start: false,
            order_policy: OrderPolicy::default(),
            record_every: None,
            exact_rates: false,
            aggregate: false,
            checked: false,
        };
        let summary = run_replications(&des_cfg, cfg.replications, cfg.seed)?;
        rows.push(ValidateRow {
            scheme: kind.name(),
            fluid_online: fluid.avg_online_per_file,
            sim_online: summary.online_per_file.mean(),
            sim_online_ci: summary.online_ci95(),
            fluid_download: fluid.avg_download_per_file,
            sim_download: summary.download_per_file.mean(),
            censored: summary.censored,
        });
    }
    Ok(ValidateResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluid_and_simulation_agree() {
        // Smaller config to keep the test quick: two schemes, 2 reps.
        let cfg = ValidateConfig {
            schemes: vec![SchemeKind::Mtsd, SchemeKind::Cmfsd { rho: 0.5 }],
            replications: 2,
            horizon: 3000.0,
            warmup: 800.0,
            ..Default::default()
        };
        let r = run(&cfg).unwrap();
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            let rel = ((row.sim_online - row.fluid_online) / row.fluid_online).abs();
            assert!(
                rel < 0.12,
                "{}: sim {} vs fluid {} ({}% off)",
                row.scheme,
                row.sim_online,
                row.fluid_online,
                rel * 100.0
            );
        }
        assert!(r.worst_online_error() < 0.12);
        assert!(r.table().render().contains("MTSD"));
    }
}
