//! Figure 2: average online time per file vs file correlation `p`, MTCD vs
//! MTSD. `K = 10, μ = 0.02, η = 0.5, γ = 0.05`.
//!
//! Expected shape: MTSD is the constant `(γ−μ)/(γμη) + 1/γ = 80`; MTCD
//! starts there at `p → 0` and worsens monotonically to
//! `(Kγ−μ)/(γμη·K) + ... = 98` at `p = 1`.

use crate::table::Table;
use btfluid_core::{evaluate_scheme, FluidParams, Scheme};
use btfluid_numkit::NumError;
use btfluid_workload::CorrelationModel;
use rayon::prelude::*;

/// Configuration of the Figure 2 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Config {
    /// Fluid parameters (paper: `μ = 0.02, η = 0.5, γ = 0.05`).
    pub params: FluidParams,
    /// Number of files `K` (paper: 10).
    pub k: u32,
    /// Number of sweep points over `p ∈ (0, 1]`.
    pub points: usize,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Self {
            params: FluidParams::paper(),
            k: 10,
            points: 50,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Point {
    /// File correlation.
    pub p: f64,
    /// MTCD average online time per file.
    pub mtcd: f64,
    /// MTSD average online time per file.
    pub mtsd: f64,
}

/// The full Figure 2 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Result {
    /// Sweep points in increasing `p`.
    pub points: Vec<Fig2Point>,
}

impl Fig2Result {
    /// Renders the aligned table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 2 — average online time per file vs file correlation",
            vec!["p", "MTCD", "MTSD"],
        );
        for pt in &self.points {
            t.push_nums(&[pt.p, pt.mtcd, pt.mtsd], 3);
        }
        t
    }
}

/// Runs the sweep (points are independent; computed in parallel).
///
/// # Errors
/// Propagates model validity errors for any sweep point.
pub fn run(cfg: &Fig2Config) -> Result<Fig2Result, NumError> {
    if cfg.points < 2 {
        return Err(NumError::InvalidInput {
            what: "fig2::run",
            detail: "need at least two sweep points".into(),
        });
    }
    let ps: Vec<f64> = (1..=cfg.points)
        .map(|i| i as f64 / cfg.points as f64)
        .collect();
    let points: Result<Vec<Fig2Point>, NumError> = ps
        .par_iter()
        .map(|&p| {
            let model = CorrelationModel::new(cfg.k, p, 1.0)?;
            let mtcd = evaluate_scheme(cfg.params, &model, Scheme::Mtcd)?;
            let mtsd = evaluate_scheme(cfg.params, &model, Scheme::Mtsd)?;
            Ok(Fig2Point {
                p,
                mtcd: mtcd.avg_online_per_file,
                mtsd: mtsd.avg_online_per_file,
            })
        })
        .collect();
    Ok(Fig2Result { points: points? })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_reproduced() {
        let r = run(&Fig2Config::default()).unwrap();
        assert_eq!(r.points.len(), 50);
        // MTSD flat at 80.
        for pt in &r.points {
            assert!((pt.mtsd - 80.0).abs() < 1e-9, "p = {}", pt.p);
        }
        // MTCD monotone increasing, from ≈80 to 98.
        for w in r.points.windows(2) {
            assert!(w[1].mtcd >= w[0].mtcd, "not monotone at p = {}", w[1].p);
        }
        let last = r.points.last().unwrap();
        assert!((last.mtcd - 98.0).abs() < 1e-9, "p = 1 value {}", last.mtcd);
        // The gap at low correlation is small ("similar performance").
        let first = &r.points[0];
        assert!(first.mtcd - first.mtsd < 5.0);
    }

    #[test]
    fn table_and_csv_render() {
        let r = run(&Fig2Config {
            points: 5,
            ..Default::default()
        })
        .unwrap();
        let t = r.table();
        assert_eq!(t.len(), 5);
        assert!(t.render().contains("MTCD"));
        assert!(t.to_csv().starts_with("p,MTCD,MTSD"));
    }

    #[test]
    fn too_few_points_rejected() {
        let cfg = Fig2Config {
            points: 1,
            ..Default::default()
        };
        assert!(run(&cfg).is_err());
    }

    #[test]
    fn k1_collapses_schemes() {
        // With one file there is nothing to be concurrent about.
        let r = run(&Fig2Config {
            k: 1,
            points: 5,
            ..Default::default()
        })
        .unwrap();
        for pt in &r.points {
            assert!((pt.mtcd - pt.mtsd).abs() < 1e-9);
        }
    }
}
