//! Experiment X8 (extension): popularity skew and multi-torrent
//! downloading.
//!
//! The paper's correlation model treats all `K` files as equally popular;
//! its future work asks how real (skewed) correlation patterns behave.
//! Here the per-file probabilities follow Zipf(`s`) with the *mean*
//! request probability held fixed (the total workload is invariant in
//! `s`), and each torrent's MTCD fluid model is solved with its own
//! Poisson-binomial class rates.
//!
//! The system-wide average online time per file weighs torrent `j` by its
//! file-request rate `λ₀·p_j`:
//!
//! ```text
//! T̄ = Σⱼ λ₀·p_j·T̄ⱼ / Σⱼ λ₀·p_j
//! ```
//!
//! where `T̄ⱼ` is torrent `j`'s per-file online time averaged over its
//! peers. MTSD stays at the flat 80 regardless of skew (each download
//! still gets the user's full bandwidth), so the table directly shows what
//! skew does to concurrent downloading.

use crate::table::Table;
use btfluid_core::mtcd::Mtcd;
use btfluid_core::mtsd::Mtsd;
use btfluid_core::FluidParams;
use btfluid_numkit::NumError;
use btfluid_workload::popularity::NonUniformModel;
use rayon::prelude::*;

/// Configuration of the skew sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewConfig {
    /// Fluid parameters.
    pub params: FluidParams,
    /// Number of files `K`.
    pub k: u32,
    /// Mean per-file request probability (held fixed across the sweep).
    pub p_mean: f64,
    /// Zipf exponents to sweep (0 = the paper's uniform case).
    pub exponents: Vec<f64>,
}

impl Default for SkewConfig {
    fn default() -> Self {
        Self {
            params: FluidParams::paper(),
            k: 10,
            p_mean: 0.5,
            exponents: vec![0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0],
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewPoint {
    /// Zipf exponent.
    pub s: f64,
    /// MTCD system-wide average online time per file.
    pub mtcd: f64,
    /// The hottest torrent's per-file online time under MTCD.
    pub mtcd_hottest: f64,
    /// The coldest torrent's per-file online time under MTCD.
    pub mtcd_coldest: f64,
    /// MTSD average (constant in `s`).
    pub mtsd: f64,
}

/// The skew sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewResult {
    /// Points in sweep order.
    pub points: Vec<SkewPoint>,
}

impl SkewResult {
    /// Renders the sweep table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "X8 — Zipf popularity skew (mean p fixed): online time per file",
            vec!["s", "MTCD", "hottest", "coldest", "MTSD"],
        );
        for p in &self.points {
            t.push_nums(&[p.s, p.mtcd, p.mtcd_hottest, p.mtcd_coldest, p.mtsd], 3);
        }
        t
    }
}

/// Per-torrent MTCD per-file online time, averaged over the torrent's
/// peers weighted by their per-torrent entry rates.
fn torrent_online_per_file(params: FluidParams, rates: &[f64]) -> Result<f64, NumError> {
    let mtcd = Mtcd::new(params, rates.to_vec())?;
    let times = mtcd.class_times()?;
    // Per-torrent peers of class i arrive at λⱼⁱ; each accounts for one
    // file in this torrent with per-file online time Tᵢ/i.
    let mut num = 0.0;
    let mut den = 0.0;
    for (idx, &l) in rates.iter().enumerate() {
        if l > 0.0 {
            num += l * times.online_per_file(idx + 1);
            den += l;
        }
    }
    Ok(num / den)
}

/// Runs the sweep.
///
/// # Errors
/// Propagates model validity errors.
pub fn run(cfg: &SkewConfig) -> Result<SkewResult, NumError> {
    let mtsd = Mtsd::new(cfg.params);
    let mtsd_value = mtsd.download_time()? + cfg.params.seed_residence();
    let points: Result<Vec<SkewPoint>, NumError> = cfg
        .exponents
        .par_iter()
        .map(|&s| {
            let model = NonUniformModel::zipf(cfg.k, s, cfg.p_mean, 1.0)?;
            let mut weighted = 0.0;
            let mut weight = 0.0;
            let mut hottest = f64::NAN;
            let mut coldest = f64::NAN;
            for j in 0..cfg.k as usize {
                let rates = model.per_torrent_rates(j);
                let t_j = torrent_online_per_file(cfg.params, &rates)?;
                let w = model.probs()[j];
                weighted += w * t_j;
                weight += w;
                if j == 0 {
                    hottest = t_j;
                }
                if j == cfg.k as usize - 1 {
                    coldest = t_j;
                }
            }
            Ok(SkewPoint {
                s,
                mtcd: weighted / weight,
                mtcd_hottest: hottest,
                mtcd_coldest: coldest,
                mtsd: mtsd_value,
            })
        })
        .collect();
    Ok(SkewResult { points: points? })
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_core::{evaluate_scheme, Scheme};
    use btfluid_workload::CorrelationModel;

    #[test]
    fn uniform_point_matches_fig2() {
        // s = 0 must reproduce the Figure 2 MTCD value at p = 0.5.
        let r = run(&SkewConfig::default()).unwrap();
        let s0 = &r.points[0];
        assert_eq!(s0.s, 0.0);
        let reference = evaluate_scheme(
            FluidParams::paper(),
            &CorrelationModel::new(10, 0.5, 1.0).unwrap(),
            Scheme::Mtcd,
        )
        .unwrap();
        assert!(
            (s0.mtcd - reference.avg_online_per_file).abs() < 1e-6,
            "s=0: {} vs fig2 {}",
            s0.mtcd,
            reference.avg_online_per_file
        );
        // Uniform ⇒ hottest = coldest.
        assert!((s0.mtcd_hottest - s0.mtcd_coldest).abs() < 1e-9);
    }

    #[test]
    fn mtsd_flat_across_skew() {
        let r = run(&SkewConfig::default()).unwrap();
        for p in &r.points {
            assert!((p.mtsd - 80.0).abs() < 1e-9);
        }
    }

    #[test]
    fn skew_separates_hot_and_cold_torrents() {
        let r = run(&SkewConfig::default()).unwrap();
        let steep = r.points.last().unwrap();
        assert!(steep.s >= 1.5);
        assert!(
            (steep.mtcd_hottest - steep.mtcd_coldest).abs() > 1.0,
            "skew should separate torrents: hot {} vs cold {}",
            steep.mtcd_hottest,
            steep.mtcd_coldest
        );
    }

    #[test]
    fn table_renders() {
        let r = run(&SkewConfig {
            exponents: vec![0.0, 1.0],
            ..Default::default()
        })
        .unwrap();
        let t = r.table();
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("hottest"));
    }
}
