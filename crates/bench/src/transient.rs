//! Experiment X5 (ablation): flash-crowd transients of the fluid models.
//!
//! The paper evaluates only steady states; this ablation integrates the
//! MTCD ODE (Eq. 1) and the single-torrent baseline from a flash-crowd
//! initial condition and reports how long each takes to come within 5% of
//! its equilibrium downloader population.

use crate::table::Table;
use btfluid_core::base::SingleTorrent;
use btfluid_core::mtcd::Mtcd;
use btfluid_core::FluidParams;
use btfluid_numkit::ode::{integrate_observed, ObserveEvery, OdeSystem, Rk4};
use btfluid_numkit::series::TimeSeries;
use btfluid_numkit::NumError;
use btfluid_workload::CorrelationModel;

/// Configuration of the transient experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientConfig {
    /// Fluid parameters.
    pub params: FluidParams,
    /// Number of files `K`.
    pub k: u32,
    /// File correlation for the MTCD scenario.
    pub p: f64,
    /// Flash-crowd size: initial downloaders dropped into the system at
    /// `t = 0` (spread over classes proportionally to their entry rates).
    pub flash_crowd: f64,
    /// Integration horizon.
    pub horizon: f64,
    /// Fixed RK4 step.
    pub step: f64,
}

impl Default for TransientConfig {
    fn default() -> Self {
        Self {
            params: FluidParams::paper(),
            k: 10,
            p: 0.5,
            flash_crowd: 200.0,
            horizon: 2000.0,
            step: 0.5,
        }
    }
}

/// The transient trajectories and settling times.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    /// Total downloader population over time under MTCD (channels:
    /// `downloaders`, `seeds`).
    pub mtcd: TimeSeries,
    /// Single-torrent baseline trajectory (channels: `downloaders`,
    /// `seeds`).
    pub single: TimeSeries,
    /// Time for MTCD total downloaders to come within 5% of equilibrium.
    pub mtcd_settling: Option<f64>,
    /// Same for the single torrent.
    pub single_settling: Option<f64>,
}

impl TransientResult {
    /// Renders the settling-time summary.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "X5 — flash-crowd settling times (5% band around equilibrium)",
            vec!["system", "settling time"],
        );
        let fmt = |v: &Option<f64>| match v {
            Some(x) => format!("{x:.1}"),
            None => "did not settle".into(),
        };
        t.push_row(vec!["MTCD (Eq. 1)".into(), fmt(&self.mtcd_settling)]);
        t.push_row(vec!["single torrent".into(), fmt(&self.single_settling)]);
        t
    }
}

/// Last time the trajectory is *outside* the ±5% band around `target`
/// (after which it stays inside); `None` when it never enters for good.
fn settling_time(times: &[f64], values: &[f64], target: f64) -> Option<f64> {
    let band = 0.05 * target.abs().max(1e-9);
    let mut last_outside = None;
    for (&t, &v) in times.iter().zip(values) {
        if (v - target).abs() > band {
            last_outside = Some(t);
        }
    }
    match last_outside {
        // Outside at the very end means it never settled.
        Some(t) if (t - *times.last().expect("non-empty")).abs() < 1e-9 => None,
        Some(t) => Some(t),
        None => Some(0.0),
    }
}

/// Runs the experiment.
///
/// # Errors
/// Propagates model and integration errors.
pub fn run(cfg: &TransientConfig) -> Result<TransientResult, NumError> {
    let model = CorrelationModel::new(cfg.k, cfg.p, 1.0)?;

    // MTCD with a flash crowd: initial downloaders distributed over
    // classes in proportion to the entry rates.
    let mtcd = Mtcd::new(cfg.params, model.per_torrent_rates())?;
    let total_rate: f64 = mtcd.lambdas().iter().sum();
    let mut x0 = vec![0.0; mtcd.dim()];
    for (i, &l) in mtcd.lambdas().iter().enumerate() {
        x0[i] = cfg.flash_crowd * l / total_rate;
    }
    let raw = integrate_observed(
        &Rk4,
        &mtcd,
        0.0,
        &x0,
        cfg.horizon,
        cfg.step,
        ObserveEvery::Time(cfg.horizon / 400.0),
        None,
    )?;
    // Collapse per-class channels into totals.
    let k = mtcd.k();
    let mut mtcd_series = TimeSeries::new(vec!["downloaders", "seeds"])?;
    for (row, &t) in raw.times().iter().enumerate() {
        let mut x_tot = 0.0;
        let mut y_tot = 0.0;
        for c in 0..k {
            x_tot += raw.channel(c)[row];
            y_tot += raw.channel(k + c)[row];
        }
        mtcd_series.push(t, &[x_tot, y_tot])?;
    }
    let eq = mtcd.steady_state()?;
    let eq_downloaders: f64 = eq.downloaders.iter().sum();
    let mtcd_settling = settling_time(mtcd_series.times(), &mtcd_series.channel(0), eq_downloaders);

    // Single-torrent baseline with the same per-torrent arrival mass.
    let single = SingleTorrent::new(cfg.params, model.per_torrent_total_rate())?;
    let single_series = integrate_observed(
        &Rk4,
        &single,
        0.0,
        &[cfg.flash_crowd / cfg.k as f64, 0.0],
        cfg.horizon,
        cfg.step,
        ObserveEvery::Time(cfg.horizon / 400.0),
        Some(vec!["downloaders".into(), "seeds".into()]),
    )?;
    let single_eq = single.steady_state()?;
    let single_settling = settling_time(
        single_series.times(),
        &single_series.channel(0),
        single_eq.downloaders,
    );

    Ok(TransientResult {
        mtcd: mtcd_series,
        single: single_series,
        mtcd_settling,
        single_settling,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_crowd_settles() {
        let r = run(&TransientConfig::default()).unwrap();
        let s = r.mtcd_settling.expect("MTCD should settle");
        assert!(s > 0.0 && s < 2000.0, "settling = {s}");
        let s1 = r.single_settling.expect("single torrent should settle");
        assert!(s1 > 0.0 && s1 < 2000.0);
        // Final populations match the closed forms.
        let (t_last, last) = r.mtcd.last().unwrap();
        assert!(t_last >= 1999.0);
        assert!(last[0] > 0.0);
        assert!(r.table().render().contains("settling"));
    }

    #[test]
    fn settling_time_helper() {
        // Trajectory: outside, outside, inside, inside.
        let times = [0.0, 1.0, 2.0, 3.0];
        let values = [10.0, 8.0, 5.1, 5.0];
        assert_eq!(settling_time(&times, &values, 5.0), Some(1.0));
        // Never settles (outside at the end).
        let values = [10.0, 8.0, 5.1, 9.0];
        assert_eq!(settling_time(&times, &values, 5.0), None);
        // Always inside.
        let values = [5.0, 5.1, 5.0, 5.05];
        assert_eq!(settling_time(&times, &values, 5.0), Some(0.0));
    }

    #[test]
    fn no_flash_crowd_settles_fast() {
        // Starting from empty still converges (smaller settling than the
        // big flash crowd at equal parameters is not guaranteed, but it
        // must settle).
        let r = run(&TransientConfig {
            flash_crowd: 1e-9,
            ..Default::default()
        })
        .unwrap();
        assert!(r.mtcd_settling.is_some());
    }
}
