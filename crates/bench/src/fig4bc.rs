//! Figures 4(b) and 4(c): per-class online and download time per file
//! under CMFSD (ρ = 0.1 and ρ = 0.9) and MFCD, at `p = 0.9` (panel b) and
//! `p = 0.1` (panel c).
//!
//! Expected shape: single-file peers download fastest under CMFSD (the
//! class unfairness); at high correlation with small ρ, *every* class beats
//! MFCD by a wide margin; at low correlation with large ρ the multi-file
//! classes gain nothing over MFCD.

use crate::table::Table;
use btfluid_core::cmfsd::Cmfsd;
use btfluid_core::mfcd::Mfcd;
use btfluid_core::FluidParams;
use btfluid_numkit::NumError;
use btfluid_workload::CorrelationModel;
use rayon::prelude::*;

/// Configuration of the Figure 4(b)/(c) evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4bcConfig {
    /// Fluid parameters.
    pub params: FluidParams,
    /// Number of files `K`.
    pub k: u32,
    /// Panel correlations (paper: 0.9 for (b), 0.1 for (c)).
    pub correlations: Vec<f64>,
    /// The two polarized ρ values (paper: 0.1 and 0.9).
    pub rhos: (f64, f64),
}

impl Default for Fig4bcConfig {
    fn default() -> Self {
        Self {
            params: FluidParams::paper(),
            k: 10,
            correlations: vec![0.9, 0.1],
            rhos: (0.1, 0.9),
        }
    }
}

/// Per-class curves at one correlation.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4bcPanel {
    /// Panel correlation.
    pub p: f64,
    /// CMFSD at the low ρ: (online per file, download per file) per class.
    pub cmfsd_low: (Vec<f64>, Vec<f64>),
    /// CMFSD at the high ρ.
    pub cmfsd_high: (Vec<f64>, Vec<f64>),
    /// MFCD reference.
    pub mfcd: (Vec<f64>, Vec<f64>),
}

/// The Figure 4(b)/(c) result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4bcResult {
    /// Low/high ρ used.
    pub rhos: (f64, f64),
    /// Panels in config order.
    pub panels: Vec<Fig4bcPanel>,
}

impl Fig4bcResult {
    /// Renders one aligned table per panel.
    pub fn tables(&self) -> Vec<Table> {
        let (rl, rh) = self.rhos;
        self.panels
            .iter()
            .map(|panel| {
                let mut t = Table::new(
                    format!(
                        "Figure 4(b/c) — per-class times per file at p = {}",
                        panel.p
                    ),
                    vec![
                        "class",
                        &format!("CMFSD(ρ={rl}) online"),
                        &format!("CMFSD(ρ={rl}) dl"),
                        &format!("CMFSD(ρ={rh}) online"),
                        &format!("CMFSD(ρ={rh}) dl"),
                        "MFCD online",
                        "MFCD dl",
                    ],
                );
                for i in 0..panel.mfcd.0.len() {
                    t.push_row(vec![
                        format!("{}", i + 1),
                        format!("{:.3}", panel.cmfsd_low.0[i]),
                        format!("{:.3}", panel.cmfsd_low.1[i]),
                        format!("{:.3}", panel.cmfsd_high.0[i]),
                        format!("{:.3}", panel.cmfsd_high.1[i]),
                        format!("{:.3}", panel.mfcd.0[i]),
                        format!("{:.3}", panel.mfcd.1[i]),
                    ]);
                }
                t
            })
            .collect()
    }
}

/// Evaluates the panels.
///
/// # Errors
/// Propagates model validity errors.
pub fn run(cfg: &Fig4bcConfig) -> Result<Fig4bcResult, NumError> {
    // Panels are independent; evaluate them in parallel, order preserved.
    let panels = cfg
        .correlations
        .par_iter()
        .map(|&p| -> Result<Fig4bcPanel, NumError> {
            let model = CorrelationModel::new(cfg.k, p, 1.0)?;
            let eval_cmfsd = |rho: f64| -> Result<(Vec<f64>, Vec<f64>), NumError> {
                let t = Cmfsd::new(cfg.params, model.class_rates(), rho)?.class_times()?;
                Ok((t.online_per_file_vec(), t.download_per_file_vec()))
            };
            let mfcd_t = Mfcd::from_correlation(cfg.params, &model)?.class_times()?;
            Ok(Fig4bcPanel {
                p,
                cmfsd_low: eval_cmfsd(cfg.rhos.0)?,
                cmfsd_high: eval_cmfsd(cfg.rhos.1)?,
                mfcd: (mfcd_t.online_per_file_vec(), mfcd_t.download_per_file_vec()),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Fig4bcResult {
        rhos: cfg.rhos,
        panels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_reproduced() {
        let r = run(&Fig4bcConfig::default()).unwrap();
        assert_eq!(r.panels.len(), 2);
        let high_p = &r.panels[0]; // p = 0.9
        let low_p = &r.panels[1]; // p = 0.1

        // (b) p = 0.9, ρ = 0.1: every class improves a lot over MFCD.
        for i in 0..10 {
            assert!(
                high_p.cmfsd_low.0[i] < high_p.mfcd.0[i] - 10.0,
                "class {}: CMFSD {} vs MFCD {}",
                i + 1,
                high_p.cmfsd_low.0[i],
                high_p.mfcd.0[i]
            );
        }
        // Class unfairness: class 1 downloads faster than class 10
        // whenever ρ < 1.
        for panel in &r.panels {
            assert!(panel.cmfsd_low.1[0] < panel.cmfsd_low.1[9]);
            assert!(panel.cmfsd_high.1[0] < panel.cmfsd_high.1[9]);
        }
        // (c) p = 0.1, ρ = 0.9: class 10 gains essentially nothing vs MFCD.
        let gain = low_p.mfcd.0[9] - low_p.cmfsd_high.0[9];
        assert!(
            gain < 2.0,
            "multi-file peers should gain little at low p, high ρ (gain = {gain})"
        );
    }

    #[test]
    fn mfcd_columns_are_class_fair_in_download() {
        let r = run(&Fig4bcConfig::default()).unwrap();
        for panel in &r.panels {
            let g = panel.mfcd.1[0];
            for &d in &panel.mfcd.1 {
                assert!((d - g).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn tables_render() {
        let r = run(&Fig4bcConfig::default()).unwrap();
        let tables = r.tables();
        assert_eq!(tables.len(), 2);
        assert!(tables[0].render().contains("MFCD online"));
        assert_eq!(tables[0].len(), 10);
    }
}
