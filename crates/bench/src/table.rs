//! Minimal aligned-text table and CSV rendering (no dependencies).

/// A simple right-aligned numeric table with a header row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new<S: Into<String>>(title: S, headers: Vec<&str>) -> Self {
        Self {
            title: title.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of pre-formatted cells.
    ///
    /// # Panics
    /// Panics when the cell count differs from the header count
    /// (programming error in the harness).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Appends a row of numbers, formatted with `precision` decimals.
    pub fn push_nums(&mut self, values: &[f64], precision: usize) {
        self.push_row(values.iter().map(|v| format!("{v:.precision$}")).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let sep: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        for (i, (h, w)) in self.headers.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{h:>w$}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(sep));
        out.push('\n');
        for row in &self.rows {
            for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>w$}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header + rows, comma-separated).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", vec!["p", "MTCD", "MTSD"]);
        t.push_nums(&[0.1, 86.97, 80.0], 2);
        t.push_nums(&[1.0, 98.0, 80.0], 2);
        t
    }

    #[test]
    fn dimensions() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn render_is_aligned() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "demo");
        assert!(lines[1].contains("MTCD"));
        assert!(lines[2].starts_with('-'));
        // Data rows align on column widths.
        assert!(lines[3].trim_start().starts_with("0.10"));
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "p,MTCD,MTSD");
        assert_eq!(lines.next().unwrap(), "0.10,86.97,80.00");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", vec!["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn empty_title_skipped() {
        let t = Table::new("", vec!["a"]);
        assert!(!t.render().starts_with('\n'));
    }
}
