//! Figure 4(a): average online time per file under CMFSD over the
//! `(p, ρ) ∈ [0,1]²` grid.
//!
//! Expected shape: for every correlation `p`, the online time per file
//! increases monotonically with ρ (less collaboration); the improvement of
//! ρ = 0 over ρ = 1 grows with `p`; the ρ = 1 column coincides with MFCD.

use crate::table::Table;
use btfluid_core::{evaluate_scheme, FluidParams, Scheme};
use btfluid_numkit::NumError;
use btfluid_workload::CorrelationModel;
use rayon::prelude::*;

/// Configuration of the Figure 4(a) grid sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4aConfig {
    /// Fluid parameters.
    pub params: FluidParams,
    /// Number of files `K`.
    pub k: u32,
    /// Correlation grid values (paper varies `p` from 0 to 1; `p = 0` is
    /// excluded because nobody enters).
    pub ps: Vec<f64>,
    /// Allocation-ratio grid values.
    pub rhos: Vec<f64>,
}

impl Default for Fig4aConfig {
    fn default() -> Self {
        Self {
            params: FluidParams::paper(),
            k: 10,
            ps: (1..=10).map(|i| i as f64 / 10.0).collect(),
            rhos: (0..=10).map(|i| i as f64 / 10.0).collect(),
        }
    }
}

/// The grid of averages: `values[pi][ri]` is the average online time per
/// file at `ps[pi], rhos[ri]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4aResult {
    /// Correlation grid.
    pub ps: Vec<f64>,
    /// ρ grid.
    pub rhos: Vec<f64>,
    /// Row-per-p, column-per-ρ matrix of averages.
    pub values: Vec<Vec<f64>>,
}

impl Fig4aResult {
    /// Renders the matrix as an aligned table (rows: p; columns: ρ).
    pub fn table(&self) -> Table {
        let mut headers = vec!["p \\ ρ".to_string()];
        headers.extend(self.rhos.iter().map(|r| format!("{r:.1}")));
        let mut t = Table::new(
            "Figure 4(a) — CMFSD average online time per file",
            headers.iter().map(String::as_str).collect(),
        );
        for (pi, row) in self.values.iter().enumerate() {
            let mut cells = vec![format!("{:.1}", self.ps[pi])];
            cells.extend(row.iter().map(|v| format!("{v:.2}")));
            t.push_row(cells);
        }
        t
    }

    /// The value at grid point `(pi, ri)`.
    pub fn at(&self, pi: usize, ri: usize) -> f64 {
        self.values[pi][ri]
    }
}

/// Runs the grid (cells are independent; computed in parallel).
///
/// # Errors
/// Propagates model validity errors for any grid cell.
pub fn run(cfg: &Fig4aConfig) -> Result<Fig4aResult, NumError> {
    if cfg.ps.is_empty() || cfg.rhos.is_empty() {
        return Err(NumError::InvalidInput {
            what: "fig4a::run",
            detail: "need non-empty p and ρ grids".into(),
        });
    }
    let values: Result<Vec<Vec<f64>>, NumError> = cfg
        .ps
        .par_iter()
        .map(|&p| {
            let model = CorrelationModel::new(cfg.k, p, 1.0)?;
            cfg.rhos
                .iter()
                .map(|&rho| {
                    let r = evaluate_scheme(cfg.params, &model, Scheme::Cmfsd { rho })?;
                    Ok(r.avg_online_per_file)
                })
                .collect()
        })
        .collect();
    Ok(Fig4aResult {
        ps: cfg.ps.clone(),
        rhos: cfg.rhos.clone(),
        values: values?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_core::Scheme;

    #[test]
    fn paper_shape_reproduced() {
        let r = run(&Fig4aConfig::default()).unwrap();
        assert_eq!(r.values.len(), 10);
        assert_eq!(r.values[0].len(), 11);
        // Every row is monotone increasing in ρ.
        for (pi, row) in r.values.iter().enumerate() {
            for w in row.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-9,
                    "row p = {} not monotone in ρ: {row:?}",
                    r.ps[pi]
                );
            }
        }
        // Improvement of ρ = 0 over ρ = 1 grows with p.
        let gains: Vec<f64> = r
            .values
            .iter()
            .map(|row| row[row.len() - 1] - row[0])
            .collect();
        assert!(
            gains.last().unwrap() > &gains[0],
            "gain at p = 1 ({}) should exceed gain at p = 0.1 ({})",
            gains.last().unwrap(),
            gains[0]
        );
        assert!(*gains.last().unwrap() > 20.0, "gains = {gains:?}");
    }

    #[test]
    fn rho_one_column_matches_mfcd() {
        let r = run(&Fig4aConfig::default()).unwrap();
        for (pi, &p) in r.ps.iter().enumerate() {
            let model = CorrelationModel::new(10, p, 1.0).unwrap();
            let mfcd = evaluate_scheme(FluidParams::paper(), &model, Scheme::Mfcd).unwrap();
            let cell = r.at(pi, r.rhos.len() - 1);
            assert!(
                (cell - mfcd.avg_online_per_file).abs() < 1e-6,
                "p = {p}: CMFSD(1) {cell} vs MFCD {}",
                mfcd.avg_online_per_file
            );
        }
    }

    #[test]
    fn empty_grids_rejected() {
        let cfg = Fig4aConfig {
            ps: vec![],
            ..Default::default()
        };
        assert!(run(&cfg).is_err());
    }

    #[test]
    fn table_renders() {
        let r = run(&Fig4aConfig {
            ps: vec![0.5],
            rhos: vec![0.0, 1.0],
            ..Default::default()
        })
        .unwrap();
        let t = r.table();
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("0.5"));
    }
}
