//! Regression: a JSONL trace containing a *non-finite* sample must still
//! be a valid JSON document per line (non-finite encodes as `null`), and
//! the workspace-wide downgrade counter must record the event.

use btfluid_harness::json::Json;
use btfluid_telemetry::{Counters, MetaField, Sample, TraceSink};

#[test]
fn trace_with_non_finite_sample_round_trips_as_valid_json() {
    let dir = std::env::temp_dir().join("btfluid_trace_nan_roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.jsonl");

    let before = btfluid_telemetry::non_finite_null_count();
    let mut sink = TraceSink::create(&path).unwrap();
    sink.meta(&[
        ("scheme", MetaField::Str("MTCD".into())),
        ("sample_every", MetaField::F64(f64::NAN)),
    ]);
    // A sample whose adapt means blew up to NaN/∞ — the failure mode this
    // guards against is the sink writing literal `NaN` and breaking every
    // later `btfluid inspect` of the file.
    sink.sample(&Sample {
        t: 10.0,
        events: 123,
        downloaders: &[4, 2],
        download_pairs: &[4, 2],
        seed_pairs: &[1, 1],
        weight: &[1.0, f64::INFINITY],
        pool_real: &[0.5, f64::NAN],
        pool_virtual: &[0.0, 0.0],
        rho_mean: f64::NAN,
        delta_mean: f64::NEG_INFINITY,
        counters: Counters::default(),
    });
    sink.end(10.0, &Counters::default());
    let final_path = sink.finish().unwrap();

    let text = std::fs::read_to_string(&final_path).unwrap();
    let mut lines = 0;
    let mut saw_null_rho = false;
    for line in text.lines() {
        let doc = Json::parse(line).unwrap_or_else(|e| panic!("invalid JSON line {line:?}: {e}"));
        if doc.get("kind").and_then(Json::as_str) == Some("sample") {
            assert_eq!(doc.get("rho_mean"), Some(&Json::Null));
            saw_null_rho = true;
        }
        lines += 1;
    }
    assert!(lines >= 3, "expected meta+sample+end, got {lines} lines");
    assert!(saw_null_rho, "sample record with null rho_mean not found");
    assert!(
        btfluid_telemetry::non_finite_null_count() >= before + 4,
        "non-finite downgrades were not counted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
