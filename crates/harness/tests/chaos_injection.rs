//! End-to-end exercises of the fault-injection seam against the harness
//! write paths. The injector is process-global, so everything runs inside
//! one `#[test]` — integration tests get their own process, keeping the
//! armed scripts away from the crate's unit tests.

use btfluid_des::{DesConfig, SchemeKind, Simulation};
use btfluid_harness::{
    checkpoint, drive, manifest, CellRecord, CellStatus, CheckpointPlan, HarnessError,
    ManifestWriter, ReproBundle, RetryPolicy, RunEnd, RunLimits,
};
use btfluid_telemetry::faults::{self, FaultKind, FaultRule, FaultScript, FaultSite};
use std::path::PathBuf;

fn cfg(seed: u64) -> DesConfig {
    let mut cfg = DesConfig::paper_small(SchemeKind::Mtcd, 0.5, seed).unwrap();
    cfg.horizon = 400.0;
    cfg.warmup = 100.0;
    cfg.drain = 400.0;
    cfg
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("btfs-chaos-inj-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn rule(site: FaultSite, kind: FaultKind, from_op: u64, count: u64) -> FaultRule {
    FaultRule {
        site,
        kind,
        from_op,
        count,
    }
}

fn plan(path: Option<PathBuf>) -> CheckpointPlan {
    CheckpointPlan {
        path,
        every_events: 64,
        retry: RetryPolicy::immediate(),
    }
}

#[test]
fn injected_faults_degrade_gracefully_and_never_change_results() {
    // --- 1. Permanent ENOSPC on every checkpoint write: the run must
    // degrade (disable checkpointing, count failures) and still finish
    // with results bit-identical to an uninterrupted run.
    let straight = Simulation::new(cfg(21)).unwrap().run();
    let path = tmp("degrade.snap");
    let _ = std::fs::remove_file(&path);
    faults::arm(FaultScript {
        rules: vec![rule(
            FaultSite::CheckpointWrite,
            FaultKind::Enospc,
            0,
            u64::MAX,
        )],
    });
    let report = drive(
        cfg(21),
        None,
        Some(&plan(Some(path.clone()))),
        false,
        &RunLimits::default(),
        None,
        None,
        None,
    );
    faults::disarm();
    let report = report.unwrap();
    assert_eq!(report.end, RunEnd::Completed);
    assert!(
        report.degraded,
        "permanent failure must disable checkpoints"
    );
    assert!(report.checkpoint_failures >= u64::from(RetryPolicy::immediate().degrade_after));
    assert_eq!(report.checkpoints, 0);
    assert!(faults::checkpoint_failure_count() > 0);
    assert!(faults::checkpoint_degraded_count() > 0);
    let outcome = report.outcome.unwrap();
    assert_eq!(straight.events, outcome.events);
    assert_eq!(straight.records, outcome.records);
    assert_eq!(straight.aborts, outcome.aborts);
    assert!(!path.exists());

    // --- 2. Transient EIO (two failed attempts, third succeeds): the
    // retry policy absorbs it inside one cycle — no recorded failures, no
    // degradation, checkpoints written as normal.
    let path = tmp("transient.snap");
    let _ = std::fs::remove_file(&path);
    faults::arm(FaultScript {
        rules: vec![rule(FaultSite::CheckpointWrite, FaultKind::Eio, 0, 2)],
    });
    let report = drive(
        cfg(22),
        None,
        Some(&plan(Some(path.clone()))),
        false,
        &RunLimits::default(),
        None,
        None,
        None,
    );
    faults::disarm();
    let report = report.unwrap();
    assert_eq!(report.end, RunEnd::Completed);
    assert!(!report.degraded);
    assert_eq!(report.checkpoint_failures, 0, "retries absorb transients");
    assert!(report.checkpoints > 0);

    // --- 3. Rename failure behaves like a write failure: the temp file
    // is cleaned up and the committed checkpoint (if any) is untouched.
    let path = tmp("rename.snap");
    let _ = std::fs::remove_file(&path);
    faults::arm(FaultScript {
        rules: vec![rule(
            FaultSite::CheckpointRename,
            FaultKind::RenameFail,
            0,
            u64::MAX,
        )],
    });
    let report = drive(
        cfg(23),
        None,
        Some(&plan(Some(path.clone()))),
        false,
        &RunLimits::default(),
        None,
        None,
        None,
    );
    faults::disarm();
    let report = report.unwrap();
    assert_eq!(report.end, RunEnd::Completed);
    assert!(report.degraded);
    let mut stale = path.as_os_str().to_owned();
    stale.push(".tmp");
    assert!(
        !PathBuf::from(stale).exists(),
        "failed rename must not leave the temp file behind"
    );

    // --- 4. Short write on the manifest creates a real torn line; load
    // tolerates it and reopening repairs the tail before appending.
    let journal = tmp("torn-manifest.jsonl");
    let _ = std::fs::remove_file(&journal);
    let record = CellRecord {
        id: "cell-a".into(),
        status: CellStatus::Done,
        attempts: 1,
        events: 10,
        wall_ms: 1,
        counters: None,
        detail: "ok".into(),
    };
    let mut w = ManifestWriter::open(&journal).unwrap();
    w.append(&record).unwrap();
    faults::arm(FaultScript {
        rules: vec![rule(FaultSite::ManifestAppend, FaultKind::ShortWrite, 0, 1)],
    });
    let torn = w.append(&CellRecord {
        id: "cell-b".into(),
        ..record.clone()
    });
    faults::disarm();
    assert!(matches!(torn, Err(HarnessError::Io { .. })));
    drop(w);
    let text = std::fs::read_to_string(&journal).unwrap();
    assert!(!text.ends_with('\n'), "short write must leave a torn tail");
    let records = manifest::load(&journal).unwrap();
    assert_eq!(records.len(), 1, "torn tail is skipped, not fatal");
    let mut w = ManifestWriter::open(&journal).unwrap();
    w.append(&CellRecord {
        id: "cell-c".into(),
        ..record.clone()
    })
    .unwrap();
    drop(w);
    let ids: Vec<String> = manifest::load(&journal)
        .unwrap()
        .into_iter()
        .map(|r| r.id)
        .collect();
    assert_eq!(ids, ["cell-a", "cell-c"]);

    // --- 5. ENOSPC on a bundle write surfaces as a typed I/O error.
    let dir = tmp("bundle-enospc");
    let bundle = ReproBundle {
        cell_id: "cell-x".into(),
        reason: "test".into(),
        cfg: cfg(24),
        scenario: None,
        inject_panic_at: None,
        checkpoint: None,
        flight: None,
    };
    faults::arm(FaultScript {
        rules: vec![rule(FaultSite::BundleWrite, FaultKind::Enospc, 0, u64::MAX)],
    });
    let write = bundle.write(&dir);
    faults::disarm();
    assert!(matches!(write, Err(HarnessError::Io { .. })));

    // --- 6. atomic_write + CorruptWrite commits silently-poisoned bytes
    // (no error): the lying-disk case only read-time checksums catch.
    let path = tmp("corrupt.bin");
    faults::arm(FaultScript {
        rules: vec![rule(
            FaultSite::CheckpointWrite,
            FaultKind::CorruptWrite,
            0,
            1,
        )],
    });
    checkpoint::atomic_write(&path, b"0123456789").unwrap();
    faults::disarm();
    let on_disk = std::fs::read(&path).unwrap();
    assert_eq!(on_disk.len(), 10);
    assert_ne!(on_disk, b"0123456789", "corrupt write must flip a byte");
}
