//! A minimal JSON value, parser, and printer.
//!
//! The harness persists two human-auditable artefacts — the sweep journal
//! (JSONL) and repro bundles (`repro.json`) — and this build environment
//! has no serde. The subset here is complete for those uses:
//!
//! * Objects keep insertion order (stable, diffable output).
//! * Numbers are stored as their **raw token**, so a `u64` seed survives
//!   the round trip exactly (an `f64` payload cannot hold every `u64`),
//!   and an `f64` printed with Rust's shortest-roundtrip formatting parses
//!   back to the identical bits.
//! * Strings escape control characters, quotes, and backslashes.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (see module docs).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from an `f64`. JSON has no NaN/∞, so non-finite values
    /// encode as [`Json::Null`] and bump the workspace-wide
    /// [`btfluid_telemetry::non_finite_null_count`] tally. (The previous
    /// `debug_assert!` meant release builds silently emitted the invalid
    /// tokens `NaN`/`inf`, which broke every downstream parse.)
    pub fn num_f64(x: f64) -> Json {
        match Self::num_f64_checked(x) {
            Ok(v) => v,
            Err(_) => {
                btfluid_telemetry::note_non_finite_null();
                Json::Null
            }
        }
    }

    /// Like [`Json::num_f64`] but a typed error on non-finite input, for
    /// checked-mode writers that must refuse rather than degrade.
    pub fn num_f64_checked(x: f64) -> Result<Json, String> {
        if x.is_finite() {
            Ok(Json::Num(format!("{x}")))
        } else {
            Err(format!("JSON cannot carry non-finite value {x}"))
        }
    }

    /// A number from a `u64`, exactly.
    pub fn num_u64(x: u64) -> Json {
        Json::Num(format!("{x}"))
    }

    /// Object member by key (first match), or `None`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, or `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number as `u64` (rejecting fractions and negatives), or `None`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, or `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, or `None`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(tok) => f.write_str(tok),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let tok = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf8".to_string())?;
    // Validate by parsing; the raw token is what we keep.
    tok.parse::<f64>()
        .map_err(|_| format!("bad number '{tok}' at offset {start}"))?;
    Ok(Json::Num(tok.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so this
                // byte run is valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "bad utf8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let doc = Json::Obj(vec![
            ("id".into(), Json::Str("mtcd-s7".into())),
            ("seed".into(), Json::num_u64(u64::MAX)),
            ("rho".into(), Json::num_f64(0.1 + 0.2)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "xs".into(),
                Json::Arr(vec![Json::num_u64(1), Json::num_u64(2)]),
            ),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(
            back.get("rho").unwrap().as_f64().unwrap().to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
    }

    #[test]
    fn non_finite_encodes_as_null_not_invalid_tokens() {
        // Regression: release builds used to print `NaN`/`inf` raw, which
        // no JSON parser (including ours) accepts back.
        let before = btfluid_telemetry::non_finite_null_count();
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = Json::Obj(vec![("v".into(), Json::num_f64(x))]);
            let text = doc.to_string();
            assert_eq!(text, "{\"v\":null}");
            assert_eq!(Json::parse(&text).unwrap().get("v"), Some(&Json::Null));
        }
        assert!(btfluid_telemetry::non_finite_null_count() >= before + 3);
        assert!(Json::num_f64_checked(f64::NAN).is_err());
        assert!(Json::num_f64_checked(1.5).is_ok());
        // The old behavior would have produced these, and they must not parse.
        assert!(Json::parse("{\"v\":NaN}").is_err());
        assert!(Json::parse("{\"v\":inf}").is_err());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let doc = Json::Str("a \"b\"\n\\c\tü".into());
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            Json::parse("\"\\u0041\\u00fc\"").unwrap().as_str(),
            Some("Aü")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"abc").is_err());
        assert!(Json::parse("1.2.3").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Null));
    }
}
