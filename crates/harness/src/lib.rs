//! Crash-safe execution for the btfluid simulator.
//!
//! The engine (`btfluid-des`) guarantees that run → snapshot → restore →
//! run is bit-identical to an uninterrupted run. This crate turns that
//! guarantee into operational robustness:
//!
//! * [`checkpoint::drive`] — a resumable run driver: step in chunks,
//!   checkpoint atomically between chunks, pick up from the checkpoint
//!   after a crash, and honor event/wall-clock budgets cooperatively.
//! * [`supervisor::run_sweep`] — replicate/parameter-grid sweeps where
//!   every cell runs behind `catch_unwind` with a watchdog; panicking
//!   cells are retried with bounded backoff and then **quarantined**
//!   without sinking the sweep, and completed cells are journaled to an
//!   append-only JSONL [`manifest`] so a restarted sweep skips exactly
//!   the finished work.
//! * [`shard::run_shards`] — a rayon-sharded batch driver: many whole
//!   runs in parallel with compact in-memory summaries (no journal, no
//!   checkpoints), for mode-equivalence checks and replication studies.
//! * [`bundle::ReproBundle`] — a quarantined cell's config, seed,
//!   scenario reference, and last checkpoint, packaged as a directory
//!   that `btfluid repro <dir>` replays deterministically.
//!
//! Failures stay typed end to end: [`HarnessError`] wraps the engine's
//! `DesError`/`SnapshotError` hierarchy so the CLI can map each failure
//! class to a documented exit code instead of panicking.

#![warn(missing_docs)]

pub mod bundle;
pub mod checkpoint;
pub mod error;
pub mod json;
pub mod manifest;
pub mod shard;
pub mod supervisor;

pub use bundle::{config_from_json, config_to_json, load_trace, ReproBundle, ScenarioRef};
pub use checkpoint::{
    atomic_write, clean_stale_tmp, drive, CheckpointPlan, RetryPolicy, RunEnd, RunLimits, RunReport,
};
pub use error::HarnessError;
pub use manifest::{CellRecord, CellStatus, ManifestWriter};
pub use shard::{run_shards, ShardOutcome, ShardSpec};
pub use supervisor::{
    bundle_path, run_sweep, Budget, CellResult, CellSpec, FailedCell, SupervisorConfig, SweepReport,
};
