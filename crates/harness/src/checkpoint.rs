//! The resumable run driver: step the engine in chunks, snapshotting
//! atomically between chunks.
//!
//! The driver owns the loop the CLI and the supervisor both need: create
//! (or restore) an engine, step it `every_events` at a time, write a
//! checkpoint after each chunk, and honor cooperative limits — an event
//! budget, a wall-clock deadline, a cancel flag — checked at chunk
//! granularity. Checkpoints use the snapshot layer's atomic
//! temp-file-and-rename write, so a kill at any instant leaves either the
//! previous checkpoint or the new one, never a torn file. On successful
//! completion the checkpoint file is deleted: a leftover checkpoint always
//! means "this run did not finish".

use crate::error::{io_err, HarnessError};
use btfluid_des::{DesConfig, FlightKind, Probe, ScenarioHook, SimOutcome, Simulation, Snapshot};
use btfluid_numkit::rng::{RngCore, SplitMix64};
use btfluid_telemetry::faults::{self, FaultSite, WritePlan};
use btfluid_telemetry::profiler::Phase as ProfPhase;
use btfluid_telemetry::{diag, Level};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Atomically replaces `path` with `bytes`: write `<path>.tmp`, fsync,
/// rename over the destination. A kill at any instant leaves either the
/// old file or the new one, never a torn write — the same discipline the
/// engine snapshot codec uses, exposed for byte formats the harness does
/// not own (the hybrid engine's snapshot v4, result bundles, …).
///
/// Both steps pass through the chaos injection seam
/// ([`btfluid_telemetry::faults`]) under the checkpoint sites, so a
/// scripted ENOSPC/EIO/short-write/rename failure surfaces here exactly
/// like the real one would.
///
/// # Errors
/// Propagates the underlying filesystem errors; on failure the temp file
/// is removed best-effort and `path` is untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let write = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        match faults::write_plan(FaultSite::CheckpointWrite, bytes.len()) {
            WritePlan::Full => std::io::Write::write_all(&mut file, bytes)?,
            WritePlan::Short(n, e) => {
                let _ = std::io::Write::write_all(&mut file, &bytes[..n]);
                return Err(e);
            }
            WritePlan::Fail(e) => return Err(e),
            WritePlan::Corrupt => {
                // Silent corruption: commit a byte-flipped copy with no
                // error — the lying-firmware case only read-time
                // checksums can catch.
                let mut poisoned = bytes.to_vec();
                let mid = poisoned.len() / 2;
                if let Some(b) = poisoned.get_mut(mid) {
                    *b ^= 0x40;
                }
                std::io::Write::write_all(&mut file, &poisoned)?;
            }
        }
        file.sync_all()?;
        if let Some(kind) = faults::intercept(FaultSite::CheckpointRename) {
            return Err(kind.to_io_error());
        }
        std::fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write
}

/// Removes a leftover `<path>.tmp` from a write interrupted between the
/// temp-file write and the rename (checkpoints, traces, hybrid v4
/// snapshots — every atomic writer in the workspace uses the same
/// discipline). Returns whether a stale file was actually removed.
///
/// The temp file is never a valid resume source (the rename is the commit
/// point), so cleaning it up beats letting the next atomic write trip
/// over it or an operator mistaking it for state.
pub fn clean_stale_tmp(path: &Path) -> bool {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    if tmp.exists() {
        diag!(
            Level::Warn,
            "removing leftover temp file {} (interrupted mid-write)",
            tmp.display()
        );
        let _ = std::fs::remove_file(&tmp);
        return true;
    }
    false
}

/// Bounded retry with exponential backoff for transient checkpoint I/O
/// failures, plus the graceful-degradation threshold: after
/// `degrade_after` *consecutive* failed write cycles (each cycle already
/// containing `max_attempts` backed-off tries) the driver stops
/// checkpointing entirely, bumps the process-wide
/// [`faults::checkpoint_degraded_count`] tally, warns once, and lets the
/// run finish on the engine's in-memory state — a correct result beats a
/// dead run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Write attempts per checkpoint cycle (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt after that.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Consecutive failed cycles before checkpointing is disabled.
    pub degrade_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(400),
            degrade_after: 3,
        }
    }
}

impl RetryPolicy {
    /// A no-sleep variant for tests and chaos sweeps, where hundreds of
    /// injected failures must not stack real wall-clock backoff.
    pub fn immediate() -> Self {
        Self {
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..Self::default()
        }
    }

    /// Backoff before retry `attempt` (1-based): `base * 2^(attempt-1)`
    /// capped at `max_backoff`, plus a deterministic jitter in
    /// `[0, base/2)` drawn from a SplitMix64 stream seeded by `salt` —
    /// reruns of the same failing run back off identically, so chaos
    /// verdicts stay bit-reproducible.
    fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.max_backoff);
        let half_base = (self.base_backoff.as_micros() as u64 / 2).max(1);
        let jitter = SplitMix64::new(salt ^ u64::from(attempt)).next_u64() % half_base;
        capped + Duration::from_micros(jitter)
    }

    /// Runs one checkpoint write cycle: up to `max_attempts` tries with
    /// backed-off sleeps between them.
    fn write_cycle(&self, path: &Path, bytes: &[u8], salt: u64) -> std::io::Result<()> {
        let mut attempt = 0u32;
        loop {
            match atomic_write(path, bytes) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    attempt += 1;
                    if attempt >= self.max_attempts.max(1) {
                        return Err(e);
                    }
                    let pause = self.backoff(attempt, salt);
                    diag!(
                        Level::Warn,
                        "checkpoint write to {} failed ({e}); retry {attempt}/{} in {:?}",
                        path.display(),
                        self.max_attempts.max(1) - 1,
                        pause
                    );
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        }
    }
}

/// Where and how often to checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointPlan {
    /// Checkpoint file; `None` disables on-disk checkpoints (the
    /// in-memory observer still fires).
    pub path: Option<PathBuf>,
    /// Snapshot after this many engine events (> 0).
    pub every_events: u64,
    /// Retry/backoff/degradation policy for checkpoint write failures.
    pub retry: RetryPolicy,
}

/// Cooperative limits, checked between chunks (and the panic injection,
/// checked per event so it is exact).
#[derive(Debug, Default)]
pub struct RunLimits {
    /// Stop once the engine's *total* event count (which survives resume)
    /// reaches this.
    pub max_events: Option<u64>,
    /// Stop after this instant.
    pub deadline: Option<Instant>,
    /// Deterministically panic when the event count reaches this value —
    /// fault injection for the crash-recovery tests and CI smoke.
    pub inject_panic_at: Option<u64>,
}

/// Why the driver returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEnd {
    /// The simulation ran to completion; the outcome is final.
    Completed,
    /// The event budget was reached first.
    EventBudget,
    /// The wall-clock deadline passed first.
    WallBudget,
    /// The cancel flag was raised (watchdog or operator).
    Cancelled,
}

/// The driver's result.
#[derive(Debug)]
pub struct RunReport {
    /// The finished outcome — `None` unless [`RunEnd::Completed`].
    pub outcome: Option<SimOutcome>,
    /// How the run ended.
    pub end: RunEnd,
    /// Total engine events executed (including any resumed-from prefix).
    pub events: u64,
    /// Whether the run started from an existing checkpoint.
    pub resumed: bool,
    /// Checkpoints written to disk.
    pub checkpoints: u64,
    /// Checkpoint write cycles that failed even after retries. Failures
    /// never kill the run — checkpointing is a pure observer.
    pub checkpoint_failures: u64,
    /// Whether checkpointing was disabled mid-run after
    /// [`RetryPolicy::degrade_after`] consecutive failed cycles.
    pub degraded: bool,
}

/// Runs `cfg` under the plan and limits.
///
/// `hooks` supplies the scenario hook: called once for a fresh start or a
/// restore (the engine consumes the box), so pass a factory, not a value.
/// With `resume` set and the plan's path present on disk, the run picks up
/// from that checkpoint; otherwise it starts fresh. On a non-`Completed`
/// end a final checkpoint is written (when a path is configured) so the
/// next invocation loses no work.
///
/// `probe` attaches a telemetry probe to the engine. The driver feeds it
/// `checkpoint` spans and per-checkpoint byte/time accounting (via
/// [`Simulation::note_snapshot`]) on top of the engine's own samples, and
/// an `engine` span covering the whole drive on completion. Probes only
/// observe — attaching one never changes the run's results.
///
/// # Errors
/// Engine and snapshot errors ([`HarnessError::Engine`]), filesystem
/// failures ([`HarnessError::Io`]), and invalid plans
/// ([`HarnessError::Config`]).
///
/// # Panics
/// Panics deliberately when `limits.inject_panic_at` fires; engine bugs
/// outside `checked` mode may also panic. Callers that must survive either
/// wrap the call in `catch_unwind` (the supervisor does).
#[allow(clippy::too_many_arguments)]
pub fn drive(
    cfg: DesConfig,
    hook_factory: Option<&dyn Fn() -> Box<dyn ScenarioHook>>,
    plan: Option<&CheckpointPlan>,
    resume: bool,
    limits: &RunLimits,
    cancel: Option<&AtomicBool>,
    mut on_snapshot: Option<&mut dyn FnMut(&Snapshot)>,
    probe: Option<Box<dyn Probe>>,
) -> Result<RunReport, HarnessError> {
    if let Some(plan) = plan {
        if plan.every_events == 0 {
            return Err(HarnessError::Config(
                "checkpoint interval must be at least 1 event".into(),
            ));
        }
    }
    let checkpoint_path = plan.and_then(|p| p.path.as_deref());
    // A crash between "write <path>.tmp" and "rename over <path>" leaves a
    // partial temp file behind. It is never a valid resume source (the
    // rename is the commit point), so clean it up rather than letting the
    // next atomic write trip over it or an operator mistake it for state.
    if let Some(path) = checkpoint_path {
        clean_stale_tmp(path);
    }
    let existing = resume
        .then(|| checkpoint_path.filter(|p| p.exists()))
        .flatten();

    let mut sim = match existing {
        Some(path) => {
            let snap = Snapshot::read_file(path)?;
            match hook_factory {
                Some(make) => Simulation::restore_with_hook(cfg, &snap, make())?,
                None => Simulation::restore(cfg, &snap)?,
            }
        }
        None => match hook_factory {
            Some(make) => Simulation::with_hook(cfg, make())?,
            None => Simulation::new(cfg)?,
        },
    };
    if let Some(probe) = probe {
        sim.attach_probe(probe);
    }
    let resumed = existing.is_some();
    let chunk = plan.map_or(u64::MAX, |p| p.every_events);
    let retry = plan.map_or_else(RetryPolicy::default, |p| p.retry);
    let mut checkpoints = 0u64;
    let mut checkpoint_failures = 0u64;
    let mut consecutive_failures = 0u32;
    let mut degraded = false;
    let mut next_checkpoint = sim.events().saturating_add(chunk);
    let drive_start = Instant::now();

    // Checkpointing is a pure observer of the run: a failed write must
    // never change the result, so write failures warn (after the retry
    // policy's backed-off attempts) instead of propagating, and after
    // `degrade_after` consecutive failed cycles the driver gives up on
    // disk entirely and lets the run finish on in-memory state.
    let take_snapshot = |sim: &mut Simulation,
                         on_snapshot: &mut Option<&mut dyn FnMut(&Snapshot)>,
                         checkpoint_failures: &mut u64,
                         consecutive_failures: &mut u32,
                         degraded: &mut bool| {
        let started = Instant::now();
        let snap = sim.snapshot();
        let mut encode_ns = started.elapsed().as_nanos() as u64;
        if let Some(cb) = on_snapshot.as_mut() {
            cb(&snap);
        }
        if *degraded {
            return false;
        }
        if let Some(path) = checkpoint_path {
            let encode_started = Instant::now();
            let bytes = snap.to_bytes();
            encode_ns += encode_started.elapsed().as_nanos() as u64;
            sim.profiler_add(ProfPhase::SnapshotEncode, encode_ns);
            let salt = snap.events() ^ 0x5eed_c0de;
            match retry.write_cycle(path, &bytes, salt) {
                Ok(()) => {
                    *consecutive_failures = 0;
                    let micros = started.elapsed().as_micros() as u64;
                    sim.note_snapshot(bytes.len() as u64, micros);
                    sim.emit_span("checkpoint", micros);
                    sim.emit_flight(FlightKind::Checkpoint, bytes.len() as u64, 0);
                    return true;
                }
                Err(e) => {
                    *checkpoint_failures += 1;
                    *consecutive_failures += 1;
                    faults::note_checkpoint_failure();
                    diag!(
                        Level::Warn,
                        "checkpoint cycle at event {} failed after {} attempt(s): {e}; run continues",
                        snap.events(),
                        retry.max_attempts.max(1)
                    );
                    if *consecutive_failures >= retry.degrade_after.max(1) {
                        *degraded = true;
                        faults::note_checkpoint_degraded();
                        diag!(
                            Level::Warn,
                            "disabling checkpoints after {} consecutive failed cycles; \
                             run continues without crash protection",
                            consecutive_failures
                        );
                    }
                }
            }
        }
        false
    };

    let end = loop {
        if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            break RunEnd::Cancelled;
        }
        if limits.deadline.is_some_and(|d| Instant::now() >= d) {
            break RunEnd::WallBudget;
        }
        if limits.max_events.is_some_and(|n| sim.events() >= n) {
            break RunEnd::EventBudget;
        }
        if limits.inject_panic_at.is_some_and(|n| sim.events() >= n) {
            panic!(
                "injected panic at event {} (t = {:.3})",
                sim.events(),
                sim.sim_time()
            );
        }
        if !sim.step()? {
            break RunEnd::Completed;
        }
        if sim.events() >= next_checkpoint {
            if take_snapshot(
                &mut sim,
                &mut on_snapshot,
                &mut checkpoint_failures,
                &mut consecutive_failures,
                &mut degraded,
            ) {
                checkpoints += 1;
            }
            next_checkpoint = sim.events().saturating_add(chunk);
        }
    };

    if end == RunEnd::Completed {
        let events = sim.events();
        sim.emit_span("engine", drive_start.elapsed().as_micros() as u64);
        let outcome = sim.finish();
        // A finished run must not leave a checkpoint behind: its presence
        // is the "work remains" signal for `--resume`.
        if let Some(path) = checkpoint_path {
            match std::fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(path, e)),
            }
        }
        return Ok(RunReport {
            outcome: Some(outcome),
            end,
            events,
            resumed,
            checkpoints,
            checkpoint_failures,
            degraded,
        });
    }

    // Interrupted: persist the frontier so nothing is lost.
    if take_snapshot(
        &mut sim,
        &mut on_snapshot,
        &mut checkpoint_failures,
        &mut consecutive_failures,
        &mut degraded,
    ) {
        checkpoints += 1;
    }
    sim.emit_span("engine", drive_start.elapsed().as_micros() as u64);
    Ok(RunReport {
        outcome: None,
        end,
        events: sim.events(),
        resumed,
        checkpoints,
        checkpoint_failures,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_des::SchemeKind;

    fn cfg(seed: u64) -> DesConfig {
        let mut cfg = DesConfig::paper_small(SchemeKind::Mtcd, 0.5, seed).unwrap();
        cfg.horizon = 400.0;
        cfg.warmup = 100.0;
        cfg.drain = 400.0;
        cfg
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("btfs-driver-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn budget_stop_then_resume_is_bit_identical() {
        let straight = Simulation::new(cfg(5)).unwrap().run();

        let path = tmp("budget.snap");
        let _ = std::fs::remove_file(&path);
        let plan = CheckpointPlan {
            path: Some(path.clone()),
            every_events: 64,
            retry: RetryPolicy::immediate(),
        };
        let limits = RunLimits {
            max_events: Some(333),
            ..Default::default()
        };
        let first = drive(cfg(5), None, Some(&plan), true, &limits, None, None, None).unwrap();
        assert_eq!(first.end, RunEnd::EventBudget);
        assert!(first.outcome.is_none());
        assert!(path.exists(), "interrupted run must leave a checkpoint");

        let second = drive(
            cfg(5),
            None,
            Some(&plan),
            true,
            &RunLimits::default(),
            None,
            None,
            None,
        )
        .unwrap();
        assert_eq!(second.end, RunEnd::Completed);
        assert!(second.resumed);
        assert!(!path.exists(), "completion must remove the checkpoint");
        let resumed = second.outcome.unwrap();
        assert_eq!(straight.events, resumed.events);
        assert_eq!(straight.records, resumed.records);
        assert_eq!(straight.aborts, resumed.aborts);
    }

    #[test]
    fn resume_cleans_leftover_tmp_from_interrupted_rename() {
        // A SIGKILL between writing `<path>.tmp` and the rename leaves the
        // temp file on disk next to the (older, still-valid) checkpoint.
        // Resume must ignore the partial temp file, clean it up, and
        // continue bit-identically from the committed checkpoint.
        let straight = Simulation::new(cfg(11)).unwrap().run();

        let path = tmp("stale-tmp.snap");
        let _ = std::fs::remove_file(&path);
        let plan = CheckpointPlan {
            path: Some(path.clone()),
            every_events: 64,
            retry: RetryPolicy::immediate(),
        };
        let limits = RunLimits {
            max_events: Some(333),
            ..Default::default()
        };
        let first = drive(cfg(11), None, Some(&plan), true, &limits, None, None, None).unwrap();
        assert_eq!(first.end, RunEnd::EventBudget);
        assert!(path.exists());

        // Simulate the interrupted mid-rename write: garbage in `.tmp`.
        let mut stale = path.as_os_str().to_owned();
        stale.push(".tmp");
        let stale = PathBuf::from(stale);
        std::fs::write(&stale, b"partial snapshot, crash before rename").unwrap();

        let second = drive(
            cfg(11),
            None,
            Some(&plan),
            true,
            &RunLimits::default(),
            None,
            None,
            None,
        )
        .unwrap();
        assert_eq!(second.end, RunEnd::Completed);
        assert!(second.resumed, "must resume from the committed checkpoint");
        assert!(!stale.exists(), "leftover .tmp must be cleaned up");
        assert!(!path.exists(), "completion must remove the checkpoint");
        let resumed = second.outcome.unwrap();
        assert_eq!(straight.events, resumed.events);
        assert_eq!(straight.records, resumed.records);
    }

    #[test]
    fn cancel_flag_stops_promptly() {
        let cancel = AtomicBool::new(true);
        let report = drive(
            cfg(6),
            None,
            None,
            false,
            &RunLimits::default(),
            Some(&cancel),
            None,
            None,
        )
        .unwrap();
        assert_eq!(report.end, RunEnd::Cancelled);
    }

    #[test]
    fn snapshot_observer_sees_chunks() {
        let mut seen = 0u64;
        let mut last_events = 0u64;
        let plan = CheckpointPlan {
            path: None,
            every_events: 100,
            retry: RetryPolicy::immediate(),
        };
        let mut observe = |snap: &Snapshot| {
            seen += 1;
            last_events = snap.events();
        };
        let report = drive(
            cfg(7),
            None,
            Some(&plan),
            false,
            &RunLimits::default(),
            None,
            Some(&mut observe),
            None,
        )
        .unwrap();
        assert_eq!(report.end, RunEnd::Completed);
        assert_eq!(report.checkpoints, 0, "no path, nothing written");
        assert!(seen > 1, "observer should fire once per chunk");
        assert!(last_events > 0);
    }

    #[test]
    fn injected_panic_fires_exactly() {
        let limits = RunLimits {
            inject_panic_at: Some(50),
            ..Default::default()
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            drive(cfg(8), None, None, false, &limits, None, None, None)
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("injected panic at event 50"), "{msg}");
    }

    #[test]
    fn zero_interval_is_refused() {
        let plan = CheckpointPlan {
            path: None,
            every_events: 0,
            retry: RetryPolicy::immediate(),
        };
        assert!(matches!(
            drive(
                cfg(9),
                None,
                Some(&plan),
                false,
                &RunLimits::default(),
                None,
                None,
                None
            ),
            Err(HarnessError::Config(_))
        ));
    }

    #[test]
    fn probe_sees_checkpoint_spans_and_snapshot_accounting() {
        use btfluid_des::MemoryProbe;
        use std::sync::{Arc, Mutex};

        // MemoryProbe is consumed by the engine; share its observations
        // out through a forwarding probe.
        #[derive(Default)]
        struct Shared {
            spans: Vec<(String, u64)>,
            finished: Option<btfluid_des::Counters>,
        }
        struct Fwd(Arc<Mutex<Shared>>, MemoryProbe);
        impl Probe for Fwd {
            fn sample_every(&self) -> f64 {
                self.1.sample_every()
            }
            fn on_span(&mut self, name: &str, micros: u64) {
                self.0.lock().unwrap().spans.push((name.into(), micros));
            }
            fn on_finish(&mut self, _t: f64, counters: &btfluid_des::Counters) {
                self.0.lock().unwrap().finished = Some(*counters);
            }
        }

        let path = tmp("probed.snap");
        let _ = std::fs::remove_file(&path);
        let plan = CheckpointPlan {
            path: Some(path.clone()),
            every_events: 64,
            retry: RetryPolicy::immediate(),
        };
        let shared = Arc::new(Mutex::new(Shared::default()));
        let report = drive(
            cfg(11),
            None,
            Some(&plan),
            false,
            &RunLimits::default(),
            None,
            None,
            Some(Box::new(Fwd(Arc::clone(&shared), MemoryProbe::new(10.0)))),
        )
        .unwrap();
        assert_eq!(report.end, RunEnd::Completed);
        assert!(report.checkpoints > 0);
        let shared = shared.lock().unwrap();
        let n_ckpt_spans = shared
            .spans
            .iter()
            .filter(|(name, _)| name == "checkpoint")
            .count();
        assert_eq!(n_ckpt_spans as u64, report.checkpoints);
        assert!(
            shared.spans.iter().any(|(name, _)| name == "engine"),
            "completed drive emits an engine span"
        );
        let counters = shared.finished.expect("probe sees finish");
        assert_eq!(counters.snapshots_taken, report.checkpoints);
        assert!(counters.snapshot_bytes > 0);
        assert!(counters.events_popped > 0);
    }
}
