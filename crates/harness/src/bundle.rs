//! Repro bundles: everything needed to replay a failed cell.
//!
//! When the supervisor quarantines a cell it writes a directory holding
//! `repro.json` — the full [`DesConfig`], the scenario reference (if the
//! cell ran under a hook), the failure reason, and any injected-panic
//! schedule — plus `checkpoint.snap`, the last engine snapshot captured
//! before the failure (when one exists). `btfluid repro <dir>` loads the
//! bundle and re-runs the cell from the checkpoint, reproducing the
//! failure deterministically or demonstrating it is gone.

use crate::error::{io_err, HarnessError};
use crate::json::Json;
use btfluid_core::adapt::AdaptConfig;
use btfluid_core::FluidParams;
use btfluid_des::{AdaptSetup, DesConfig, OrderPolicy, ScenarioHook, SchemeKind};
use btfluid_scenario::registry;
use btfluid_workload::CorrelationModel;
use std::path::Path;

/// Bundle format version; bumped on incompatible `repro.json` changes.
pub const BUNDLE_VERSION: u64 = 1;

/// One bundle file write, routed through the chaos injection seam so a
/// scripted ENOSPC/EIO/short write on the `bundle-write` site surfaces as
/// the typed I/O error the real failure would.
fn bundle_write(path: &Path, bytes: &[u8]) -> Result<(), HarnessError> {
    use btfluid_telemetry::faults::{self, FaultSite, WritePlan};
    match faults::write_plan(FaultSite::BundleWrite, bytes.len()) {
        WritePlan::Full | WritePlan::Corrupt => {}
        WritePlan::Short(n, e) => {
            let _ = std::fs::write(path, &bytes[..n]);
            return Err(io_err(path, e));
        }
        WritePlan::Fail(e) => return Err(io_err(path, e)),
    }
    std::fs::write(path, bytes).map_err(|e| io_err(path, e))
}

/// A scenario program reference: enough to recompile the exact hook.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRef {
    /// Registry name (`flash_crowd`, …), or a descriptive label when
    /// [`Self::trace`] is set.
    pub name: String,
    /// Time-scale factor applied before compiling the hook (registry
    /// scenarios only).
    pub scale: f64,
    /// Path to a recorded `btfluid-trace-arrivals` file. When set, the
    /// hook replays that trace ([`btfluid_scenario::TraceHook`]) instead
    /// of compiling a registry program; `.jsonl` selects the JSONL codec,
    /// anything else the CSV codec.
    pub trace: Option<String>,
}

impl ScenarioRef {
    /// A registry-scenario reference.
    pub fn named(name: &str, scale: f64) -> Self {
        Self {
            name: name.into(),
            scale,
            trace: None,
        }
    }

    /// A trace-replay reference.
    pub fn traced(path: &str) -> Self {
        Self {
            name: format!("trace:{path}"),
            scale: 1.0,
            trace: Some(path.into()),
        }
    }

    /// Recompiles the scenario hook this reference describes: a replaying
    /// [`btfluid_scenario::TraceHook`] when [`Self::trace`] is set, the
    /// named registry program otherwise.
    ///
    /// # Errors
    /// [`HarnessError::Bundle`] for an unknown registry name, an
    /// unreadable trace file, or a trace that fails codec validation.
    pub fn build_hook(&self) -> Result<Box<dyn ScenarioHook>, HarnessError> {
        if let Some(path) = &self.trace {
            let trace = load_trace(Path::new(path))?;
            let hook = btfluid_scenario::TraceHook::new(&trace)
                .map_err(|e| HarnessError::Bundle(format!("trace '{path}': {e}")))?;
            return Ok(Box::new(hook));
        }
        let program = registry::by_name(&self.name)
            .ok_or_else(|| HarnessError::Bundle(format!("unknown scenario '{}'", self.name)))?;
        let program = program.time_scaled(self.scale);
        Ok(Box::new(program.hook()))
    }
}

/// Reads and decodes a trace file, choosing the codec by extension
/// (`.jsonl` → JSONL, anything else → CSV).
///
/// # Errors
/// [`HarnessError::Io`] for filesystem failure, [`HarnessError::Bundle`]
/// for codec validation failure.
pub fn load_trace(path: &Path) -> Result<btfluid_workload::ArrivalTrace, HarnessError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let decoded = if path.extension().is_some_and(|e| e == "jsonl") {
        btfluid_workload::ArrivalTrace::from_jsonl(&text)
    } else {
        btfluid_workload::ArrivalTrace::from_csv(&text)
    };
    decoded.map_err(|e| HarnessError::Bundle(format!("trace '{}': {e}", path.display())))
}

/// One quarantined cell, ready to replay.
#[derive(Debug, Clone)]
pub struct ReproBundle {
    /// The failed cell's id.
    pub cell_id: String,
    /// Why it was quarantined (panic message, budget kind, engine error).
    pub reason: String,
    /// The exact engine configuration the cell ran with.
    pub cfg: DesConfig,
    /// The scenario the cell ran under, if any.
    pub scenario: Option<ScenarioRef>,
    /// Deterministic fault injection: panic when the engine reaches this
    /// event count (used by the crash-recovery CI smoke).
    pub inject_panic_at: Option<u64>,
    /// Raw bytes of the last checkpoint taken before the failure.
    pub checkpoint: Option<Vec<u8>>,
    /// The cell's `flightrec v1` dump (JSONL text): the last-N engine
    /// happenings before the failure, captured by the supervisor's
    /// always-on flight recorder.
    pub flight: Option<String>,
}

impl ReproBundle {
    /// Writes the bundle directory (`repro.json` + `checkpoint.snap` +
    /// `flightrec.jsonl`).
    ///
    /// Bundles are failure diagnostics keyed by cell id: rewriting one for
    /// the same cell replaces the stale diagnosis, so no `--force` gate.
    ///
    /// # Errors
    /// [`HarnessError::Io`] on filesystem failure.
    pub fn write(&self, dir: &Path) -> Result<(), HarnessError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let json_path = dir.join("repro.json");
        bundle_write(&json_path, format!("{}\n", self.to_json()).as_bytes())?;
        let snap_path = dir.join("checkpoint.snap");
        match &self.checkpoint {
            Some(bytes) => bundle_write(&snap_path, bytes)?,
            None => {
                // A re-written bundle must not keep a stale checkpoint.
                if snap_path.exists() {
                    std::fs::remove_file(&snap_path).map_err(|e| io_err(&snap_path, e))?;
                }
            }
        }
        let flight_path = dir.join("flightrec.jsonl");
        match &self.flight {
            Some(text) => bundle_write(&flight_path, text.as_bytes())?,
            None => {
                // Same stale-member discipline as the checkpoint.
                if flight_path.exists() {
                    std::fs::remove_file(&flight_path).map_err(|e| io_err(&flight_path, e))?;
                }
            }
        }
        Ok(())
    }

    /// Reads a bundle directory back.
    ///
    /// # Errors
    /// [`HarnessError::Bundle`] for a missing/undecodable `repro.json`,
    /// [`HarnessError::Io`] for filesystem failure.
    pub fn read(dir: &Path) -> Result<Self, HarnessError> {
        let json_path = dir.join("repro.json");
        let text = std::fs::read_to_string(&json_path).map_err(|e| io_err(&json_path, e))?;
        let doc =
            Json::parse(&text).map_err(|e| HarnessError::Bundle(format!("repro.json: {e}")))?;
        let mut bundle = Self::from_json(&doc)?;
        let snap_path = dir.join("checkpoint.snap");
        bundle.checkpoint = match std::fs::read(&snap_path) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err(&snap_path, e)),
        };
        let flight_path = dir.join("flightrec.jsonl");
        bundle.flight = match std::fs::read_to_string(&flight_path) {
            Ok(text) => Some(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err(&flight_path, e)),
        };
        Ok(bundle)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::num_u64(BUNDLE_VERSION)),
            ("cell_id".into(), Json::Str(self.cell_id.clone())),
            ("reason".into(), Json::Str(self.reason.clone())),
            (
                "scenario".into(),
                match &self.scenario {
                    None => Json::Null,
                    Some(s) => {
                        let mut fields = vec![
                            ("name".into(), Json::Str(s.name.clone())),
                            ("scale".into(), Json::num_f64(s.scale)),
                        ];
                        // Written only when present, so bundles from
                        // registry scenarios keep their original shape.
                        if let Some(path) = &s.trace {
                            fields.push(("trace".into(), Json::Str(path.clone())));
                        }
                        Json::Obj(fields)
                    }
                },
            ),
            (
                "inject_panic_at".into(),
                self.inject_panic_at.map_or(Json::Null, Json::num_u64),
            ),
            ("config".into(), config_to_json(&self.cfg)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, HarnessError> {
        let bad = |what: &str| HarnessError::Bundle(format!("repro.json: missing/bad {what}"));
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("version"))?;
        if version != BUNDLE_VERSION {
            return Err(HarnessError::Bundle(format!(
                "unsupported bundle version {version} (this build reads {BUNDLE_VERSION})"
            )));
        }
        let scenario = match doc.get("scenario") {
            None | Some(Json::Null) => None,
            Some(s) => Some(ScenarioRef {
                name: s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("scenario.name"))?
                    .to_string(),
                scale: s
                    .get("scale")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("scenario.scale"))?,
                // Absent in bundles written before the trace pipeline.
                trace: match s.get("trace") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_str().ok_or_else(|| bad("scenario.trace"))?.to_string()),
                },
            }),
        };
        Ok(ReproBundle {
            cell_id: doc
                .get("cell_id")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("cell_id"))?
                .to_string(),
            reason: doc
                .get("reason")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("reason"))?
                .to_string(),
            cfg: config_from_json(doc.get("config").ok_or_else(|| bad("config"))?)?,
            scenario,
            inject_panic_at: match doc.get("inject_panic_at") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| bad("inject_panic_at"))?),
            },
            checkpoint: None,
            flight: None,
        })
    }
}

/// Serializes a [`DesConfig`] to JSON, field for field.
pub fn config_to_json(cfg: &DesConfig) -> Json {
    let (scheme, rho) = match cfg.scheme {
        SchemeKind::Mtsd => ("mtsd", None),
        SchemeKind::Mtcd => ("mtcd", None),
        SchemeKind::Mfcd => ("mfcd", None),
        SchemeKind::Cmfsd { rho } => ("cmfsd", Some(rho)),
    };
    Json::Obj(vec![
        ("mu".into(), Json::num_f64(cfg.params.mu())),
        ("eta".into(), Json::num_f64(cfg.params.eta())),
        ("gamma".into(), Json::num_f64(cfg.params.gamma())),
        ("k".into(), Json::num_u64(u64::from(cfg.model.k()))),
        ("p".into(), Json::num_f64(cfg.model.p())),
        ("lambda0".into(), Json::num_f64(cfg.model.lambda0())),
        ("scheme".into(), Json::Str(scheme.into())),
        ("rho".into(), rho.map_or(Json::Null, Json::num_f64)),
        ("horizon".into(), Json::num_f64(cfg.horizon)),
        ("warmup".into(), Json::num_f64(cfg.warmup)),
        ("drain".into(), Json::num_f64(cfg.drain)),
        ("seed".into(), Json::num_u64(cfg.seed)),
        (
            "adapt".into(),
            match &cfg.adapt {
                None => Json::Null,
                Some(a) => Json::Obj(vec![
                    ("phi_inc".into(), Json::num_f64(a.controller.phi_inc)),
                    ("phi_dec".into(), Json::num_f64(a.controller.phi_dec)),
                    ("v_inc".into(), Json::num_f64(a.controller.v_inc)),
                    ("v_dec".into(), Json::num_f64(a.controller.v_dec)),
                    (
                        "patience".into(),
                        Json::num_u64(u64::from(a.controller.patience)),
                    ),
                    ("epoch".into(), Json::num_f64(a.epoch)),
                    ("cheater_fraction".into(), Json::num_f64(a.cheater_fraction)),
                ]),
            },
        ),
        (
            "origin_seeds".into(),
            Json::num_u64(cfg.origin_seeds as u64),
        ),
        ("warm_start".into(), Json::Bool(cfg.warm_start)),
        (
            "order_policy".into(),
            Json::Str(
                match cfg.order_policy {
                    OrderPolicy::Random => "random",
                    OrderPolicy::RarestFirst => "rarest-first",
                }
                .into(),
            ),
        ),
        (
            "record_every".into(),
            cfg.record_every.map_or(Json::Null, Json::num_f64),
        ),
        ("exact_rates".into(), Json::Bool(cfg.exact_rates)),
        ("aggregate".into(), Json::Bool(cfg.aggregate)),
        ("checked".into(), Json::Bool(cfg.checked)),
    ])
}

/// Deserializes a [`DesConfig`] from [`config_to_json`] output.
///
/// # Errors
/// [`HarnessError::Bundle`] for missing/invalid fields; [`HarnessError::Num`]
/// when the decoded values fail model validation.
pub fn config_from_json(doc: &Json) -> Result<DesConfig, HarnessError> {
    let bad = |what: &str| HarnessError::Bundle(format!("config: missing/bad {what}"));
    let f = |key: &'static str| doc.get(key).and_then(Json::as_f64).ok_or_else(|| bad(key));
    let u = |key: &'static str| doc.get(key).and_then(Json::as_u64).ok_or_else(|| bad(key));
    let b = |key: &'static str| doc.get(key).and_then(Json::as_bool).ok_or_else(|| bad(key));
    let opt_f = |key: &'static str| match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| bad(key)),
    };

    let scheme = match doc.get("scheme").and_then(Json::as_str) {
        Some("mtsd") => SchemeKind::Mtsd,
        Some("mtcd") => SchemeKind::Mtcd,
        Some("mfcd") => SchemeKind::Mfcd,
        Some("cmfsd") => SchemeKind::Cmfsd {
            rho: f("rho").map_err(|_| bad("rho (required for cmfsd)"))?,
        },
        _ => return Err(bad("scheme")),
    };
    let adapt = match doc.get("adapt") {
        None | Some(Json::Null) => None,
        Some(a) => {
            let af = |key: &'static str| {
                a.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad(&format!("adapt.{key}")))
            };
            Some(AdaptSetup {
                controller: AdaptConfig {
                    phi_inc: af("phi_inc")?,
                    phi_dec: af("phi_dec")?,
                    v_inc: af("v_inc")?,
                    v_dec: af("v_dec")?,
                    patience: a
                        .get("patience")
                        .and_then(Json::as_u64)
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| bad("adapt.patience"))?,
                },
                epoch: af("epoch")?,
                cheater_fraction: af("cheater_fraction")?,
            })
        }
    };
    let k = u32::try_from(u("k")?).map_err(|_| bad("k"))?;
    let cfg = DesConfig {
        params: FluidParams::new(f("mu")?, f("eta")?, f("gamma")?)?,
        model: CorrelationModel::new(k, f("p")?, f("lambda0")?)?,
        scheme,
        horizon: f("horizon")?,
        warmup: f("warmup")?,
        drain: f("drain")?,
        seed: u("seed")?,
        adapt,
        origin_seeds: usize::try_from(u("origin_seeds")?).map_err(|_| bad("origin_seeds"))?,
        warm_start: b("warm_start")?,
        order_policy: match doc.get("order_policy").and_then(Json::as_str) {
            Some("random") => OrderPolicy::Random,
            Some("rarest-first") => OrderPolicy::RarestFirst,
            _ => return Err(bad("order_policy")),
        },
        record_every: opt_f("record_every")?,
        exact_rates: b("exact_rates")?,
        // Absent in bundles written before aggregate mode existed.
        aggregate: doc
            .get("aggregate")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        checked: b("checked")?,
    };
    cfg.validate()?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cfg() -> DesConfig {
        DesConfig {
            params: FluidParams::paper(),
            model: CorrelationModel::new(10, 0.5, 0.25).unwrap(),
            scheme: SchemeKind::Cmfsd { rho: 0.3 },
            horizon: 600.0,
            warmup: 150.0,
            drain: 600.0,
            seed: u64::MAX - 7,
            adapt: Some(AdaptSetup {
                controller: AdaptConfig::default_for_mu(0.02),
                epoch: 40.0,
                cheater_fraction: 0.2,
            }),
            origin_seeds: 1,
            warm_start: false,
            order_policy: OrderPolicy::RarestFirst,
            record_every: Some(25.0),
            exact_rates: true,
            aggregate: false,
            checked: true,
        }
    }

    #[test]
    fn config_roundtrips_exactly() {
        let cfg = sample_cfg();
        let back = config_from_json(&config_to_json(&cfg)).unwrap();
        // The digest hashes every field, so equality of digests is the
        // same "nothing drifted" statement the snapshot layer enforces.
        assert_eq!(
            btfluid_des::snapshot::config_digest(&cfg),
            btfluid_des::snapshot::config_digest(&back)
        );
    }

    #[test]
    fn bundle_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!("btfs-bundle-{}", std::process::id()));
        let bundle = ReproBundle {
            cell_id: "cmfsd:0.3-s42".into(),
            reason: "injected panic at event 50".into(),
            cfg: sample_cfg(),
            scenario: Some(ScenarioRef::named("flash_crowd", 0.25)),
            inject_panic_at: Some(50),
            checkpoint: Some(vec![1, 2, 3, 4]),
            flight: Some(
                "{\"schema\":\"flightrec\",\"version\":1,\"capacity\":4,\"total\":1,\"dropped\":0}\n\
                 {\"k\":\"pop\",\"t\":1.5,\"ev\":1,\"a\":1,\"b\":0}\n"
                    .into(),
            ),
        };
        bundle.write(&dir).unwrap();
        let back = ReproBundle::read(&dir).unwrap();
        assert_eq!(back.cell_id, bundle.cell_id);
        assert_eq!(back.reason, bundle.reason);
        assert_eq!(back.scenario, bundle.scenario);
        assert_eq!(back.inject_panic_at, Some(50));
        assert_eq!(back.checkpoint, Some(vec![1, 2, 3, 4]));
        assert_eq!(back.flight, bundle.flight);
        assert_eq!(
            btfluid_des::snapshot::config_digest(&back.cfg),
            btfluid_des::snapshot::config_digest(&bundle.cfg)
        );
        assert!(back.scenario.unwrap().build_hook().is_ok());

        // Re-writing without a checkpoint or flight dump clears the
        // stale members.
        let mut no_snap = bundle.clone();
        no_snap.checkpoint = None;
        no_snap.flight = None;
        no_snap.write(&dir).unwrap();
        let reread = ReproBundle::read(&dir).unwrap();
        assert_eq!(reread.checkpoint, None);
        assert_eq!(reread.flight, None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_scenario_is_refused() {
        let r = ScenarioRef::named("nope", 1.0);
        assert!(matches!(r.build_hook(), Err(HarnessError::Bundle(_))));
    }

    #[test]
    fn trace_ref_roundtrips_and_builds_a_replay_hook() {
        use btfluid_numkit::rng::Xoshiro256StarStar;
        use btfluid_workload::{ArrivalTrace, CorrelationModel};
        let dir = std::env::temp_dir().join(format!("btfs-traceref-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workload.csv");
        let model = CorrelationModel::new(5, 0.5, 0.5).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let trace = ArrivalTrace::generate(&model, 200.0, &mut rng).unwrap();
        std::fs::write(&path, trace.to_csv()).unwrap();

        let bundle = ReproBundle {
            cell_id: "trace-cell".into(),
            reason: "test".into(),
            cfg: sample_cfg(),
            scenario: Some(ScenarioRef::traced(path.to_str().unwrap())),
            inject_panic_at: None,
            checkpoint: None,
            flight: None,
        };
        bundle.write(&dir).unwrap();
        let back = ReproBundle::read(&dir).unwrap();
        assert_eq!(back.scenario, bundle.scenario);
        let hook = back.scenario.unwrap().build_hook().unwrap();
        assert!(hook.replays());
        assert!(hook.replay_arrival(0).is_some());

        // A corrupt trace file is a typed bundle error, not a panic.
        std::fs::write(&path, "garbage").unwrap();
        assert!(matches!(
            bundle.scenario.clone().unwrap().build_hook(),
            Err(HarnessError::Bundle(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_version_is_refused() {
        let dir = std::env::temp_dir().join(format!("btfs-bundle-v-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("repro.json"), "{\"version\":99}").unwrap();
        assert!(matches!(
            ReproBundle::read(&dir),
            Err(HarnessError::Bundle(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
