//! The sweep supervisor: run many cells under failure isolation.
//!
//! Each cell (one engine configuration) runs on its own worker thread
//! behind `catch_unwind`, under an event budget and a wall-clock watchdog.
//! A panicking cell is retried with bounded backoff (a fresh attempt of a
//! deterministic engine reproduces a deterministic panic, but the retry
//! also absolves environmental flukes — OOM-killed allocations, disk
//! hiccups in the checkpoint path); budget exhaustion and typed engine
//! errors are deterministic verdicts and fail immediately. A cell that
//! exhausts its attempts is **quarantined**: the sweep continues, the
//! failure is journaled, and a [`ReproBundle`] with the last in-memory
//! checkpoint is written for offline replay via `btfluid repro`.
//!
//! Completed cells are journaled to the append-only manifest as they
//! finish, so a killed sweep restarted with `resume` skips exactly the
//! work already done (`failed` cells run again — quarantine is a verdict
//! about an attempt, not about the configuration).

use crate::bundle::{ReproBundle, ScenarioRef};
use crate::checkpoint::{drive, CheckpointPlan, RunEnd, RunLimits};
use crate::error::HarnessError;
use crate::manifest::{self, CellRecord, CellStatus, ManifestWriter};
use btfluid_des::{Counters, DesConfig, Probe, SimOutcome};
use btfluid_telemetry::{
    diag, shared_recorder, FanoutProbe, Level, RecorderProbe, SharedRecorder,
    DEFAULT_FLIGHT_CAPACITY,
};
use std::collections::{BTreeSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One unit of sweep work.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Unique id within the sweep (becomes the manifest/bundle key).
    pub id: String,
    /// The engine configuration to run.
    pub cfg: DesConfig,
    /// Scenario hook to attach, if any.
    pub scenario: Option<ScenarioRef>,
    /// Deterministic fault injection (CI crash smoke): panic at this
    /// engine event count.
    pub inject_panic_at: Option<u64>,
}

/// Per-cell budgets.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Maximum engine events per cell.
    pub max_events: Option<u64>,
    /// Maximum wall-clock time per cell attempt; also arms the watchdog
    /// that catches a wedged engine thread.
    pub max_wall: Option<Duration>,
}

/// Supervisor policy.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Append-only JSONL journal of finished cells.
    pub manifest: PathBuf,
    /// Directory receiving one repro-bundle subdirectory per quarantined
    /// cell.
    pub bundle_dir: PathBuf,
    /// Per-cell budgets.
    pub budget: Budget,
    /// Extra attempts after the first for *panicking* cells.
    pub max_retries: u32,
    /// Backoff before retry `n` is `backoff * n`.
    pub backoff: Duration,
    /// Concurrent cells (>= 1).
    pub workers: usize,
    /// Skip cells the manifest records as done; without this an existing
    /// non-empty manifest is refused.
    pub resume: bool,
    /// In-memory checkpoint cadence (events) feeding the repro bundle's
    /// `checkpoint.snap`.
    pub checkpoint_every: u64,
}

/// A completed cell's summary.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell id.
    pub id: String,
    /// Engine events executed.
    pub events: u64,
    /// Peers that arrived.
    pub arrivals: usize,
    /// Users counted in the statistics.
    pub completed: usize,
    /// Users censored at drain end.
    pub censored: usize,
    /// Aborts fired.
    pub aborted: usize,
    /// Mean online time per file, when computable.
    pub avg_online_per_file: Option<f64>,
    /// Wall-clock seconds the successful attempt took.
    pub wall_s: f64,
    /// Engine telemetry counters from the successful attempt.
    pub counters: Counters,
}

impl CellResult {
    fn from_outcome(
        id: &str,
        events: u64,
        outcome: &SimOutcome,
        wall_s: f64,
        counters: Counters,
    ) -> Self {
        CellResult {
            id: id.to_string(),
            events,
            arrivals: outcome.arrivals,
            completed: outcome.records.len(),
            censored: outcome.censored,
            aborted: outcome.aborts.len(),
            avg_online_per_file: outcome.avg_online_per_file().ok(),
            wall_s,
            counters,
        }
    }

    /// Engine events per wall-clock second (0 when the attempt was too
    /// fast to time).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }

    fn summary(&self) -> String {
        format!(
            "arrivals {}, completed {}, censored {}, aborted {}, online/file {}, {:.0} ev/s",
            self.arrivals,
            self.completed,
            self.censored,
            self.aborted,
            self.avg_online_per_file
                .map_or_else(|| "-".into(), |v| format!("{v:.3}")),
            self.events_per_sec()
        )
    }
}

/// Probe that hands the engine's final counters back across the worker
/// thread boundary (the engine consumes the probe box itself).
struct CounterCapture(Arc<Mutex<Option<Counters>>>);

impl Probe for CounterCapture {
    fn on_finish(&mut self, _t: f64, counters: &Counters) {
        *self.0.lock().unwrap() = Some(*counters);
    }
}

/// A quarantined cell.
#[derive(Debug, Clone)]
pub struct FailedCell {
    /// The cell id.
    pub id: String,
    /// Why it was quarantined.
    pub reason: String,
    /// Attempts consumed.
    pub attempts: u32,
    /// The repro bundle directory written for it.
    pub bundle: PathBuf,
}

/// The sweep's aggregate result.
#[derive(Debug)]
pub struct SweepReport {
    /// Cells that ran to completion this invocation, in finish order.
    pub completed: Vec<CellResult>,
    /// Cell ids skipped because the manifest already records them done.
    pub skipped: Vec<String>,
    /// Cells quarantined this invocation.
    pub failed: Vec<FailedCell>,
}

impl SweepReport {
    /// Whether every cell of this invocation completed (skips count as
    /// complete — they finished in an earlier invocation).
    pub fn all_done(&self) -> bool {
        self.failed.is_empty()
    }
}

/// What one attempt of one cell produced.
enum Attempt {
    Done(CellResult),
    /// Deterministic failure — retrying cannot change the verdict.
    Fatal(String),
    /// A panic — eligible for retry.
    Panicked(String),
}

/// Runs every cell under the supervisor policy.
///
/// # Errors
/// Setup failures only — an unreadable or refused manifest, duplicate cell
/// ids, zero workers. Cell failures do **not** abort the sweep; they are
/// reported in [`SweepReport::failed`].
pub fn run_sweep(
    sup: &SupervisorConfig,
    cells: Vec<CellSpec>,
) -> Result<SweepReport, HarnessError> {
    if sup.workers == 0 {
        return Err(HarnessError::Config("workers must be >= 1".into()));
    }
    if sup.checkpoint_every == 0 {
        return Err(HarnessError::Config(
            "checkpoint interval must be at least 1 event".into(),
        ));
    }
    let mut ids = BTreeSet::new();
    for cell in &cells {
        if !ids.insert(cell.id.clone()) {
            return Err(HarnessError::Config(format!(
                "duplicate cell id '{}'",
                cell.id
            )));
        }
    }

    let journal = manifest::load(&sup.manifest)?;
    if !sup.resume && !journal.is_empty() {
        return Err(HarnessError::Config(format!(
            "manifest {} already records {} cells; pass resume to continue \
             that sweep or choose a fresh manifest path",
            sup.manifest.display(),
            journal.len()
        )));
    }
    let done = manifest::done_ids(&journal);

    let mut skipped = Vec::new();
    let mut queue = VecDeque::new();
    for cell in cells {
        if done.contains(&cell.id) {
            skipped.push(cell.id);
        } else {
            queue.push_back(cell);
        }
    }

    let writer = Mutex::new(ManifestWriter::open(&sup.manifest)?);
    let total = queue.len();
    let queue = Mutex::new(queue);
    let completed = Mutex::new(Vec::new());
    let failed = Mutex::new(Vec::new());
    let n_workers = sup.workers.min(queue.lock().unwrap().len()).max(1);
    // Live progress accounting: (cells done, cells failed, engine events).
    let progress = Mutex::new((0usize, 0usize, 0u64));
    let sweep_start = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let Some(cell) = queue.lock().unwrap().pop_front() else {
                    return;
                };
                let (record, outcome) = supervise_cell(sup, &cell);
                // Journal first: a crash after the run must not redo it.
                if let Err(e) = writer.lock().unwrap().append(&record) {
                    diag!(Level::Warn, "warning: journaling {}: {e}", cell.id);
                }
                {
                    let mut p = progress.lock().unwrap();
                    match &outcome {
                        Ok(result) => {
                            p.0 += 1;
                            p.2 += result.events;
                        }
                        Err(_) => p.1 += 1,
                    }
                    let finished = p.0 + p.1;
                    let elapsed = sweep_start.elapsed().as_secs_f64().max(1e-9);
                    let eta = elapsed / finished as f64 * (total - finished) as f64;
                    diag!(
                        Level::Info,
                        "sweep: {}/{total} cells done, {} failed, {:.0} ev/s, ETA {eta:.0}s",
                        p.0,
                        p.1,
                        p.2 as f64 / elapsed
                    );
                }
                match outcome {
                    Ok(result) => completed.lock().unwrap().push(result),
                    Err(fail) => failed.lock().unwrap().push(fail),
                }
            });
        }
    });

    Ok(SweepReport {
        completed: completed.into_inner().unwrap(),
        skipped,
        failed: failed.into_inner().unwrap(),
    })
}

/// Runs one cell through the retry protocol; returns its journal record
/// and its result or quarantine report.
fn supervise_cell(
    sup: &SupervisorConfig,
    cell: &CellSpec,
) -> (CellRecord, Result<CellResult, FailedCell>) {
    let attempts_allowed = 1 + sup.max_retries;
    let mut attempt = 0u32;
    let last_snap: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    loop {
        attempt += 1;
        // Fresh flight recorder per attempt, so a quarantine dumps the
        // last-N happenings of the attempt that actually failed.
        let flight = shared_recorder(DEFAULT_FLIGHT_CAPACITY);
        match run_attempt(sup, cell, &last_snap, &flight) {
            Attempt::Done(result) => {
                let record = CellRecord {
                    id: cell.id.clone(),
                    status: CellStatus::Done,
                    attempts: attempt,
                    events: result.events,
                    wall_ms: (result.wall_s * 1000.0) as u64,
                    counters: Some(result.counters),
                    detail: result.summary(),
                };
                return (record, Ok(result));
            }
            Attempt::Panicked(reason) if attempt < attempts_allowed => {
                diag!(
                    Level::Warn,
                    "cell {}: attempt {attempt}/{attempts_allowed} panicked ({reason}); retrying",
                    cell.id
                );
                std::thread::sleep(sup.backoff.saturating_mul(attempt));
            }
            Attempt::Panicked(reason) | Attempt::Fatal(reason) => {
                let bundle_dir = sup.bundle_dir.join(sanitize_id(&cell.id));
                let flight_dump = {
                    let ring = flight.lock().unwrap_or_else(|e| e.into_inner());
                    (!ring.is_empty()).then(|| ring.dump_string(parse_failure_t(&reason)))
                };
                let bundle = ReproBundle {
                    cell_id: cell.id.clone(),
                    reason: reason.clone(),
                    cfg: cell.cfg.clone(),
                    scenario: cell.scenario.clone(),
                    inject_panic_at: cell.inject_panic_at,
                    checkpoint: last_snap.lock().unwrap().clone(),
                    flight: flight_dump,
                };
                if let Err(e) = bundle.write(&bundle_dir) {
                    diag!(
                        Level::Warn,
                        "warning: writing repro bundle for {}: {e}",
                        cell.id
                    );
                }
                let record = CellRecord {
                    id: cell.id.clone(),
                    status: CellStatus::Failed,
                    attempts: attempt,
                    events: 0,
                    wall_ms: 0,
                    counters: None,
                    detail: reason.clone(),
                };
                return (
                    record,
                    Err(FailedCell {
                        id: cell.id.clone(),
                        reason,
                        attempts: attempt,
                        bundle: bundle_dir,
                    }),
                );
            }
        }
    }
}

/// One isolated attempt: worker thread + `catch_unwind` + watchdog.
fn run_attempt(
    sup: &SupervisorConfig,
    cell: &CellSpec,
    last_snap: &Arc<Mutex<Option<Vec<u8>>>>,
    flight: &SharedRecorder,
) -> Attempt {
    let cancel = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel();
    let started = Instant::now();
    let captured: Arc<Mutex<Option<Counters>>> = Arc::new(Mutex::new(None));
    let worker = {
        let cell = cell.clone();
        let cancel = Arc::clone(&cancel);
        let last_snap = Arc::clone(last_snap);
        let captured = Arc::clone(&captured);
        let flight = Arc::clone(flight);
        let plan = CheckpointPlan {
            path: None,
            every_events: sup.checkpoint_every,
            retry: crate::checkpoint::RetryPolicy::default(),
        };
        let limits = RunLimits {
            max_events: sup.budget.max_events,
            deadline: sup.budget.max_wall.map(|w| Instant::now() + w),
            inject_panic_at: cell.inject_panic_at,
        };
        move || {
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let hook_factory = match &cell.scenario {
                    None => None,
                    Some(sref) => {
                        // Resolve eagerly so a bad reference is a typed
                        // error, then rebuild per restore inside drive.
                        sref.build_hook()?;
                        Some(sref)
                    }
                };
                match hook_factory {
                    None => drive(
                        cell.cfg.clone(),
                        None,
                        Some(&plan),
                        false,
                        &limits,
                        Some(&cancel),
                        Some(&mut |snap: &btfluid_des::Snapshot| {
                            *last_snap.lock().unwrap() = Some(snap.to_bytes());
                        }),
                        Some(Box::new(FanoutProbe::new(vec![
                            Box::new(CounterCapture(Arc::clone(&captured))),
                            Box::new(RecorderProbe::new(Arc::clone(&flight))),
                        ]))),
                    ),
                    Some(sref) => drive(
                        cell.cfg.clone(),
                        Some(&|| sref.build_hook().expect("reference resolved above")),
                        Some(&plan),
                        false,
                        &limits,
                        Some(&cancel),
                        Some(&mut |snap: &btfluid_des::Snapshot| {
                            *last_snap.lock().unwrap() = Some(snap.to_bytes());
                        }),
                        Some(Box::new(FanoutProbe::new(vec![
                            Box::new(CounterCapture(Arc::clone(&captured))),
                            Box::new(RecorderProbe::new(Arc::clone(&flight))),
                        ]))),
                    ),
                }
            }));
            // The receiver may have given up (watchdog); ignore send errors.
            let _ = tx.send(run);
        }
    };
    std::thread::spawn(worker);

    // The watchdog allows the cooperative deadline to fire first, then a
    // grace period for a wedged step before abandoning the thread.
    let verdict = match sup.budget.max_wall {
        None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
        Some(wall) => rx.recv_timeout(wall + wall / 2 + Duration::from_secs(5)),
    };
    match verdict {
        Ok(Ok(Ok(report))) => match report.end {
            RunEnd::Completed => {
                let outcome = report.outcome.expect("completed run has an outcome");
                let counters = captured.lock().unwrap().take().unwrap_or_default();
                Attempt::Done(CellResult::from_outcome(
                    &cell.id,
                    report.events,
                    &outcome,
                    started.elapsed().as_secs_f64(),
                    counters,
                ))
            }
            RunEnd::EventBudget => Attempt::Fatal(format!(
                "event budget exhausted after {} events",
                report.events
            )),
            RunEnd::WallBudget => Attempt::Fatal(format!(
                "wall-clock budget exceeded after {} events",
                report.events
            )),
            RunEnd::Cancelled => Attempt::Fatal("cancelled".into()),
        },
        Ok(Ok(Err(e))) => Attempt::Fatal(e.to_string()),
        Ok(Err(payload)) => Attempt::Panicked(panic_message(payload.as_ref())),
        Err(RecvTimeoutError::Timeout) => {
            // Wedged worker: raise the cancel flag and abandon the thread.
            cancel.store(true, Ordering::Relaxed);
            Attempt::Fatal("wall-clock watchdog fired (engine thread unresponsive)".into())
        }
        Err(RecvTimeoutError::Disconnected) => {
            Attempt::Panicked("worker thread died without reporting".into())
        }
    }
}

/// Extracts the simulated failure time from a quarantine reason, when the
/// message carries one ("... (t = 12.345)"). The flight-recorder dump
/// stamps it into its meta line so `btfluid inspect` can flag dumps whose
/// newest record predates the failure.
fn parse_failure_t(reason: &str) -> Option<f64> {
    let rest = &reason[reason.find("t = ")? + 4..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Renders a panic payload the way `std` would.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Maps a cell id to a filesystem-safe directory name.
fn sanitize_id(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Convenience: the bundle directory a cell id maps to under `bundle_dir`.
pub fn bundle_path(bundle_dir: &Path, cell_id: &str) -> PathBuf {
    bundle_dir.join(sanitize_id(cell_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_des::SchemeKind;

    fn small_cfg(seed: u64) -> DesConfig {
        let mut cfg = DesConfig::paper_small(SchemeKind::Mtcd, 0.5, seed).unwrap();
        cfg.horizon = 200.0;
        cfg.warmup = 50.0;
        cfg.drain = 200.0;
        cfg
    }

    fn sup(dir: &Path, resume: bool) -> SupervisorConfig {
        SupervisorConfig {
            manifest: dir.join("sweep.jsonl"),
            bundle_dir: dir.join("bundles"),
            budget: Budget::default(),
            max_retries: 0,
            backoff: Duration::from_millis(1),
            workers: 2,
            resume,
            checkpoint_every: 50,
        }
    }

    fn cell(id: &str, seed: u64, inject: Option<u64>) -> CellSpec {
        CellSpec {
            id: id.into(),
            cfg: small_cfg(seed),
            scenario: None,
            inject_panic_at: inject,
        }
    }

    fn fresh_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("btfs-supervisor-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn panicking_cell_is_quarantined_and_resume_reruns_only_it() {
        let dir = fresh_dir("quarantine");
        let cells = vec![
            cell("a", 1, None),
            cell("boom", 2, Some(40)),
            cell("c", 3, None),
        ];
        let report = run_sweep(&sup(&dir, false), cells).unwrap();
        assert_eq!(report.completed.len(), 2);
        assert_eq!(report.failed.len(), 1);
        assert!(!report.all_done());
        let fail = &report.failed[0];
        assert_eq!(fail.id, "boom");
        assert!(fail.reason.contains("injected panic"), "{}", fail.reason);
        // The bundle replays: repro.json decodes and the checkpoint (taken
        // at event 0..40? cadence 50 means none) may be absent — but the
        // config must round-trip.
        let bundle = ReproBundle::read(&fail.bundle).unwrap();
        assert_eq!(bundle.cell_id, "boom");
        assert_eq!(bundle.inject_panic_at, Some(40));

        // Resume without injection: only the failed cell runs.
        let cells = vec![
            cell("a", 1, None),
            cell("boom", 2, None),
            cell("c", 3, None),
        ];
        let report = run_sweep(&sup(&dir, true), cells).unwrap();
        assert_eq!(report.skipped.len(), 2);
        assert_eq!(report.completed.len(), 1);
        assert_eq!(report.completed[0].id, "boom");
        assert!(report.all_done());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bundle_checkpoint_is_captured_when_cadence_allows() {
        let dir = fresh_dir("bundle-snap");
        let mut config = sup(&dir, false);
        config.checkpoint_every = 10;
        let report = run_sweep(&config, vec![cell("boom", 5, Some(60))]).unwrap();
        let fail = &report.failed[0];
        let bundle = ReproBundle::read(&fail.bundle).unwrap();
        let snap_bytes = bundle.checkpoint.expect("cadence 10 < panic at 60");
        let snap = btfluid_des::Snapshot::from_bytes(&snap_bytes).unwrap();
        assert!(snap.events() <= 60, "snapshot predates the injected panic");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retries_are_counted_and_bounded() {
        let dir = fresh_dir("retries");
        let mut config = sup(&dir, false);
        config.max_retries = 2;
        let report = run_sweep(&config, vec![cell("boom", 7, Some(30))]).unwrap();
        assert_eq!(report.failed[0].attempts, 3);
        let journal = manifest::load(&config.manifest).unwrap();
        assert_eq!(journal[0].attempts, 3);
        assert_eq!(journal[0].status, CellStatus::Failed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn event_budget_fails_without_retry() {
        let dir = fresh_dir("budget");
        let mut config = sup(&dir, false);
        config.max_retries = 5;
        config.budget.max_events = Some(50);
        let report = run_sweep(&config, vec![cell("slow", 9, None)]).unwrap();
        let fail = &report.failed[0];
        assert_eq!(fail.attempts, 1, "budget exhaustion must not retry");
        assert!(fail.reason.contains("event budget"), "{}", fail.reason);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn existing_manifest_without_resume_is_refused() {
        let dir = fresh_dir("no-clobber");
        let report = run_sweep(&sup(&dir, false), vec![cell("a", 1, None)]).unwrap();
        assert!(report.all_done());
        assert!(matches!(
            run_sweep(&sup(&dir, false), vec![cell("a", 1, None)]),
            Err(HarnessError::Config(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_ids_are_refused() {
        let dir = fresh_dir("dup");
        assert!(matches!(
            run_sweep(
                &sup(&dir, false),
                vec![cell("a", 1, None), cell("a", 2, None)]
            ),
            Err(HarnessError::Config(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
