//! The harness error hierarchy.
//!
//! Everything the crash-safe execution layer can fail on becomes a value
//! here: engine errors (including `checked`-mode invariant violations and
//! snapshot refusals) are wrapped, filesystem trouble carries the offending
//! path, and manifest/bundle corruption is distinguished from plain I/O so
//! the CLI can map each class to its own exit code.

use btfluid_des::{DesError, SnapshotError};
use btfluid_numkit::NumError;
use std::fmt;

/// Errors produced by the checkpoint driver, the sweep supervisor, and the
/// repro-bundle codec.
#[derive(Debug, Clone, PartialEq)]
pub enum HarnessError {
    /// Filesystem failure, with the path involved.
    Io {
        /// The path being read or written.
        path: String,
        /// The underlying OS error, rendered.
        detail: String,
    },
    /// A cell or driver configuration that cannot be run.
    Config(String),
    /// Numeric/validation failure from the model or workload layers.
    Num(NumError),
    /// A typed engine failure (invariant violation, snapshot refusal).
    Engine(DesError),
    /// The sweep journal is unreadable or structurally invalid.
    Manifest {
        /// The journal path.
        path: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A repro bundle is missing pieces or fails to decode.
    Bundle(String),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Io { path, detail } => write!(f, "{path}: {detail}"),
            HarnessError::Config(msg) => write!(f, "{msg}"),
            HarnessError::Num(e) => write!(f, "{e}"),
            HarnessError::Engine(e) => write!(f, "{e}"),
            HarnessError::Manifest { path, detail } => {
                write!(f, "manifest {path}: {detail}")
            }
            HarnessError::Bundle(msg) => write!(f, "repro bundle: {msg}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<NumError> for HarnessError {
    fn from(e: NumError) -> Self {
        HarnessError::Num(e)
    }
}

impl From<DesError> for HarnessError {
    fn from(e: DesError) -> Self {
        HarnessError::Engine(e)
    }
}

impl From<SnapshotError> for HarnessError {
    fn from(e: SnapshotError) -> Self {
        HarnessError::Engine(DesError::Snapshot(e))
    }
}

/// Shorthand for wrapping an I/O failure with its path.
pub(crate) fn io_err(path: &std::path::Path, e: std::io::Error) -> HarnessError {
    HarnessError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = HarnessError::Manifest {
            path: "sweep.jsonl".into(),
            detail: "line 3: not JSON".into(),
        };
        let s = e.to_string();
        assert!(s.contains("sweep.jsonl") && s.contains("line 3"), "{s}");

        let e: HarnessError = SnapshotError::BadMagic.into();
        assert!(matches!(e, HarnessError::Engine(DesError::Snapshot(_))));
    }
}
