//! Rayon-sharded multi-run driver.
//!
//! [`run_shards`] executes a batch of independent engine configurations on
//! the workspace thread pool and returns one compact, order-preserving
//! summary per run. Unlike [`crate::supervisor::run_sweep`] there is no
//! journal, no checkpointing, and no quarantine — this is the light-weight
//! path for callers that need many *whole* runs fast and in memory: the
//! oracle's aggregate-vs-incremental equivalence check, seed-replication
//! studies, and bench drivers comparing scheduling modes.
//!
//! The first engine error aborts the batch (collection short-circuits like
//! a sequential `collect::<Result<_, _>>`), so a `checked`-mode invariant
//! violation in any shard surfaces as the batch result rather than being
//! averaged away.

use crate::HarnessError;
use btfluid_des::{Counters, DesConfig, Simulation};
use rayon::prelude::*;

/// One run in a shard batch.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Label echoed back in the matching [`ShardOutcome`].
    pub id: String,
    /// Engine configuration; seed and scheduling mode are baked in.
    pub cfg: DesConfig,
}

/// Compact summary of one completed shard.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Label from the [`ShardSpec`].
    pub id: String,
    /// Events dispatched over the whole run.
    pub events: u64,
    /// Users counted in the stationary window.
    pub users: usize,
    /// Users still in flight at the hard stop.
    pub censored: usize,
    /// Mean online time per requested file (NaN when no users completed,
    /// so callers aggregating across seeds notice the hole).
    pub avg_online_per_file: f64,
    /// Per-class mean fluid-online time (index 0 ↔ class 1; NaN for
    /// classes with no completed users).
    pub class_online_mean: Vec<f64>,
    /// Per-class completed-user counts (same indexing).
    pub class_count: Vec<u64>,
    /// Time-averaged active (peer,file) download pairs per class over the
    /// stationary window — the processor-sharing-insensitive population
    /// measure, comparable across scheduling modes.
    pub class_download_pairs: Vec<f64>,
    /// The engine's hot-loop counters — lets callers compare work done
    /// per scheduling mode (e.g. `rate_recomputes` vs `agg_samples`).
    pub counters: Counters,
}

fn run_one(spec: ShardSpec) -> Result<ShardOutcome, HarnessError> {
    let mut sim = Simulation::new(spec.cfg)?;
    while sim.step()? {}
    let counters = sim.counters();
    let outcome = sim.finish();
    let avg = outcome.avg_online_per_file().unwrap_or(f64::NAN);
    let class_online_mean = outcome
        .classes
        .iter()
        .map(|c| {
            if c.count() > 0 {
                c.online.mean()
            } else {
                f64::NAN
            }
        })
        .collect();
    let class_count = outcome.classes.iter().map(|c| c.count()).collect();
    let class_download_pairs = (1..=outcome.k())
        .map(|i| outcome.population.avg_download_pairs(i))
        .collect();
    Ok(ShardOutcome {
        id: spec.id,
        events: outcome.events,
        users: outcome.records.len(),
        censored: outcome.censored,
        avg_online_per_file: avg,
        class_online_mean,
        class_count,
        class_download_pairs,
        counters,
    })
}

/// Runs every spec to completion on the thread pool; results come back in
/// input order. The first engine failure (construction or a `checked`
/// invariant violation) aborts the batch.
pub fn run_shards(specs: Vec<ShardSpec>) -> Result<Vec<ShardOutcome>, HarnessError> {
    specs.into_par_iter().map(run_one).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_des::SchemeKind;

    fn short(scheme: SchemeKind, seed: u64, aggregate: bool) -> DesConfig {
        let mut cfg = DesConfig::paper_small(scheme, 0.5, seed).expect("config");
        cfg.horizon = 400.0;
        cfg.warmup = 100.0;
        cfg.drain = 400.0;
        cfg.aggregate = aggregate;
        cfg
    }

    #[test]
    fn batch_preserves_order_and_summarizes() {
        let specs = vec![
            ShardSpec {
                id: "per-peer".into(),
                cfg: short(SchemeKind::Mtsd, 11, false),
            },
            ShardSpec {
                id: "aggregate".into(),
                cfg: short(SchemeKind::Mtsd, 11, true),
            },
        ];
        let out = run_shards(specs).expect("batch");
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].id, "per-peer");
        assert_eq!(out[1].id, "aggregate");
        for o in &out {
            assert!(o.events > 0 && o.users > 0, "{}: empty run", o.id);
            assert!(o.avg_online_per_file.is_finite());
            assert_eq!(o.class_online_mean.len(), o.class_count.len());
        }
        // Mode-specific counters land on the right side.
        assert!(out[0].counters.agg_samples == 0);
        assert!(out[1].counters.agg_samples > 0);
        assert!(out[1].counters.rate_recomputes == 0);
    }

    #[test]
    fn same_seed_same_mode_is_deterministic_across_threads() {
        let mk = |id: &str| ShardSpec {
            id: id.into(),
            cfg: short(SchemeKind::Cmfsd { rho: 0.4 }, 23, true),
        };
        let out = run_shards(vec![mk("a"), mk("b"), mk("c"), mk("d")]).expect("batch");
        for o in &out[1..] {
            assert_eq!(o.events, out[0].events);
            assert_eq!(o.users, out[0].users);
            assert_eq!(
                o.avg_online_per_file.to_bits(),
                out[0].avg_online_per_file.to_bits()
            );
        }
    }

    #[test]
    fn first_engine_error_aborts_the_batch() {
        let mut bad = short(SchemeKind::Mtsd, 5, true);
        bad.exact_rates = true; // aggregate + exact_rates is rejected
        let specs = vec![
            ShardSpec {
                id: "good".into(),
                cfg: short(SchemeKind::Mtsd, 5, false),
            },
            ShardSpec {
                id: "bad".into(),
                cfg: bad,
            },
        ];
        assert!(run_shards(specs).is_err());
    }
}
