//! The sweep journal: an append-only JSONL manifest of finished cells.
//!
//! Every cell the supervisor finishes — successfully or not — is recorded
//! as one JSON object per line. A restarted sweep loads the journal and
//! skips cells already `done`; `failed` cells are run again (their failure
//! may have been environmental). Appends are flushed and fsynced per line,
//! so a crash can lose at most the line being written — and a torn final
//! line (no trailing newline) is tolerated on load, since the cell it
//! described will simply be re-run.

use crate::error::{io_err, HarnessError};
use crate::json::Json;
use btfluid_des::Counters;
use btfluid_telemetry::faults::{self, FaultSite, WritePlan};
use btfluid_telemetry::{diag, Level};
use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Terminal status of one sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell ran to completion and its results are valid.
    Done,
    /// The cell was quarantined after exhausting its retry budget.
    Failed,
}

impl CellStatus {
    fn as_str(self) -> &'static str {
        match self {
            CellStatus::Done => "done",
            CellStatus::Failed => "failed",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "done" => Some(CellStatus::Done),
            "failed" => Some(CellStatus::Failed),
            _ => None,
        }
    }
}

/// One journal line: a cell's terminal record.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The cell id (unique within the sweep).
    pub id: String,
    /// Terminal status.
    pub status: CellStatus,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Engine events executed by the final attempt.
    pub events: u64,
    /// Wall-clock milliseconds of the final attempt (0 when unknown —
    /// journals written before telemetry landed carry no timing).
    pub wall_ms: u64,
    /// Engine telemetry counters of a successful attempt, when captured.
    pub counters: Option<Counters>,
    /// Free-form detail: a result summary for `done`, the failure reason
    /// for `failed`.
    pub detail: String,
}

impl CellRecord {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("status".into(), Json::Str(self.status.as_str().into())),
            ("attempts".into(), Json::num_u64(u64::from(self.attempts))),
            ("events".into(), Json::num_u64(self.events)),
            ("wall_ms".into(), Json::num_u64(self.wall_ms)),
        ];
        if let Some(c) = &self.counters {
            fields.push(("counters".into(), counters_to_json(c)));
        }
        fields.push(("detail".into(), Json::Str(self.detail.clone())));
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Option<Self> {
        Some(CellRecord {
            id: v.get("id")?.as_str()?.to_string(),
            status: CellStatus::from_str(v.get("status")?.as_str()?)?,
            attempts: u32::try_from(v.get("attempts")?.as_u64()?).ok()?,
            events: v.get("events")?.as_u64()?,
            // Both telemetry fields are optional so journals from before
            // this schema grew them still load under `--resume`.
            wall_ms: v.get("wall_ms").and_then(Json::as_u64).unwrap_or(0),
            counters: v.get("counters").and_then(counters_from_json),
            detail: v.get("detail")?.as_str()?.to_string(),
        })
    }
}

fn counters_to_json(c: &Counters) -> Json {
    Json::Obj(vec![
        ("events_popped".into(), Json::num_u64(c.events_popped)),
        ("stale_discards".into(), Json::num_u64(c.stale_discards)),
        ("heap_peak".into(), Json::num_u64(c.heap_peak)),
        ("rate_recomputes".into(), Json::num_u64(c.rate_recomputes)),
        ("rate_clean_hits".into(), Json::num_u64(c.rate_clean_hits)),
        ("snapshots_taken".into(), Json::num_u64(c.snapshots_taken)),
        ("snapshot_bytes".into(), Json::num_u64(c.snapshot_bytes)),
        ("snapshot_micros".into(), Json::num_u64(c.snapshot_micros)),
        ("agg_rate_updates".into(), Json::num_u64(c.agg_rate_updates)),
        ("agg_samples".into(), Json::num_u64(c.agg_samples)),
    ])
}

fn counters_from_json(v: &Json) -> Option<Counters> {
    Some(Counters {
        events_popped: v.get("events_popped")?.as_u64()?,
        stale_discards: v.get("stale_discards")?.as_u64()?,
        heap_peak: v.get("heap_peak")?.as_u64()?,
        rate_recomputes: v.get("rate_recomputes")?.as_u64()?,
        rate_clean_hits: v.get("rate_clean_hits")?.as_u64()?,
        snapshots_taken: v.get("snapshots_taken")?.as_u64()?,
        snapshot_bytes: v.get("snapshot_bytes")?.as_u64()?,
        snapshot_micros: v.get("snapshot_micros")?.as_u64()?,
        // Absent in journals written before aggregate mode existed.
        agg_rate_updates: v
            .get("agg_rate_updates")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        agg_samples: v.get("agg_samples").and_then(Json::as_u64).unwrap_or(0),
    })
}

/// Loads a journal. A missing file is an empty journal; a torn *final*
/// line (crash mid-append — with or without its trailing newline) is
/// skipped with a warning, since the cell it described will simply be
/// re-run; a malformed line anywhere *before* the final one means the
/// journal itself is corrupt and is an error.
pub fn load(path: &Path) -> Result<Vec<CellRecord>, HarnessError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(path, e)),
    };
    let mut records = Vec::new();
    let complete_len = text.rfind('\n').map_or(0, |i| i + 1);
    let lines: Vec<(usize, &str)> = text[..complete_len]
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .collect();
    let last = lines.len().saturating_sub(1);
    for (i, (lineno, line)) in lines.iter().enumerate() {
        let parsed = Json::parse(line)
            .ok()
            .as_ref()
            .and_then(CellRecord::from_json);
        match parsed {
            Some(r) => records.push(r),
            // A torn write killed mid-append can persist any prefix of the
            // line — including one that happens to end in a newline. Only
            // the final line can be a torn append; treat it like the
            // unterminated case below and let the cell re-run.
            None if i == last => {
                diag!(
                    Level::Warn,
                    "{}: skipping truncated final journal line {} (torn append); \
                     its cell will be re-run",
                    path.display(),
                    lineno + 1
                );
            }
            None => {
                return Err(HarnessError::Manifest {
                    path: path.display().to_string(),
                    detail: format!("line {}: not a cell record", lineno + 1),
                })
            }
        }
    }
    if complete_len < text.len() {
        diag!(
            Level::Warn,
            "{}: dropping unterminated final journal line (torn append); \
             its cell will be re-run",
            path.display()
        );
    }
    Ok(records)
}

/// The ids recorded `done` — the skip set for `--resume`.
pub fn done_ids(records: &[CellRecord]) -> BTreeSet<String> {
    records
        .iter()
        .filter(|r| r.status == CellStatus::Done)
        .map(|r| r.id.clone())
        .collect()
}

/// An open journal, appending one fsynced line per record.
#[derive(Debug)]
pub struct ManifestWriter {
    path: PathBuf,
    file: File,
}

impl ManifestWriter {
    /// Opens (creating if needed) the journal for appending. An
    /// unterminated final line from a torn append is truncated away first
    /// — otherwise the next append would glue a fresh record onto the
    /// garbage tail and turn a recoverable torn line into a corrupt
    /// middle line.
    pub fn open(path: &Path) -> Result<Self, HarnessError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| io_err(parent, e))?;
            }
        }
        match std::fs::read_to_string(path) {
            Ok(text) if !text.is_empty() && !text.ends_with('\n') => {
                let keep = text.rfind('\n').map_or(0, |i| i + 1);
                diag!(
                    Level::Warn,
                    "{}: truncating torn final journal line before appending",
                    path.display()
                );
                std::fs::write(path, &text[..keep]).map_err(|e| io_err(path, e))?;
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(path, e)),
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Appends one record and forces it to disk. Passes through the chaos
    /// injection seam: a scripted short write persists a torn prefix of
    /// the line — exactly what a kill mid-append leaves behind.
    pub fn append(&mut self, record: &CellRecord) -> Result<(), HarnessError> {
        let line = format!("{}\n", record.to_json());
        match faults::write_plan(FaultSite::ManifestAppend, line.len()) {
            WritePlan::Full | WritePlan::Corrupt => {}
            WritePlan::Short(n, e) => {
                let _ = self
                    .file
                    .write_all(&line.as_bytes()[..n])
                    .and_then(|()| self.file.flush())
                    .and_then(|()| self.file.sync_data());
                return Err(io_err(&self.path, e));
            }
            WritePlan::Fail(e) => return Err(io_err(&self.path, e)),
        }
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err(&self.path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("btfs-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn rec(id: &str, status: CellStatus) -> CellRecord {
        CellRecord {
            id: id.into(),
            status,
            attempts: 1,
            events: 123,
            wall_ms: 45,
            counters: Some(Counters {
                events_popped: 100,
                heap_peak: 7,
                ..Default::default()
            }),
            detail: "ok".into(),
        }
    }

    #[test]
    fn telemetry_fields_roundtrip_and_stay_optional() {
        let path = tmp("telemetry.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut w = ManifestWriter::open(&path).unwrap();
        w.append(&rec("a", CellStatus::Done)).unwrap();
        drop(w);
        let records = load(&path).unwrap();
        assert_eq!(records[0], rec("a", CellStatus::Done));
        // A pre-telemetry journal line (no wall_ms/counters) still loads.
        std::fs::write(
            &path,
            "{\"id\":\"old\",\"status\":\"done\",\"attempts\":1,\
             \"events\":9,\"detail\":\"ok\"}\n",
        )
        .unwrap();
        let records = load(&path).unwrap();
        assert_eq!(records[0].wall_ms, 0);
        assert_eq!(records[0].counters, None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn roundtrip_and_skip_set() {
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut w = ManifestWriter::open(&path).unwrap();
        w.append(&rec("a", CellStatus::Done)).unwrap();
        w.append(&rec("b", CellStatus::Failed)).unwrap();
        drop(w);
        // Reopening appends, not truncates.
        let mut w = ManifestWriter::open(&path).unwrap();
        w.append(&rec("c", CellStatus::Done)).unwrap();
        drop(w);

        let records = load(&path).unwrap();
        assert_eq!(records.len(), 3);
        let done = done_ids(&records);
        assert!(done.contains("a") && done.contains("c") && !done.contains("b"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        assert_eq!(load(Path::new("/nonexistent/sweep.jsonl")).unwrap(), vec![]);
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let path = tmp("torn.jsonl");
        let mut w = ManifestWriter::open(&path).unwrap();
        w.append(&rec("a", CellStatus::Done)).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"id\":\"b\",\"sta"); // crash mid-append
        std::fs::write(&path, text).unwrap();
        let records = load(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].id, "a");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_final_line_with_newline_is_skipped() {
        // A torn append can persist any prefix of the line — including one
        // that ends in a newline. The final line must be skipped with a
        // warning, not fail the whole sweep resume.
        let path = tmp("torn-newline.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut w = ManifestWriter::open(&path).unwrap();
        w.append(&rec("a", CellStatus::Done)).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"id\":\"b\",\"sta\n"); // hand-truncated, newline intact
        std::fs::write(&path, text).unwrap();
        let records = load(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].id, "a");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_middle_line_is_an_error() {
        // Corruption before the final line is not a torn append — the
        // journal is damaged and resuming over it silently would lose
        // cells.
        let path = tmp("bad.jsonl");
        let mut text = String::from("{\"id\":\"a\"}\n");
        let mut w = ManifestWriter::open(&tmp("bad-donor.jsonl")).unwrap();
        w.append(&rec("b", CellStatus::Done)).unwrap();
        drop(w);
        text.push_str(&std::fs::read_to_string(tmp("bad-donor.jsonl")).unwrap());
        std::fs::write(&path, text).unwrap();
        assert!(matches!(load(&path), Err(HarnessError::Manifest { .. })));
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(tmp("bad-donor.jsonl")).unwrap();
    }

    #[test]
    fn reopen_truncates_torn_tail_before_appending() {
        // Appending after a torn tail must not weld the new record onto
        // the garbage — open() repairs the file back to its last complete
        // line first.
        let path = tmp("reopen-torn.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut w = ManifestWriter::open(&path).unwrap();
        w.append(&rec("a", CellStatus::Done)).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"id\":\"b\",\"sta"); // unterminated torn append
        std::fs::write(&path, text).unwrap();

        let mut w = ManifestWriter::open(&path).unwrap();
        w.append(&rec("c", CellStatus::Done)).unwrap();
        drop(w);
        let records = load(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "a");
        assert_eq!(records[1].id, "c");
        std::fs::remove_file(&path).unwrap();
    }
}
