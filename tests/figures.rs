//! Smoke tests over the figure harness: every experiment runs end to end
//! and reproduces the paper's qualitative shape (who wins, where the
//! crossovers sit).

use btfluid::bench::{fig2, fig3, fig4a, fig4bc, transient};

#[test]
fn fig2_mtcd_crosses_from_similar_to_much_worse() {
    let r = fig2::run(&fig2::Fig2Config::default()).unwrap();
    let first = &r.points[0];
    let last = r.points.last().unwrap();
    // Similar at p → 0: within a couple of time units of MTSD's 80.
    assert!(first.mtcd - first.mtsd < 3.0);
    // Much worse at p = 1: 98 vs 80, a 22.5% penalty.
    let penalty = (last.mtcd - last.mtsd) / last.mtsd;
    assert!(
        (penalty - 0.225).abs() < 0.01,
        "penalty at p = 1 should be ≈22.5%, got {:.1}%",
        penalty * 100.0
    );
}

#[test]
fn fig3_fairness_and_class_ordering() {
    let r = fig3::run(&fig3::Fig3Config::default()).unwrap();
    for panel in &r.panels {
        // Both schemes keep per-file download time class-fair.
        let g = panel.mtcd_download[0];
        assert!(panel.mtcd_download.iter().all(|&d| (d - g).abs() < 1e-9));
        let t = panel.mtsd_download[0];
        assert!(panel.mtsd_download.iter().all(|&d| (d - t).abs() < 1e-9));
    }
}

#[test]
fn fig4a_gain_grows_with_correlation() {
    let r = fig4a::run(&fig4a::Fig4aConfig::default()).unwrap();
    // The ρ=1 − ρ=0 gap is monotone in p across the grid (the paper's
    // "improvement more obvious for high correlation").
    let gaps: Vec<f64> = r
        .values
        .iter()
        .map(|row| row.last().unwrap() - row.first().unwrap())
        .collect();
    for w in gaps.windows(2) {
        assert!(w[1] >= w[0] - 1e-6, "gaps not monotone: {gaps:?}");
    }
}

#[test]
fn fig4bc_high_p_low_rho_benefits_everyone() {
    let r = fig4bc::run(&fig4bc::Fig4bcConfig::default()).unwrap();
    let b = &r.panels[0]; // p = 0.9
    for i in 0..10 {
        assert!(b.cmfsd_low.0[i] < b.mfcd.0[i], "class {}", i + 1);
    }
}

#[test]
fn transient_overshoot_exists() {
    // A big flash crowd first overshoots in seeds before settling (small
    // crowds drain gently: with the default 200 peers the conversion flux
    // barely exceeds the arrival flow, so force a 5000-peer crowd).
    let r = transient::run(&transient::TransientConfig {
        flash_crowd: 5000.0,
        ..Default::default()
    })
    .unwrap();
    let seeds = r.mtcd.channel(1);
    let max_seeds = seeds.iter().cloned().fold(f64::MIN, f64::max);
    let final_seeds = *seeds.last().unwrap();
    assert!(
        max_seeds > 1.2 * final_seeds,
        "expected a seed overshoot: max {max_seeds:.1} vs final {final_seeds:.1}"
    );
}
