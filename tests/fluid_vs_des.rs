//! Experiment X3 — the peer-level simulator agrees with the fluid models'
//! steady-state predictions (a validation the paper never ran).
//!
//! Tolerances are statistical: the DES runs a finite swarm, so per-file
//! means carry sampling noise; replications + a generous band keep the
//! tests deterministic without being vacuous.

use btfluid::core::{evaluate_scheme, FluidParams, Scheme};
use btfluid::des::{run_replications, DesConfig, OrderPolicy, SchemeKind};
use btfluid::workload::CorrelationModel;

fn des_cfg(scheme: SchemeKind, p: f64) -> DesConfig {
    DesConfig {
        params: FluidParams::paper(),
        model: CorrelationModel::new(10, p, 0.25).unwrap(),
        scheme,
        horizon: 4000.0,
        warmup: 1000.0,
        drain: 4000.0,
        seed: 0,
        adapt: None,
        origin_seeds: 0,
        warm_start: false,
        order_policy: OrderPolicy::default(),
        record_every: None,
        exact_rates: false,
        aggregate: false,
        checked: false,
    }
}

fn check(scheme: SchemeKind, fluid_scheme: Scheme, p: f64, tol: f64) {
    let fluid = evaluate_scheme(
        FluidParams::paper(),
        &CorrelationModel::new(10, p, 0.25).unwrap(),
        fluid_scheme,
    )
    .unwrap();
    let summary = run_replications(&des_cfg(scheme, p), 3, 777).unwrap();
    let sim = summary.online_per_file.mean();
    let rel = ((sim - fluid.avg_online_per_file) / fluid.avg_online_per_file).abs();
    assert!(
        rel < tol,
        "{}: sim {sim:.2} vs fluid {:.2} ({:.1}% off)",
        scheme.name(),
        fluid.avg_online_per_file,
        rel * 100.0
    );
    let sim_dl = summary.download_per_file.mean();
    let rel_dl = ((sim_dl - fluid.avg_download_per_file) / fluid.avg_download_per_file).abs();
    assert!(
        rel_dl < tol,
        "{} download: sim {sim_dl:.2} vs fluid {:.2}",
        scheme.name(),
        fluid.avg_download_per_file
    );
}

#[test]
fn mtsd_agrees_with_fluid() {
    check(SchemeKind::Mtsd, Scheme::Mtsd, 0.5, 0.10);
}

#[test]
fn mtcd_agrees_with_fluid() {
    check(SchemeKind::Mtcd, Scheme::Mtcd, 0.5, 0.10);
}

#[test]
fn mfcd_agrees_with_fluid() {
    // MFCD's "virtual peers depart as a whole" gives slightly more seed
    // capacity than the model assumes; the paper argues the difference is
    // negligible — allow a slightly wider band and expect the sim to be
    // FASTER, not slower.
    let p = 0.5;
    let fluid = evaluate_scheme(
        FluidParams::paper(),
        &CorrelationModel::new(10, p, 0.25).unwrap(),
        Scheme::Mfcd,
    )
    .unwrap();
    let summary = run_replications(&des_cfg(SchemeKind::Mfcd, p), 3, 999).unwrap();
    let sim = summary.online_per_file.mean();
    let rel = (sim - fluid.avg_online_per_file) / fluid.avg_online_per_file;
    assert!(
        rel.abs() < 0.15,
        "MFCD: sim {sim:.2} vs fluid {:.2}",
        fluid.avg_online_per_file
    );
    assert!(
        rel < 0.02,
        "lingering virtual seeds should make the sim at least as fast as the fluid model \
         (rel = {rel:.3})"
    );
}

fn cmfsd_cfg(p: f64, rho: f64) -> DesConfig {
    DesConfig {
        params: FluidParams::paper(),
        model: CorrelationModel::new(10, p, 0.1).unwrap(),
        scheme: SchemeKind::Cmfsd { rho },
        horizon: 6_000.0,
        warmup: 1_000.0,
        drain: 8_000.0,
        seed: 0,
        adapt: None,
        origin_seeds: 1,
        warm_start: true,
        order_policy: OrderPolicy::default(),
        record_every: None,
        exact_rates: false,
        aggregate: false,
        checked: false,
    }
}

#[test]
fn cmfsd_agrees_with_fluid_for_positive_rho() {
    // Warm-started from the fluid fixed point; for every ρ ≥ 0.1 the
    // peer-level system tracks the fluid prediction within a few percent
    // (measured: −0.2 % at ρ = 0.1 down to −3.6 % at ρ = 1.0; the origin
    // seed and finite-size effects make the sim slightly fast).
    let p = 0.7;
    for rho in [0.1, 0.5, 1.0] {
        let fluid = evaluate_scheme(
            FluidParams::paper(),
            &CorrelationModel::new(10, p, 0.1).unwrap(),
            Scheme::Cmfsd { rho },
        )
        .unwrap();
        let summary = run_replications(&cmfsd_cfg(p, rho), 2, 777).unwrap();
        let counted: usize = summary.outcomes.iter().map(|o| o.records.len()).sum();
        assert!(
            summary.censored * 20 < counted,
            "ρ = {rho}: censored {} of {counted} — not stationary",
            summary.censored
        );
        let sim = summary.online_per_file.mean();
        let rel = ((sim - fluid.avg_online_per_file) / fluid.avg_online_per_file).abs();
        assert!(
            rel < 0.08,
            "CMFSD(ρ={rho}): sim {sim:.2} vs fluid {:.2} ({:.1}% off)",
            fluid.avg_online_per_file,
            rel * 100.0
        );
    }
}

#[test]
fn cmfsd_rho_zero_is_a_singular_point() {
    // Finding X3b: the fluid model's optimum ρ = 0 is not realizable by the
    // literal scheme. With no TFT floor (ημρ = 0) a downloader's progress
    // depends entirely on someone *holding* its current file wanting to
    // serve it; finite swarms then convoy on their scarcest file and the
    // realized times blow far past the fluid prediction — even when the
    // simulation starts AT the fluid equilibrium with an origin seed
    // present. Any ρ ≥ 0.1 restores agreement (previous test).
    let p = 0.7;
    let fluid = evaluate_scheme(
        FluidParams::paper(),
        &CorrelationModel::new(10, p, 0.1).unwrap(),
        Scheme::Cmfsd { rho: 0.0 },
    )
    .unwrap();
    let mut cfg = cmfsd_cfg(p, 0.0);
    cfg.horizon = 4_000.0;
    cfg.drain = 6_000.0;
    let outcome = btfluid::des::Simulation::new(cfg).unwrap().run();
    let sim = outcome.avg_online_per_file().unwrap();
    assert!(
        sim > 2.0 * fluid.avg_online_per_file,
        "expected the ρ = 0 pathology (≥2× the fluid prediction); \
         sim {sim:.1} vs fluid {:.1}",
        fluid.avg_online_per_file
    );
}

#[test]
fn simulated_scheme_ordering_matches_fluid() {
    // The qualitative result survives the stochastic system: at high
    // correlation, collaborative CMFSD (small positive ρ) < MTSD < MFCD in
    // online time per file. (ρ = 0.1 rather than the fluid optimum ρ = 0 —
    // see `cmfsd_rho_zero_is_a_singular_point`.)
    let p = 0.9;
    let collab = run_replications(&cmfsd_cfg(p, 0.1), 2, 5)
        .unwrap()
        .online_per_file
        .mean();
    let seq = run_replications(&des_cfg(SchemeKind::Mtsd, p), 2, 5)
        .unwrap()
        .online_per_file
        .mean();
    let conc = run_replications(&des_cfg(SchemeKind::Mfcd, p), 2, 5)
        .unwrap()
        .online_per_file
        .mean();
    assert!(
        collab < seq && seq < conc,
        "ordering violated: CMFSD(0) {collab:.1}, MTSD {seq:.1}, MFCD {conc:.1}"
    );
}

#[test]
fn population_counts_match_littles_law() {
    // Little's law at the population level: time-averaged downloading
    // users ≈ (entering rate) × (mean download span). MTSD's download span
    // excludes seeding gaps, so compare download pairs (= active users for
    // a sequential scheme).
    let cfg = des_cfg(SchemeKind::Mtsd, 0.5);
    let outcome = btfluid::des::Simulation::new(cfg).unwrap().run();
    let model = CorrelationModel::new(10, 0.5, 0.25).unwrap();
    let mut expected = 0.0;
    for i in 1..=10u32 {
        // class-i users: λᵢ entering, each downloading for i·T = i·60.
        expected += model.class_rate(i) * i as f64 * 60.0;
    }
    let measured: f64 = (1..=10)
        .map(|i| outcome.population.avg_download_pairs(i))
        .sum();
    let rel = ((measured - expected) / expected).abs();
    assert!(
        rel < 0.12,
        "downloading pairs: measured {measured:.1} vs Little {expected:.1}"
    );
}
