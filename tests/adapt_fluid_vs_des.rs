//! Experiment X4 cross-check: the mixed-population fluid model's analytic
//! Adapt equilibrium against the simulated Adapt controller.
//!
//! The fluid prediction (`btfluid::core::cmfsd_mixed::adapt_equilibrium`)
//! says where the obedient population's give/take imbalance Δ̄ re-enters
//! the controller's dead band; the DES actually runs the per-peer
//! controllers against cheaters. We check *qualitative* agreement: both say
//! "stay at 0" for honest swarms and both move ρ up under heavy cheating.

use btfluid::core::adapt::AdaptConfig;
use btfluid::core::cmfsd_mixed::adapt_equilibrium;
use btfluid::core::FluidParams;
use btfluid::des::{AdaptSetup, DesConfig, OrderPolicy, SchemeKind, Simulation};
use btfluid::numkit::stats::Welford;
use btfluid::workload::CorrelationModel;

fn controller() -> AdaptConfig {
    AdaptConfig::default_for_mu(0.02)
}

fn simulated_rho(cheater_fraction: f64, seed: u64) -> f64 {
    let cfg = DesConfig {
        params: FluidParams::paper(),
        model: CorrelationModel::new(10, 0.9, 0.25).unwrap(),
        scheme: SchemeKind::Cmfsd { rho: 0.0 },
        horizon: 4000.0,
        warmup: 1500.0,
        drain: 4000.0,
        seed,
        adapt: Some(AdaptSetup {
            controller: controller(),
            epoch: 20.0,
            cheater_fraction,
        }),
        origin_seeds: 1,
        warm_start: false,
        order_policy: OrderPolicy::Random,
        record_every: None,
        exact_rates: false,
        aggregate: false,
        checked: false,
    };
    let outcome = Simulation::new(cfg).unwrap().run();
    let mut rho = Welford::new();
    for r in &outcome.records {
        if !r.cheater && r.class >= 2 {
            rho.push(r.final_rho);
        }
    }
    assert!(rho.count() > 50, "need support, got {}", rho.count());
    rho.mean()
}

fn fluid_rho(cheater_fraction: f64) -> f64 {
    let all = CorrelationModel::new(10, 0.9, 0.25).unwrap().class_rates();
    let obedient: Vec<f64> = all.iter().map(|l| l * (1.0 - cheater_fraction)).collect();
    let cheaters: Vec<f64> = all.iter().map(|l| l * cheater_fraction).collect();
    adapt_equilibrium(FluidParams::paper(), obedient, cheaters, &controller()).unwrap()
}

#[test]
fn honest_swarm_agrees_on_full_collaboration() {
    assert_eq!(fluid_rho(0.0), 0.0);
    let sim = simulated_rho(0.0, 21);
    assert!(
        sim < 0.25,
        "simulated honest swarm should stay near ρ = 0, got {sim}"
    );
}

#[test]
fn heavy_cheating_drives_rho_up_in_both() {
    let fluid = fluid_rho(0.7);
    assert!(fluid > 0.2, "fluid ρ* = {fluid}");
    let sim = simulated_rho(0.7, 22);
    let honest_sim = simulated_rho(0.0, 22);
    assert!(
        sim > honest_sim + 0.1,
        "cheating should visibly raise the simulated ρ: {sim} vs honest {honest_sim}"
    );
}

#[test]
fn fluid_prediction_is_monotone_in_cheating() {
    let mut prev = -1.0;
    for frac in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let r = fluid_rho(frac);
        assert!(r >= prev - 1e-9, "ρ*({frac}) = {r} < {prev}");
        prev = r;
    }
}
