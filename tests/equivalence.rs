//! Experiment X2 — the paper's equivalence claims (Sections 3.4 and 4.2.2):
//! MFCD ≡ MTCD in the fluid limit, and CMFSD with ρ = 1 performs exactly
//! as MFCD.

use btfluid::core::cmfsd::Cmfsd;
use btfluid::core::mfcd::Mfcd;
use btfluid::core::mtcd::Mtcd;
use btfluid::core::{evaluate_scheme, FluidParams, Scheme};
use btfluid::workload::CorrelationModel;

#[test]
fn mfcd_equals_mtcd_for_all_correlations() {
    for p in [0.05, 0.2, 0.5, 0.8, 1.0] {
        let model = CorrelationModel::new(10, p, 2.0).unwrap();
        let mtcd = Mtcd::new(FluidParams::paper(), model.per_torrent_rates())
            .unwrap()
            .class_times()
            .unwrap();
        let mfcd = Mfcd::from_correlation(FluidParams::paper(), &model)
            .unwrap()
            .class_times()
            .unwrap();
        for i in 1..=10 {
            assert_eq!(
                mtcd.online_total(i),
                mfcd.online_total(i),
                "p = {p}, class {i}"
            );
            assert_eq!(mtcd.download_total(i), mfcd.download_total(i));
        }
    }
}

#[test]
fn cmfsd_rho_one_is_mfcd_exactly() {
    // The per-subtorrent rate identity λⱼⁱ = (i/K)·λᵢ makes this exact,
    // not approximate (DESIGN.md §5.3 derives the algebra).
    for p in [0.1, 0.4, 0.7, 0.95] {
        let model = CorrelationModel::new(10, p, 1.0).unwrap();
        let cmfsd = Cmfsd::new(FluidParams::paper(), model.class_rates(), 1.0)
            .unwrap()
            .class_times()
            .unwrap();
        let mfcd = Mfcd::from_correlation(FluidParams::paper(), &model)
            .unwrap()
            .class_times()
            .unwrap();
        for i in 1..=10 {
            assert!(
                (cmfsd.download_per_file(i) - mfcd.download_per_file(i)).abs() < 1e-8,
                "p = {p}, class {i}: {} vs {}",
                cmfsd.download_per_file(i),
                mfcd.download_per_file(i)
            );
            assert!((cmfsd.online_per_file(i) - mfcd.online_per_file(i)).abs() < 1e-8);
        }
    }
}

#[test]
fn per_torrent_rate_identity() {
    // λⱼⁱ = (i/K)·λᵢ — the identity the equivalences rest on.
    let model = CorrelationModel::new(10, 0.37, 3.0).unwrap();
    for i in 1..=10u32 {
        let lhs = model.per_torrent_rate(i);
        let rhs = i as f64 / 10.0 * model.class_rate(i);
        assert!((lhs - rhs).abs() < 1e-12, "class {i}: {lhs} vs {rhs}");
    }
}

#[test]
fn scheme_report_consistency() {
    // The unified evaluator agrees with the direct model calls.
    let model = CorrelationModel::new(10, 0.6, 1.0).unwrap();
    let params = FluidParams::paper();
    let report = evaluate_scheme(params, &model, Scheme::Cmfsd { rho: 0.3 }).unwrap();
    let direct = Cmfsd::new(params, model.class_rates(), 0.3)
        .unwrap()
        .class_times()
        .unwrap();
    for i in 1..=10 {
        assert_eq!(report.times.online_per_file(i), direct.online_per_file(i));
    }
}

#[test]
fn cmfsd_improvement_ordering_across_schemes() {
    // The paper's overall ordering at high correlation:
    // CMFSD(0) < CMFSD(0.5) < CMFSD(1) = MFCD = MTCD, and MTSD sits
    // between full collaboration and no collaboration.
    let model = CorrelationModel::new(10, 0.9, 1.0).unwrap();
    let params = FluidParams::paper();
    let avg = |s: Scheme| {
        evaluate_scheme(params, &model, s)
            .unwrap()
            .avg_online_per_file
    };
    let full = avg(Scheme::Cmfsd { rho: 0.0 });
    let half = avg(Scheme::Cmfsd { rho: 0.5 });
    let none = avg(Scheme::Cmfsd { rho: 1.0 });
    let mfcd = avg(Scheme::Mfcd);
    let mtsd = avg(Scheme::Mtsd);
    assert!(full < half && half < none, "{full} < {half} < {none}");
    assert!((none - mfcd).abs() < 1e-6);
    assert!(full < mtsd && mtsd < none, "{full} < {mtsd} < {none}");
}
