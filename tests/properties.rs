//! Cross-crate property tests (proptest): the closed forms really are
//! equilibria of their ODEs, the fixed points really solve the balance
//! equations, and the workload identities hold for arbitrary parameters.

use btfluid::core::cmfsd::Cmfsd;
use btfluid::core::cmfsd_mixed::{CmfsdMixed, Population};
use btfluid::core::mtcd::Mtcd;
use btfluid::core::FluidParams;
use btfluid::numkit::ode::OdeSystem;
use btfluid::workload::{ClassMix, CorrelationModel};
use proptest::prelude::*;

/// Strategy: valid paper-like fluid parameters with γ > μ.
fn params() -> impl Strategy<Value = FluidParams> {
    (0.005f64..0.05, 0.2f64..1.0, 1.2f64..4.0).prop_map(|(mu, eta, ratio)| {
        FluidParams::new(mu, eta, mu * ratio).expect("constructed valid")
    })
}

/// Strategy: a correlation model with 2..=12 files.
fn correlation() -> impl Strategy<Value = CorrelationModel> {
    (2u32..=12, 0.02f64..=1.0, 0.1f64..5.0)
        .prop_map(|(k, p, l0)| CorrelationModel::new(k, p, l0).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn class_rates_sum_to_entering_rate(model in correlation()) {
        let total: f64 = model.class_rates().iter().sum();
        prop_assert!((total - model.entering_rate()).abs() < 1e-9 * model.lambda0());
    }

    #[test]
    fn per_torrent_rates_sum_to_lambda0_p(model in correlation()) {
        let total: f64 = model.per_torrent_rates().iter().sum();
        prop_assert!((total - model.lambda0() * model.p()).abs() < 1e-9 * model.lambda0());
    }

    #[test]
    fn file_rate_identity(model in correlation()) {
        let mix = ClassMix::system_wide(&model).unwrap();
        prop_assert!((mix.file_rate() - model.file_request_rate()).abs()
            < 1e-9 * model.file_request_rate().max(1.0));
    }

    #[test]
    fn mtcd_closed_form_is_an_ode_equilibrium(
        params in params(),
        model in correlation(),
    ) {
        let m = Mtcd::new(params, model.per_torrent_rates()).unwrap();
        let ss = match m.steady_state() {
            Ok(ss) => ss,
            Err(_) => return Ok(()), // seed-capacity-constrained: no claim
        };
        let mut state = ss.downloaders.clone();
        state.extend_from_slice(&ss.seeds);
        let mut d = vec![0.0; m.dim()];
        m.rhs(0.0, &state, &mut d);
        let scale = model.lambda0().max(1.0);
        for (i, &di) in d.iter().enumerate() {
            prop_assert!(di.abs() < 1e-9 * scale, "rhs[{i}] = {di}");
        }
    }

    #[test]
    fn cmfsd_fixed_point_is_an_ode_equilibrium(
        params in params(),
        model in correlation(),
        rho in 0.0f64..=1.0,
    ) {
        let m = Cmfsd::new(params, model.class_rates(), rho).unwrap();
        let ss = match m.steady_state() {
            Ok(ss) => ss,
            Err(_) => return Ok(()),
        };
        let mut state = ss.stages.clone();
        state.extend_from_slice(&ss.seeds);
        let mut d = vec![0.0; m.dim()];
        m.rhs(0.0, &state, &mut d);
        let scale = model.lambda0().max(1.0);
        for (i, &di) in d.iter().enumerate() {
            prop_assert!(di.abs() < 1e-7 * scale, "rhs[{i}] = {di}");
        }
    }

    #[test]
    fn cmfsd_online_time_monotone_in_rho(
        model in correlation(),
        rho_pair in (0.0f64..=1.0, 0.0f64..=1.0),
    ) {
        let params = FluidParams::paper();
        let (a, b) = rho_pair;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mix = ClassMix::system_wide(&model).unwrap();
        let t_lo = Cmfsd::new(params, model.class_rates(), lo).unwrap().class_times();
        let t_hi = Cmfsd::new(params, model.class_rates(), hi).unwrap().class_times();
        if let (Ok(t_lo), Ok(t_hi)) = (t_lo, t_hi) {
            let v_lo = t_lo.avg_online_per_file(&mix).unwrap();
            let v_hi = t_hi.avg_online_per_file(&mix).unwrap();
            prop_assert!(v_lo <= v_hi + 1e-9, "ρ={lo} gives {v_lo}, ρ={hi} gives {v_hi}");
        }
    }

    #[test]
    fn mtcd_per_file_download_is_class_fair(
        params in params(),
        model in correlation(),
    ) {
        let m = Mtcd::new(params, model.per_torrent_rates()).unwrap();
        if let Ok(times) = m.class_times() {
            let g = times.download_per_file(1);
            for i in 1..=model.k() as usize {
                prop_assert!((times.download_per_file(i) - g).abs() < 1e-9 * g);
            }
        }
    }

    #[test]
    fn cmfsd_stage_flux_balance(
        model in correlation(),
        rho in 0.0f64..=1.0,
    ) {
        // At the fixed point every stage of class i carries flux λᵢ.
        let params = FluidParams::paper();
        let m = Cmfsd::new(params, model.class_rates(), rho).unwrap();
        if let Ok(ss) = m.steady_state() {
            let mu = params.mu();
            let eta = params.eta();
            for i in 1..=model.k() as usize {
                let lambda = m.lambdas()[i - 1];
                for j in 1..=i {
                    let x = ss.stages[m.stage_index(i, j)];
                    let flux = mu * eta * m.p_fn(i, j) * x + mu * x * ss.s;
                    prop_assert!(
                        (flux - lambda).abs() < 1e-8 * lambda.max(1e-12),
                        "stage ({i},{j}): flux {flux} vs λ {lambda}"
                    );
                }
            }
        }
    }

    #[test]
    fn mtsd_flat_average_for_any_mix(model in correlation()) {
        // MTSD's population average equals its constant per-file time no
        // matter the class mix.
        let params = FluidParams::paper();
        let mtsd = btfluid::core::mtsd::Mtsd::new(params);
        let times = mtsd.class_times(model.k() as usize).unwrap();
        let mix = ClassMix::system_wide(&model).unwrap();
        let avg = times.avg_online_per_file(&mix).unwrap();
        prop_assert!((avg - 80.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_model_with_equal_rhos_collapses_to_single(
        model in correlation(),
        rho in 0.0f64..=1.0,
        split in 0.05f64..=0.95,
    ) {
        // Two populations with the SAME ρ must be indistinguishable from
        // one population carrying their combined workload.
        let params = FluidParams::paper();
        let all = model.class_rates();
        let a: Vec<f64> = all.iter().map(|l| l * split).collect();
        let b: Vec<f64> = all.iter().map(|l| l * (1.0 - split)).collect();
        let mixed = CmfsdMixed::new(
            params,
            vec![
                Population { rho, lambdas: a },
                Population { rho, lambdas: b },
            ],
        )
        .unwrap();
        let single = Cmfsd::new(params, all, rho).unwrap();
        if let (Ok(ms), Ok(ss)) = (mixed.steady_state(), single.steady_state()) {
            prop_assert!((ms.s - ss.s).abs() < 1e-9 * ss.s.max(1.0));
        }
    }

    #[test]
    fn mixed_cheaters_slow_everyone_down(
        model in correlation(),
        frac in 0.1f64..=0.9,
    ) {
        // Adding cheaters (ρ = 1) to an otherwise collaborative swarm can
        // only raise the obedient population's online time per file.
        let params = FluidParams::paper();
        let all = model.class_rates();
        let obedient: Vec<f64> = all.iter().map(|l| l * (1.0 - frac)).collect();
        let cheaters: Vec<f64> = all.iter().map(|l| l * frac).collect();
        let honest = CmfsdMixed::new(
            params,
            vec![Population { rho: 0.1, lambdas: all.clone() }],
        )
        .unwrap();
        let infested = CmfsdMixed::new(
            params,
            vec![
                Population { rho: 0.1, lambdas: obedient },
                Population { rho: 1.0, lambdas: cheaters },
            ],
        )
        .unwrap();
        if let (Ok(ht), Ok(it)) = (honest.class_times(0), infested.class_times(0)) {
            let k = model.k() as usize;
            for i in 1..=k {
                prop_assert!(
                    it.online_per_file(i) >= ht.online_per_file(i) - 1e-9,
                    "class {i}: infested {} < honest {}",
                    it.online_per_file(i),
                    ht.online_per_file(i)
                );
            }
        }
    }

    #[test]
    fn elasticity_mu_always_negative(
        model in correlation(),
        rho in 0.0f64..=1.0,
    ) {
        // More upload bandwidth never hurts, for any scheme configuration.
        use btfluid::core::sensitivity::{elasticity, Knob};
        use btfluid::core::Scheme;
        let params = FluidParams::paper();
        if let Ok(e) = elasticity(params, &model, Scheme::Cmfsd { rho }, Knob::Mu, 1e-4) {
            prop_assert!(e.elasticity < 0.0, "E_mu = {}", e.elasticity);
        }
    }
}
