//! Experiment X1 — the paper's own consistency check (Section 3.3):
//! with `K = 1` (one file, one torrent, one class) every multi-file model
//! must degenerate to the Qiu–Srikant single-torrent result.

use btfluid::core::base::SingleTorrent;
use btfluid::core::cmfsd::Cmfsd;
use btfluid::core::mtcd::Mtcd;
use btfluid::core::mtsd::Mtsd;
use btfluid::core::multiclass::{BandwidthClass, MultiClassFluid};
use btfluid::core::FluidParams;

const LAMBDA: f64 = 1.7;

fn reference() -> (f64, f64) {
    let ss = SingleTorrent::new(FluidParams::paper(), LAMBDA)
        .unwrap()
        .steady_state()
        .unwrap();
    (ss.download_time, ss.online_time)
}

#[test]
fn mtcd_k1_matches_single_torrent() {
    let (t_ref, online_ref) = reference();
    let m = Mtcd::new(FluidParams::paper(), vec![LAMBDA]).unwrap();
    let times = m.class_times().unwrap();
    assert!((times.download_total(1) - t_ref).abs() < 1e-9);
    assert!((times.online_total(1) - online_ref).abs() < 1e-9);
    // Populations too: x = λ·T, y = λ/γ.
    let ss = m.steady_state().unwrap();
    assert!((ss.downloaders[0] - LAMBDA * t_ref).abs() < 1e-9);
    assert!((ss.seeds[0] - LAMBDA / 0.05).abs() < 1e-9);
}

#[test]
fn mtsd_k1_matches_single_torrent() {
    let (t_ref, online_ref) = reference();
    let m = Mtsd::new(FluidParams::paper());
    assert!((m.download_time().unwrap() - t_ref).abs() < 1e-9);
    assert!((m.online_time_per_file() - online_ref).abs() < 1e-9);
}

#[test]
fn cmfsd_k1_matches_single_torrent() {
    let (t_ref, online_ref) = reference();
    for rho in [0.0, 0.5, 1.0] {
        let m = Cmfsd::new(FluidParams::paper(), vec![LAMBDA], rho).unwrap();
        let times = m.class_times().unwrap();
        assert!(
            (times.download_total(1) - t_ref).abs() < 1e-6,
            "ρ = {rho}: {} vs {t_ref}",
            times.download_total(1)
        );
        assert!((times.online_total(1) - online_ref).abs() < 1e-6);
    }
}

#[test]
fn multiclass_single_class_matches_single_torrent() {
    let (t_ref, _) = reference();
    let m = MultiClassFluid::new(
        vec![BandwidthClass {
            mu: 0.02,
            c: 1.0,
            lambda: LAMBDA,
        }],
        0.5,
        0.05,
    )
    .unwrap();
    let ss = m.steady_state().unwrap();
    assert!((ss.download_times[0] - t_ref).abs() < 1e-9);
}

#[test]
fn mtcd_class_i_is_a_bandwidth_class() {
    // A class-i MTCD peer is a bandwidth class (μ/i, c/i): the multi-class
    // model of Section 2 with those classes reproduces the MTCD closed
    // form exactly.
    let params = FluidParams::paper();
    let lambdas = [0.4, 0.3, 0.2, 0.1];
    let mtcd = Mtcd::new(params, lambdas.to_vec()).unwrap();
    let mtcd_ss = mtcd.steady_state().unwrap();

    let classes: Vec<BandwidthClass> = lambdas
        .iter()
        .enumerate()
        .map(|(idx, &l)| {
            let i = (idx + 1) as f64;
            BandwidthClass {
                mu: params.mu() / i,
                c: 1.0 / i, // equal users: c cancels, only the 1/i matters
                lambda: l,
            }
        })
        .collect();
    let mc = MultiClassFluid::new(classes, params.eta(), params.gamma()).unwrap();
    let mc_ss = mc.steady_state().unwrap();
    for i in 0..4 {
        assert!(
            (mc_ss.downloaders[i] - mtcd_ss.downloaders[i]).abs()
                < 1e-6 * mtcd_ss.downloaders[i].max(1.0),
            "class {}: multiclass {} vs MTCD {}",
            i + 1,
            mc_ss.downloaders[i],
            mtcd_ss.downloaders[i]
        );
    }
}
