//! A publisher's view: you are about to publish a 10-episode TV series as
//! one multi-file torrent. How much does the collaborative scheme (CMFSD)
//! help your downloaders over the client default (MFCD), and how should
//! the bandwidth allocation ratio ρ be set?
//!
//! ```text
//! cargo run --example tv_series
//! ```

use btfluid::core::cmfsd::Cmfsd;
use btfluid::core::mfcd::Mfcd;
use btfluid::core::FluidParams;
use btfluid::workload::{ClassMix, CorrelationModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = FluidParams::paper();
    // Most viewers grab the whole season: correlation p = 0.95.
    let model = CorrelationModel::new(10, 0.95, 1.0)?;
    let mix = ClassMix::system_wide(&model)?;

    // The client-default baseline.
    let mfcd = Mfcd::from_correlation(params, &model)?.class_times()?;
    let baseline = mfcd.avg_online_per_file(&mix)?;
    println!("10-episode season, p = 0.95");
    println!("MFCD (client default): {baseline:.1} time units online per episode\n");

    println!(
        "{:>5} {:>14} {:>12} {:>22}",
        "ρ", "online/file", "vs MFCD", "binge-watcher (cls 10)"
    );
    println!("{}", "-".repeat(58));
    for rho in [1.0, 0.75, 0.5, 0.25, 0.1, 0.0] {
        let t = Cmfsd::new(params, model.class_rates(), rho)?.class_times()?;
        let avg = t.avg_online_per_file(&mix)?;
        println!(
            "{rho:>5.2} {avg:>14.2} {:>11.1}% {:>22.2}",
            100.0 * (avg - baseline) / baseline,
            t.online_per_file(10),
        );
    }

    println!(
        "\nEvery step of collaboration (lower ρ) speeds the swarm up; at ρ = 0 \
         the season\ndownloads ~40% faster per episode than under the default \
         client behaviour."
    );
    Ok(())
}
