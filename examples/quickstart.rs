//! Quickstart: evaluate all four downloading schemes at one parameter
//! point and print the comparison the paper's Section 4 is about.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use btfluid::core::{evaluate_scheme, FluidParams, Scheme};
use btfluid::workload::CorrelationModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's parameters: K = 10 files, μ = 0.02, η = 0.5, γ = 0.05,
    // and a fairly high file correlation (think: episodes of a TV play).
    let params = FluidParams::paper();
    let p = 0.8;
    let model = CorrelationModel::new(10, p, 1.0)?;

    println!("K = 10 files, correlation p = {p}, μ = 0.02, η = 0.5, γ = 0.05\n");
    println!(
        "{:<14} {:>14} {:>14} {:>10}",
        "scheme", "online/file", "download/file", "fairness"
    );
    println!("{}", "-".repeat(56));
    for scheme in [
        Scheme::Mtsd,
        Scheme::Mtcd,
        Scheme::Mfcd,
        Scheme::Cmfsd { rho: 0.5 },
        Scheme::Cmfsd { rho: 0.0 },
    ] {
        let r = evaluate_scheme(params, &model, scheme)?;
        println!(
            "{:<14} {:>14.2} {:>14.2} {:>10.4}",
            scheme.name(),
            r.avg_online_per_file,
            r.avg_download_per_file,
            r.download_fairness
        );
    }

    println!(
        "\nReading: sequential (MTSD) beats concurrent (MTCD/MFCD) at high \
         correlation,\nand CMFSD with full collaboration (ρ = 0) beats everything — \
         the paper's headline result."
    );
    Ok(())
}
