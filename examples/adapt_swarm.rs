//! Peer-level Adapt in action: a CMFSD swarm where a configurable fraction
//! of peers cheat (never donate through their virtual seeds). Obedient
//! peers start at ρ = 0 and adjust from the observed give/take imbalance —
//! the paper's Section 4.3 mechanism, evaluated in the simulator.
//!
//! ```text
//! cargo run --release --example adapt_swarm [cheater_fraction]
//! ```

use btfluid::core::adapt::AdaptConfig;
use btfluid::core::FluidParams;
use btfluid::des::{AdaptSetup, DesConfig, OrderPolicy, SchemeKind, Simulation};
use btfluid::workload::CorrelationModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cheater_fraction: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.5);

    let cfg = DesConfig {
        params: FluidParams::paper(),
        model: CorrelationModel::new(10, 0.9, 0.25)?,
        scheme: SchemeKind::Cmfsd { rho: 0.0 },
        horizon: 4000.0,
        warmup: 1000.0,
        drain: 4000.0,
        seed: 7,
        adapt: Some(AdaptSetup {
            controller: AdaptConfig::default_for_mu(0.02),
            epoch: 20.0,
            cheater_fraction,
        }),
        origin_seeds: 1,
        warm_start: false,
        order_policy: OrderPolicy::default(),
        record_every: None,
        exact_rates: false,
        aggregate: false,
        checked: false,
    };
    println!(
        "CMFSD swarm with Adapt: p = 0.9, {}% cheaters, obedient peers start at ρ = 0\n",
        (cheater_fraction * 100.0).round()
    );
    let outcome = Simulation::new(cfg)?.run();

    println!(
        "{:>6} {:>9} {:>12} {:>12} {:>10}",
        "class", "obedient", "online/file", "final ρ", "cheaters"
    );
    println!("{}", "-".repeat(54));
    for i in 0..outcome.k() {
        let ob = &outcome.obedient[i];
        let ch = &outcome.cheaters[i];
        if ob.count() + ch.count() == 0 {
            continue;
        }
        let class = (i + 1) as f64;
        println!(
            "{:>6} {:>9} {:>12.2} {:>12.3} {:>10}",
            i + 1,
            ob.count(),
            if ob.count() > 0 {
                ob.online.mean() / class
            } else {
                f64::NAN
            },
            if ob.count() > 0 {
                ob.rho.mean()
            } else {
                f64::NAN
            },
            ch.count(),
        );
    }

    println!(
        "\npopulation online/file: {:.2}  (arrivals {}, counted {}, censored {})",
        outcome.avg_online_per_file()?,
        outcome.arrivals,
        outcome.records.len(),
        outcome.censored
    );
    println!(
        "Reading: with few cheaters the obedient ρ stays near 0 (full \
         collaboration);\nas cheating spreads, Δ turns consistently positive and \
         the swarm self-protects\nby drifting toward ρ = 1, i.e. plain MFCD — the \
         degeneration the paper predicts."
    );
    Ok(())
}
