//! Measuring the sharing efficiency η — the constant the fluid models take
//! on faith. Qiu–Srikant argue η → 1 with many chunks; the paper argues
//! (from the Izal measurement) that 0.5 is realistic and adopts it. This
//! example runs the chunk-level simulator over a range of chunk counts and
//! seed-lingering times and prints both notions of η.
//!
//! ```text
//! cargo run --release --example measure_eta
//! ```

use btfluid::des::{estimate_eta, ChunkLevelConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Chunk-level measurement of η (single torrent, λ = 0.5, μ = 0.02)\n");
    println!(
        "{:>7} {:>8} {:>14} {:>16} {:>12}",
        "chunks", "1/γ", "utilization", "seed/dl bytes", "completed"
    );
    println!("{}", "-".repeat(62));
    for &chunks in &[4usize, 16, 64, 256] {
        for &gamma in &[0.05, 0.2] {
            let e = estimate_eta(&ChunkLevelConfig {
                chunks,
                gamma,
                horizon: 2000.0,
                warmup: 500.0,
                seed: 11,
                ..Default::default()
            })?;
            println!(
                "{:>7} {:>8.0} {:>14.3} {:>16.2} {:>12}",
                chunks,
                1.0 / gamma,
                e.utilization,
                e.seed_byte_ratio(),
                e.completed
            );
        }
    }
    println!(
        "\nReading: utilization (the theoretical η = P[a downloader's upload is \
         useful])\nclimbs toward 1 with finer chunking — Qiu–Srikant's argument holds \
         inside the\nmodel. The seed/downloader byte ratio, the quantity Izal et al. \
         measured, depends\non how long seeds linger (1/γ): patient seeds serve a \
         multiple of the downloader\nbytes, which is why the *effective* η the paper \
         adopts (0.5) is lower than the\ntheoretical one."
    );
    Ok(())
}
