//! A downloader's view: you want several files that live in *separate*
//! torrents. Should your client fetch them concurrently (what all clients
//! do) or one by one? This walks the MTCD-vs-MTSD comparison across
//! correlation levels and across user classes.
//!
//! ```text
//! cargo run --example multi_torrent
//! ```

use btfluid::core::mtcd::Mtcd;
use btfluid::core::mtsd::Mtsd;
use btfluid::core::FluidParams;
use btfluid::workload::CorrelationModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = FluidParams::paper();
    let mtsd = Mtsd::new(params);
    let mtsd_per_file = mtsd.online_time_per_file();

    println!("Multi-torrent downloading: concurrent (MTCD) vs sequential (MTSD)");
    println!("MTSD online time per file: {mtsd_per_file:.0} (independent of everything)\n");

    println!(
        "{:>5} {:>12} {:>16} {:>16}",
        "p", "MTCD G", "class-1 /file", "class-10 /file"
    );
    println!("{}", "-".repeat(52));
    for p in [0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
        let model = CorrelationModel::new(10, p, 1.0)?;
        let mtcd = Mtcd::new(params, model.per_torrent_rates())?;
        let times = mtcd.class_times()?;
        println!(
            "{p:>5.2} {:>12.2} {:>16.2} {:>16.2}",
            mtcd.g()?,
            times.online_per_file(1),
            times.online_per_file(10),
        );
    }

    println!(
        "\nTwo things to notice (both from the paper's Figure 3):\n\
         1. the per-file download time G — identical for every class — grows \
         with correlation,\n   \
         so everyone pays for concurrency once many users split bandwidth;\n\
         2. within MTCD, heavy users (class 10) amortize seeding and look \
         better per file,\n   \
         but once p is high even they are worse off than plain sequential \
         downloading ({mtsd_per_file:.0})."
    );
    Ok(())
}
