//! Heterogeneous bandwidth classes (Section 2's generalization): a torrent
//! shared by dial-up, DSL and fiber peers — how do the paper's two service
//! assumptions split the download times? Fluid model vs a peer-level
//! simulation, side by side.
//!
//! ```text
//! cargo run --release --example heterogeneous
//! ```

use btfluid::core::multiclass::{BandwidthClass, MultiClassFluid};
use btfluid::des::{run_single_torrent, SingleTorrentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let classes = vec![
        // (upload μ, download c, arrival λ)
        BandwidthClass {
            mu: 0.005,
            c: 0.05,
            lambda: 0.2,
        }, // dial-up
        BandwidthClass {
            mu: 0.02,
            c: 0.2,
            lambda: 0.3,
        }, // DSL
        BandwidthClass {
            mu: 0.08,
            c: 0.8,
            lambda: 0.1,
        }, // fiber
    ];
    let names = ["dial-up", "DSL", "fiber"];

    let fluid = MultiClassFluid::new(classes.clone(), 0.5, 0.05)?;
    let ss = fluid.steady_state()?;

    let sim = run_single_torrent(&SingleTorrentConfig {
        classes: classes.clone(),
        eta: 0.5,
        gamma: 0.05,
        horizon: 8000.0,
        warmup: 2500.0,
        drain: 4000.0,
        seed: 7,
    })?;

    println!("One torrent, three bandwidth classes (η = 0.5, γ = 0.05)\n");
    println!(
        "{:<9} {:>8} {:>8} {:>14} {:>14} {:>8}",
        "class", "μ", "c", "fluid T_dl", "sim T_dl", "users"
    );
    println!("{}", "-".repeat(66));
    for (i, cl) in classes.iter().enumerate() {
        println!(
            "{:<9} {:>8.3} {:>8.2} {:>14.1} {:>14.1} {:>8}",
            names[i],
            cl.mu,
            cl.c,
            ss.download_times[i],
            sim.classes[i].download.mean(),
            sim.classes[i].download.count(),
        );
    }
    println!(
        "\nTit-for-tat (assumption 1) rewards upload: fiber peers finish far \
         faster than\ndial-up even though the seeds (assumption 2) favour them \
         further via their larger\ndownload capacity. The peer-level simulation \
         lands on the fluid fixed point."
    );
    Ok(())
}
