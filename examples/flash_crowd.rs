//! Transient analysis: drop a flash crowd of 200 peers into the system at
//! t = 0 and watch the MTCD fluid model (Eq. 1) relax to its steady state.
//! An ablation the paper's steady-state-only evaluation never shows.
//!
//! ```text
//! cargo run --example flash_crowd
//! ```

use btfluid::bench::transient::{run, TransientConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = TransientConfig {
        flash_crowd: 200.0,
        p: 0.5,
        ..Default::default()
    };
    let r = run(&cfg)?;

    // Poor man's plot: sample the downloader trajectory.
    println!("MTCD downloaders after a flash crowd of 200 (p = 0.5):\n");
    let times = r.mtcd.times();
    let xs = r.mtcd.channel(0);
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    let step = times.len() / 30;
    for i in (0..times.len()).step_by(step.max(1)) {
        let bar = "#".repeat((xs[i] / max * 48.0).round() as usize);
        println!("t={:>7.1} {:>8.1} |{bar}", times[i], xs[i]);
    }

    println!("\n{}", r.table().render());
    println!(
        "The crowd first converts downloaders into seeds (capacity overshoot), \
         then the\nsurplus seeds drain at rate γ and the population settles at \
         the Eq. 2 closed form."
    );
    Ok(())
}
