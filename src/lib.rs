//! # btfluid — multiple-file downloading in BitTorrent, as a library
//!
//! Umbrella crate re-exporting the whole `btfluid` workspace, a Rust
//! reproduction of:
//!
//! > Ye Tian, Di Wu, Kam-Wing Ng. *"Analyzing Multiple File Downloading in
//! > BitTorrent."* ICPP 2006.
//!
//! The paper extends the Qiu–Srikant fluid model of BitTorrent to users who
//! download several interest-correlated files, analyzes four downloading
//! schemes (MTCD, MTSD, MFCD and its proposed CMFSD), and sketches a
//! distributed **Adapt** mechanism for tuning CMFSD's partial-seeding ratio.
//!
//! * [`core`] — the fluid models, closed-form steady states and metrics
//!   (the paper's contribution).
//! * [`workload`] — the file-correlation model and arrival processes.
//! * [`des`] — a flow-level discrete-event BitTorrent simulator that
//!   validates the fluid models peer-by-peer and evaluates Adapt.
//! * [`scenario`] — non-stationary workloads, churn and fault injection
//!   driving both the DES and the fluid transients (flash crowds, diurnal
//!   cycles, seed outages, abort storms, correlation drift).
//! * [`numkit`] — the self-contained numerics substrate (ODE solvers, RNG,
//!   statistics).
//! * [`mod@bench`] — the experiment harness regenerating every figure.
//!
//! ## Quickstart
//!
//! ```
//! use btfluid::core::{FluidParams, mtsd::Mtsd};
//! use btfluid::workload::CorrelationModel;
//!
//! // The paper's parameters: K = 10 files, μ = 0.02, η = 0.5, γ = 0.05.
//! let params = FluidParams::new(0.02, 0.5, 0.05).unwrap();
//! let model = CorrelationModel::new(10, 0.5, 1.0).unwrap();
//!
//! // Under multi-torrent *sequential* downloading every class spends the
//! // same online time per file: (γ−μ)/(γμη) + 1/γ = 80 time units.
//! let mtsd = Mtsd::new(params);
//! assert!((mtsd.online_time_per_file() - 80.0).abs() < 1e-12);
//! # let _ = model;
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! figure-regeneration harness.

pub use btfluid_bench as bench;
pub use btfluid_core as core;
pub use btfluid_des as des;
pub use btfluid_numkit as numkit;
pub use btfluid_scenario as scenario;
pub use btfluid_workload as workload;
